"""Gremlin-style predicates (``P.eq``, ``P.within``, ...).

A predicate is a named test over a single value.  The traversal engine
evaluates predicates in-memory via :meth:`P.test`; the Db2 Graph SQL
dialect instead *translates* them to SQL WHERE fragments (predicate
pushdown, paper §6.2) — which is why the operator name and operands are
kept as data rather than as an opaque lambda.
"""

from __future__ import annotations

from typing import Any, Iterable

from .errors import TraversalError


class P:
    """A predicate: operator name plus operand(s)."""

    __slots__ = ("op", "value", "other")

    def __init__(self, op: str, value: Any, other: Any = None):
        self.op = op
        self.value = value
        self.other = other

    # -- constructors ------------------------------------------------------

    @staticmethod
    def eq(value: Any) -> "P":
        return P("eq", value)

    @staticmethod
    def neq(value: Any) -> "P":
        return P("neq", value)

    @staticmethod
    def gt(value: Any) -> "P":
        return P("gt", value)

    @staticmethod
    def gte(value: Any) -> "P":
        return P("gte", value)

    @staticmethod
    def lt(value: Any) -> "P":
        return P("lt", value)

    @staticmethod
    def lte(value: Any) -> "P":
        return P("lte", value)

    @staticmethod
    def within(*values: Any) -> "P":
        if len(values) == 1 and isinstance(values[0], (list, tuple, set, frozenset)):
            values = tuple(values[0])
        return P("within", tuple(values))

    @staticmethod
    def without(*values: Any) -> "P":
        if len(values) == 1 and isinstance(values[0], (list, tuple, set, frozenset)):
            values = tuple(values[0])
        return P("without", tuple(values))

    @staticmethod
    def between(low: Any, high: Any) -> "P":
        """low <= value < high (TinkerPop semantics)."""
        return P("between", low, high)

    @staticmethod
    def inside(low: Any, high: Any) -> "P":
        """low < value < high."""
        return P("inside", low, high)

    @staticmethod
    def outside(low: Any, high: Any) -> "P":
        """value < low or value > high."""
        return P("outside", low, high)

    @staticmethod
    def of(value: Any) -> "P":
        """Coerce a raw value into an equality predicate."""
        return value if isinstance(value, P) else P.eq(value)

    # -- evaluation ---------------------------------------------------------

    def test(self, value: Any) -> bool:
        op = self.op
        if op == "eq":
            return value == self.value
        if op == "neq":
            return value != self.value
        if value is None:
            return False
        try:
            if op == "gt":
                return value > self.value
            if op == "gte":
                return value >= self.value
            if op == "lt":
                return value < self.value
            if op == "lte":
                return value <= self.value
            if op == "within":
                return value in self.value
            if op == "without":
                return value not in self.value
            if op == "between":
                return self.value <= value < self.other
            if op == "inside":
                return self.value < value < self.other
            if op == "outside":
                return value < self.value or value > self.other
        except TypeError:
            return False
        raise TraversalError(f"unknown predicate {op!r}")

    def __repr__(self) -> str:
        if self.other is not None:
            return f"P.{self.op}({self.value!r}, {self.other!r})"
        return f"P.{self.op}({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, P)
            and self.op == other.op
            and self.value == other.value
            and self.other == other.other
        )

    def __hash__(self) -> int:
        value = tuple(self.value) if isinstance(self.value, (list, set)) else self.value
        return hash((self.op, value, self.other))


class TextP(P):
    """TinkerPop text predicates.  The SQL dialect pushes these down as
    LIKE patterns when the operand contains no wildcard characters."""

    @staticmethod
    def startingWith(prefix: str) -> "TextP":
        return TextP("startingWith", prefix)

    @staticmethod
    def endingWith(suffix: str) -> "TextP":
        return TextP("endingWith", suffix)

    @staticmethod
    def containing(text: str) -> "TextP":
        return TextP("containing", text)

    @staticmethod
    def notStartingWith(prefix: str) -> "TextP":
        return TextP("notStartingWith", prefix)

    @staticmethod
    def notEndingWith(suffix: str) -> "TextP":
        return TextP("notEndingWith", suffix)

    @staticmethod
    def notContaining(text: str) -> "TextP":
        return TextP("notContaining", text)

    def test(self, value) -> bool:
        if not isinstance(value, str):
            return False
        op = self.op
        if op == "startingWith":
            return value.startswith(self.value)
        if op == "endingWith":
            return value.endswith(self.value)
        if op == "containing":
            return self.value in value
        if op == "notStartingWith":
            return not value.startswith(self.value)
        if op == "notEndingWith":
            return not value.endswith(self.value)
        if op == "notContaining":
            return self.value not in value
        raise TraversalError(f"unknown text predicate {op!r}")

    def __repr__(self) -> str:
        return f"TextP.{self.op}({self.value!r})"
