"""Law-enforcement workload (paper §7): persons, organizations,
arrests, warrants, vehicles, phones — with full primary/foreign key
constraints, so it doubles as the AutoOverlay showcase (Algorithms 1
and 2 infer the whole overlay from the catalog).

Schema highlights that exercise every AutoOverlay branch:

* ``Person``, ``Organization``, ``Arrest``, ``Vehicle``, ``Phone`` —
  vertex tables (primary keys);
* ``Arrest`` has a primary key *and* foreign keys (to Person) — a table
  that is both vertex table and edge table;
* ``Membership`` has two foreign keys and **no** primary key — the
  many-to-many case that becomes C(k,2) edge tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational.database import Database


@dataclass
class PoliceConfig:
    n_persons: int = 120
    n_organizations: int = 8
    n_arrests: int = 40
    n_vehicles: int = 60
    n_phones: int = 100
    seed: int = 31


class PoliceDataset:
    def __init__(self, config: PoliceConfig | None = None):
        self.config = config or PoliceConfig()
        rng = random.Random(self.config.seed)
        c = self.config

        self.persons = [
            (pid, f"person-{pid}", rng.choice(["suspect", "victim", "witness"]))
            for pid in range(1, c.n_persons + 1)
        ]
        self.organizations = [
            (oid, f"org-{oid}", rng.choice(["gang", "legitimate"]))
            for oid in range(1, c.n_organizations + 1)
        ]
        # arrests reference the arrested person and the arresting officer
        self.arrests = [
            (
                aid,
                rng.randint(1, c.n_persons),
                f"2025-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                rng.choice(["theft", "assault", "fraud", "vandalism"]),
            )
            for aid in range(1, c.n_arrests + 1)
        ]
        self.vehicles = [
            (vid, f"PLATE{vid:04d}", rng.randint(1, c.n_persons))
            for vid in range(1, c.n_vehicles + 1)
        ]
        self.phones = [
            (phid, f"+1-555-{phid:04d}", rng.randint(1, c.n_persons))
            for phid in range(1, c.n_phones + 1)
        ]
        # memberships: person <-> organization, no primary key
        pairs = set()
        while len(pairs) < c.n_persons // 2:
            pairs.add((rng.randint(1, c.n_persons), rng.randint(1, c.n_organizations)))
        self.memberships = [
            (person, org, rng.choice(["member", "leader"])) for person, org in sorted(pairs)
        ]

    def install_relational(self, db: Database) -> None:
        db.execute(
            "CREATE TABLE Person (personID BIGINT PRIMARY KEY, name VARCHAR, role VARCHAR)"
        )
        db.execute(
            "CREATE TABLE Organization (orgID BIGINT PRIMARY KEY, name VARCHAR, "
            "orgType VARCHAR)"
        )
        db.execute(
            "CREATE TABLE Arrest (arrestID BIGINT PRIMARY KEY, personID BIGINT, "
            "arrestDate VARCHAR, charge VARCHAR, "
            "FOREIGN KEY (personID) REFERENCES Person (personID))"
        )
        db.execute(
            "CREATE TABLE Vehicle (vehicleID BIGINT PRIMARY KEY, plate VARCHAR, "
            "ownerID BIGINT, FOREIGN KEY (ownerID) REFERENCES Person (personID))"
        )
        db.execute(
            "CREATE TABLE Phone (phoneID BIGINT PRIMARY KEY, number VARCHAR, "
            "ownerID BIGINT, FOREIGN KEY (ownerID) REFERENCES Person (personID))"
        )
        db.execute(
            "CREATE TABLE Membership (personID BIGINT, orgID BIGINT, role VARCHAR, "
            "FOREIGN KEY (personID) REFERENCES Person (personID), "
            "FOREIGN KEY (orgID) REFERENCES Organization (orgID))"
        )
        connection = db.connect()
        connection.insert_rows("Person", self.persons)
        connection.insert_rows("Organization", self.organizations)
        connection.insert_rows("Arrest", self.arrests)
        connection.insert_rows("Vehicle", self.vehicles)
        connection.insert_rows("Phone", self.phones)
        connection.insert_rows("Membership", self.memberships)

    def table_names(self) -> list[str]:
        return ["Person", "Organization", "Arrest", "Vehicle", "Phone", "Membership"]
