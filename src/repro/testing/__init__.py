"""Generative overlay-conformance subsystem.

The differential harnesses under ``tests/`` all run over hand-written
schemas and overlays; this package generates the *overlay-config space*
itself (paper §5): random relational schemas with matching overlay
configurations — prefixed ids, fixed and column labels, implicit edge
ids, src/dst table hints, dual vertex+edge tables, views as overlay
members, and AutoOverlay-derived configs from random PK/FK catalogs —
plus consistent data and mixed read/mutation workloads.

An oracle runner applies the identical workload to an
:class:`~repro.graph.memory.InMemoryGraph` (the reference semantics)
and to the overlay engine under the full optimization/parallelism
matrix, asserting multiset-equal results.  On divergence a minimizing
shrinker deletes tables, rows, and workload steps until a minimal
stand-alone reproduction remains.

Entry points::

    python -m repro.testing.runner --seeds 200          # CI sweep
    python -m repro.testing.runner --inject-bug label-elimination

    from repro.testing import generate_scenario, run_scenario
    divergence = run_scenario(generate_scenario(7))
"""

from .conformance import (
    CELL_CORNERS,
    CELL_FULL_MATRIX,
    Cell,
    Divergence,
    ScenarioInvalid,
    make_checker,
    run_scenario,
)
from .generate import generate_scenario, random_chain, random_graph_sql
from .inject import BUGS, injected_bug
from .oracle import graphs_equal, materialize_oracle, scenario_vocab
from .scenario import Scenario, TableDef, ViewDef, build_database, resolve_overlay
from .shrinker import render_repro, shrink
from .workload import apply_chain, chain_to_gremlin, normalize_results

__all__ = [
    "BUGS",
    "CELL_CORNERS",
    "CELL_FULL_MATRIX",
    "Cell",
    "Divergence",
    "Scenario",
    "ScenarioInvalid",
    "TableDef",
    "ViewDef",
    "apply_chain",
    "build_database",
    "chain_to_gremlin",
    "generate_scenario",
    "graphs_equal",
    "injected_bug",
    "make_checker",
    "materialize_oracle",
    "normalize_results",
    "random_chain",
    "random_graph_sql",
    "render_repro",
    "resolve_overlay",
    "run_scenario",
    "scenario_vocab",
    "shrink",
]
