"""Replication-layer errors.

Fencing rejections are *permanent* for the raising node: a deposed
primary can never become primary again under its old epoch, so
``FencedWriteError`` is not transient and the retry classifier must let
it propagate.  ``ReplicationAckTimeout`` is the sync-ack "commit
uncertain" outcome: the transaction IS durable and visible locally, but
the configured replica acknowledgements did not arrive in time — the
caller must treat the commit as possibly-lost-on-failover, exactly like
a client whose COMMIT reply packet was dropped.
"""

from __future__ import annotations


class ReplicationError(Exception):
    """Base class for every replication-layer failure."""


class FencedWriteError(ReplicationError):
    """A deposed primary attempted a write after losing its epoch.

    Raised before any local effect, so a fenced node's writes are
    rejected rather than silently diverging from the promoted timeline.
    """

    transient = False

    def __init__(self, message: str, epoch: int = 0, current_epoch: int = 0):
        super().__init__(message)
        self.epoch = epoch
        self.current_epoch = current_epoch


class ReplicationAckTimeout(ReplicationError):
    """Sync-ack mode: the commit is locally durable and visible, but
    replica acknowledgements did not arrive within the pump budget.

    The commit's outcome on the replicated timeline is *uncertain*: if
    the primary survives, nothing was lost; if it dies before the
    frames ship, a promoted replica will not have this transaction.
    Callers that require zero-loss semantics must not treat a commit
    that raised this as acknowledged.
    """

    transient = False

    def __init__(self, message: str, csn: int = 0, acked: int = 0, needed: int = 0):
        super().__init__(message)
        self.csn = csn
        self.acked = acked
        self.needed = needed


class NotPrimaryError(ReplicationError):
    """A primary-only operation was invoked on a replica node."""


class StaleReadError(ReplicationError):
    """A replica read's staleness bound could not be met and no
    fall-through target was available."""

    def __init__(self, message: str, needed_csn: int = 0, applied_csn: int = 0):
        super().__init__(message)
        self.needed_csn = needed_csn
        self.applied_csn = applied_csn


class DivergenceError(ReplicationError):
    """The divergence detector found primary and replica states that
    are not byte-identical (CRC chain or state digest mismatch)."""
