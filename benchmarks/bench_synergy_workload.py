"""End-to-end synergy workload (the paper's overarching claim, §1/§8):

    "by avoiding the overhead of transferring and transforming data,
    [Db2 Graph] provides the best overall performance for complex
    analytics workloads in the real world."

Task: the §4 healthcare analysis — find patients with similar diseases
via a graph traversal, then aggregate their wearable-device data.
The data lives in the relational database (as in all the paper's
customer scenarios).

* Db2 Graph: run the combined SQL+graph statement directly.
* Standalone graph database (GDB-X stand-in): export the graph tables,
  load them into the store, run the traversal there, ship the ids back,
  and finish the aggregation in SQL — the import/export round trip the
  paper's intro describes.

Not a numbered figure in the paper; it quantifies the narrative that
motivates the whole system. Shape assertion: the standalone pipeline
pays a clear multiple of Db2 Graph's end-to-end time. At the paper's
scales the multiple is hours-vs-seconds (Table 3's 42-minute loads);
at laptop scale both pipelines shrink linearly, so the measured tax is
a small constant factor — the *structure* (export+load dominating the
standalone pipeline) is what this benchmark checks.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.kvstore import DiskModel
from repro.baselines.loader import export_tables_to_csv, load_into_store
from repro.baselines.native import NativeGraphStore
from repro.bench.reporting import format_seconds, format_table
from repro.core.db2graph import Db2Graph
from repro.core.topology import Topology
from repro.graph import GraphTraversalSource
from repro.graph.gremlin_parser import evaluate_gremlin
from repro.relational import Database
from repro.workloads.healthcare import (
    HealthcareConfig,
    HealthcareDataset,
    similar_diseases_script,
    synergy_sql,
)


@pytest.fixture(scope="module")
def setup():
    dataset = HealthcareDataset(HealthcareConfig(n_patients=800, device_days=30, seed=21))
    db = Database()
    dataset.install_relational(db)
    graph = Db2Graph.open(db, dataset.overlay_config())
    graph.register_table_function()
    return dataset, db, graph


def run_db2graph_pipeline(db, patient_id: int):
    return db.execute(synergy_sql(patient_id)).rows


def run_standalone_pipeline(dataset, db, patient_id: int):
    """The paper's integration tax: export -> load -> traverse -> join."""
    export = export_tables_to_csv(db, dataset.relational_table_names())
    export.cleanup()
    store = NativeGraphStore(disk_model=DiskModel(0.0))
    topology = Topology(db, dataset.overlay_config())
    load_into_store(store, topology, db)
    store.open_graph(prefetch=True)
    try:
        g = GraphTraversalSource(store)
        pairs = evaluate_gremlin(g, similar_diseases_script(patient_id))
        # ship the graph result back into SQL for the aggregation
        rows = []
        for patient, subscription in pairs:
            avg = db.execute(
                "SELECT AVG(steps), AVG(exerciseMinutes) FROM DeviceData "
                "WHERE subscriptionID = ?",
                [subscription],
            ).rows[0]
            rows.append((patient, *avg))
        return rows
    finally:
        store.close()


def test_synergy_results_agree(benchmark, setup):
    dataset, db, _graph = setup
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    integrated = sorted(run_db2graph_pipeline(db, 1))
    standalone = sorted(run_standalone_pipeline(dataset, db, 1))
    assert len(integrated) == len(standalone)
    for a, b in zip(integrated, standalone):
        assert a[0] == b[0]
        assert a[1] == pytest.approx(b[1])


def test_synergy_pipeline_db2graph(benchmark, setup):
    _dataset, db, _graph = setup
    benchmark.pedantic(lambda: run_db2graph_pipeline(db, 1), rounds=10, iterations=1)


def test_synergy_pipeline_standalone(benchmark, setup):
    dataset, db, _graph = setup
    benchmark.pedantic(
        lambda: run_standalone_pipeline(dataset, db, 1), rounds=3, iterations=1
    )


def test_synergy_report(benchmark, setup, collector):
    dataset, db, _graph = setup
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    start = time.perf_counter()
    run_db2graph_pipeline(db, 1)
    integrated_seconds = time.perf_counter() - start

    start = time.perf_counter()
    run_standalone_pipeline(dataset, db, 1)
    standalone_seconds = time.perf_counter() - start

    collector.add(
        "synergy_workload",
        format_table(
            ["Pipeline", "End-to-end time"],
            [
                ["Db2 Graph (in-DBMS, no copy)", format_seconds(integrated_seconds)],
                ["Standalone graph DB (export+load+traverse+join)",
                 format_seconds(standalone_seconds)],
                ["Integration tax", f"{standalone_seconds / integrated_seconds:.0f}x"],
            ],
            title="Synergy workload: the paper's overall-pipeline claim "
            "(healthcare §4 analysis, 800 patients)",
        ),
    )
    assert standalone_seconds > 1.5 * integrated_seconds, (
        "the standalone pipeline must pay a clear integration tax"
    )
