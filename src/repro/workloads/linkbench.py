"""LinkBench (paper §8): dataset generator and the four query kinds.

The paper's datasets (Table 2) have 10M/100M vertices with average
degree ~4.2 and extreme degree skew (max degree ~962k).  A pure-Python
reproduction shrinks the scales (configurable via environment
variables ``REPRO_LINKBENCH_SMALL`` / ``REPRO_LINKBENCH_LARGE``) while
preserving: 10 vertex types, 10 edge types, 3 vertex properties, 4
edge properties, the ~4.2 average degree, and a Zipf-skewed degree
distribution with a designated hub vertex.

The relational layout follows the retrofit story: one table per node
type (``node0``..``node9``, primary key ``id``) and one per link type
(``link0``..``link9`` with ``id1``/``id2``).  Ids are globally unique
across node tables and *not* prefixed — so a bare ``g.V(id)`` must
consult every node table unless the optimizer narrows it, which is
exactly what Figures 4-6 measure.

Table 1 mapping (implemented in :data:`LINKBENCH_QUERIES`):

    getNode(id, lbl)        g.V(id).hasLabel(lbl)
    countLinks(id1, lbl)    g.V(id1).outE(lbl).count()
    getLink(id1, lbl, id2)  g.V(id1).outE(lbl).filter(inV().id() == id2)
    getLinkList(id1, lbl)   g.V(id1).outE(lbl)

Note: the paper's Table 1 prints ``outV()`` in getLink; the out-vertex
of an out-edge of ``id1`` is ``id1`` itself, so we follow the query's
*intent* (match the link's far endpoint) and use ``inV()``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..core.overlay import EdgeTableConfig, LabelSpec, OverlayConfig, VertexTableConfig
from ..graph.predicates import P
from ..graph.traversal import GraphTraversalSource, Traversal, __
from ..relational.database import Database

N_TYPES = 10
DEFAULT_SMALL = int(os.environ.get("REPRO_LINKBENCH_SMALL", "5000"))
DEFAULT_LARGE = int(os.environ.get("REPRO_LINKBENCH_LARGE", "50000"))


def node_label(type_index: int) -> str:
    return f"nt{type_index}"


def link_label(type_index: int) -> str:
    return f"lt{type_index}"


def node_table(type_index: int) -> str:
    return f"node{type_index}"


def link_table(type_index: int) -> str:
    return f"link{type_index}"


@dataclass
class LinkBenchConfig:
    name: str = "small"
    n_vertices: int = DEFAULT_SMALL
    target_avg_degree: float = 4.2
    zipf_exponent: float = 2.2
    hub_fraction: float = 0.1  # the hub's degree as a fraction of |V|
    seed: int = 42

    @classmethod
    def small(cls) -> "LinkBenchConfig":
        return cls(name="small", n_vertices=DEFAULT_SMALL, seed=42)

    @classmethod
    def large(cls) -> "LinkBenchConfig":
        return cls(name="large", n_vertices=DEFAULT_LARGE, seed=43)


@dataclass
class LinkBenchStats:
    """The Table 2 columns."""

    n_vertices: int
    n_edges: int
    avg_degree: float
    max_degree: int
    csv_bytes: int


class LinkBenchDataset:
    """Generated vertices and edges, loadable into any engine."""

    def __init__(self, config: LinkBenchConfig):
        self.config = config
        rng = random.Random(config.seed)
        n = config.n_vertices
        # vertices: (id, type_index, version, time, data)
        self.vertices: list[tuple[int, int, int, float, str]] = []
        for vertex_id in range(1, n + 1):
            self.vertices.append(
                (
                    vertex_id,
                    vertex_id % N_TYPES,
                    rng.randint(1, 20),
                    1_500_000_000.0 + rng.random() * 1e8,
                    f"payload-{vertex_id % 977:03d}-" + "x" * rng.randint(8, 40),
                )
            )
        # edges: (id1, link_type, id2, visibility, data, time, version)
        self.edges: list[tuple[int, int, int, int, str, float, int]] = []
        self._out: dict[int, list[tuple[int, int]]] = {}  # id1 -> [(lt, id2)]
        degrees = self._sample_degrees(rng, n)
        seen: set[tuple[int, int, int]] = set()
        for vertex_id, degree in zip(range(1, n + 1), degrees):
            for _ in range(degree):
                target = rng.randint(1, n)
                lt = rng.randrange(N_TYPES)
                key = (vertex_id, lt, target)
                if key in seen:
                    continue
                seen.add(key)
                self.edges.append(
                    (
                        vertex_id,
                        lt,
                        target,
                        rng.randint(0, 1),
                        f"edata-{len(self.edges) % 613:03d}",
                        1_500_000_000.0 + rng.random() * 1e8,
                        rng.randint(1, 5),
                    )
                )
                self._out.setdefault(vertex_id, []).append((lt, target))

    def _sample_degrees(self, rng: random.Random, n: int) -> list[int]:
        """Zipf-skewed out-degrees averaging ~target_avg_degree, plus a
        hub vertex reproducing Table 2's extreme max degree."""
        exponent = self.config.zipf_exponent
        cap = max(2, n // 10)
        degrees: list[int] = []
        for _ in range(n):
            # inverse-transform Zipf sample
            u = rng.random()
            degree = int(u ** (-1.0 / (exponent - 1.0)))
            degrees.append(min(max(degree, 0), cap))
        # rescale toward the target average (hub excluded)
        current = sum(degrees) / n
        target = self.config.target_avg_degree
        if current > 0:
            scale = target / current
            degrees = [max(0, round(d * scale)) for d in degrees]
        hub = max(2, int(n * self.config.hub_fraction))
        degrees[0] = hub  # vertex 1 is the hub
        return degrees

    # -- stats (Table 2) -------------------------------------------------------

    def stats(self) -> LinkBenchStats:
        degree_by_vertex: dict[int, int] = {}
        for id1, _lt, id2, *_rest in self.edges:
            degree_by_vertex[id1] = degree_by_vertex.get(id1, 0) + 1
            degree_by_vertex[id2] = degree_by_vertex.get(id2, 0) + 1
        n = len(self.vertices)
        return LinkBenchStats(
            n_vertices=n,
            n_edges=len(self.edges),
            avg_degree=len(self.edges) / n if n else 0.0,
            max_degree=max(degree_by_vertex.values(), default=0),
            csv_bytes=self._csv_bytes(),
        )

    def _csv_bytes(self) -> int:
        total = 0
        for row in self.vertices:
            total += sum(len(str(v)) for v in row) + len(row)
        for row in self.edges:
            total += sum(len(str(v)) for v in row) + len(row)
        return total

    # -- relational install -------------------------------------------------------

    def install_relational(self, db: Database) -> None:
        """Create the node/link tables, load the data, build indexes."""
        connection = db.connect()
        for t in range(N_TYPES):
            db.execute(
                f"CREATE TABLE {node_table(t)} ("
                f"id BIGINT PRIMARY KEY, version INT, time DOUBLE, data VARCHAR)"
            )
            db.execute(
                f"CREATE TABLE {link_table(t)} ("
                f"id1 BIGINT, id2 BIGINT, visibility INT, data VARCHAR, "
                f"time DOUBLE, version INT)"
            )
            # 'building all the indexes necessary for each system' (§8)
            db.execute(f"CREATE INDEX idx_{link_table(t)}_id1 ON {link_table(t)} (id1)")
        node_rows: dict[int, list[tuple]] = {t: [] for t in range(N_TYPES)}
        for vertex_id, t, version, time_, data in self.vertices:
            node_rows[t].append((vertex_id, version, time_, data))
        for t, rows in node_rows.items():
            if rows:
                connection.insert_rows(node_table(t), rows)
        link_rows: dict[int, list[tuple]] = {t: [] for t in range(N_TYPES)}
        for id1, lt, id2, visibility, data, time_, version in self.edges:
            link_rows[lt].append((id1, id2, visibility, data, time_, version))
        for t, rows in link_rows.items():
            if rows:
                connection.insert_rows(link_table(t), rows)

    def overlay_config(self) -> OverlayConfig:
        config = OverlayConfig(
            v_tables=[
                VertexTableConfig(
                    table_name=node_table(t),
                    id_spec="id",
                    label=LabelSpec(constant=node_label(t)),
                    properties=["version", "time", "data"],
                )
                for t in range(N_TYPES)
            ],
            e_tables=[
                EdgeTableConfig(
                    table_name=link_table(t),
                    src_v_spec="id1",
                    dst_v_spec="id2",
                    label=LabelSpec(constant=link_label(t)),
                    implicit_edge_id=True,
                    properties=["visibility", "data", "time", "version"],
                )
                for t in range(N_TYPES)
            ],
        )
        config.validate_internal()
        return config

    def relational_table_names(self) -> list[str]:
        return [node_table(t) for t in range(N_TYPES)] + [
            link_table(t) for t in range(N_TYPES)
        ]

    # -- direct store loading (baselines) --------------------------------------------

    def load_into_store(self, store: Any) -> None:
        for vertex_id, t, version, time_, data in self.vertices:
            store.add_vertex(
                vertex_id,
                node_label(t),
                {"version": version, "time": time_, "data": data},
            )
        for id1, lt, id2, visibility, data, time_, version in self.edges:
            store.add_edge(
                link_label(lt),
                id1,
                id2,
                {"visibility": visibility, "data": data, "time": time_, "version": version},
                edge_id=f"{id1}::{link_label(lt)}::{id2}",
            )
        store.finalize()

    # -- oracle access (for correctness tests) --------------------------------------

    def out_links(self, id1: int) -> list[tuple[int, int]]:
        """[(link_type, id2)] for a vertex — ground truth."""
        return list(self._out.get(id1, ()))

    def vertex_type(self, vertex_id: int) -> int:
        return vertex_id % N_TYPES


# ---------------------------------------------------------------------------
# Table 1: the four query kinds
# ---------------------------------------------------------------------------


def q_get_node(g: GraphTraversalSource, node_id: int, label: str) -> Traversal:
    return g.V(node_id).hasLabel(label)


def q_count_links(g: GraphTraversalSource, id1: int, label: str) -> Traversal:
    return g.V(id1).outE(label).count()


def q_get_link(g: GraphTraversalSource, id1: int, label: str, id2: int) -> Traversal:
    return g.V(id1).outE(label).filter_(__.inV().id_().is_(P.eq(id2)))


def q_get_link_list(g: GraphTraversalSource, id1: int, label: str) -> Traversal:
    return g.V(id1).outE(label)


LINKBENCH_QUERIES: dict[str, Callable[..., Traversal]] = {
    "getNode": q_get_node,
    "countLinks": q_count_links,
    "getLink": q_get_link,
    "getLinkList": q_get_link_list,
}


@dataclass
class QueryCall:
    kind: str
    args: tuple

    def run(self, g: GraphTraversalSource) -> Any:
        traversal = LINKBENCH_QUERIES[self.kind](g, *self.args)
        return traversal.toList()


class LinkBenchWorkload:
    """Samples valid query calls against a dataset (parameters always
    reference existing nodes/links, as LinkBench's query-only mode
    does)."""

    def __init__(self, dataset: LinkBenchDataset, seed: int = 7):
        self.dataset = dataset
        self.rng = random.Random(seed)
        self._sources = [id1 for id1, links in dataset._out.items() if links]

    def sample(self, kind: str) -> QueryCall:
        dataset = self.dataset
        if kind == "getNode":
            vertex_id = self.rng.randint(1, dataset.config.n_vertices)
            return QueryCall(kind, (vertex_id, node_label(dataset.vertex_type(vertex_id))))
        id1 = self.rng.choice(self._sources)
        lt, id2 = self.rng.choice(dataset.out_links(id1))
        if kind == "countLinks":
            return QueryCall(kind, (id1, link_label(lt)))
        if kind == "getLink":
            return QueryCall(kind, (id1, link_label(lt), id2))
        if kind == "getLinkList":
            return QueryCall(kind, (id1, link_label(lt)))
        raise ValueError(f"unknown query kind {kind!r}")

    def stream(self, kind: str, count: int) -> Iterator[QueryCall]:
        for _ in range(count):
            yield self.sample(kind)

    def mixed_stream(self, count: int) -> Iterator[QueryCall]:
        kinds = list(LINKBENCH_QUERIES)
        for _ in range(count):
            yield self.sample(self.rng.choice(kinds))
