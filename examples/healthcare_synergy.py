#!/usr/bin/env python3
"""The paper's §4 healthcare scenario, end to end.

Patients' medical records and the disease ontology already live in
relational tables (they power existing SQL applications); wearable
device data arrives in another table.  The graph overlay exposes four
of the tables as a property graph, and the ``graphQuery`` polymorphic
table function lets one SQL statement combine a Gremlin traversal
(finding patients with *similar diseases* by walking the ontology) with
SQL aggregation over the device data — the paper's flagship
"synergistic" query.
"""

from repro.core import Db2Graph
from repro.relational import Database
from repro.workloads.healthcare import (
    HealthcareConfig,
    HealthcareDataset,
    similar_diseases_script,
    synergy_sql,
)


def main() -> None:
    dataset = HealthcareDataset(HealthcareConfig(n_patients=120))
    db = Database()
    dataset.install_relational(db)
    print(
        f"installed: {len(dataset.patients)} patients, {len(dataset.diseases)} diseases, "
        f"{len(dataset.ontology)} ontology edges, {len(dataset.device_data)} device rows"
    )

    graph = Db2Graph.open(db, dataset.overlay_config())
    g = graph.traversal()

    # -- pure graph queries -----------------------------------------------------
    patient = g.V().hasLabel("patient").has("patientID", 1).next()
    print("\npatient 1:", patient.value("name"), "at", patient.value("address"))
    diseases = g.V("patient::1").out("hasDisease").values("conceptName").toList()
    print("diagnosed with:", diseases)
    parents = (
        g.V("patient::1").out("hasDisease").out("isa").dedup().values("conceptName").toList()
    )
    print("parent categories:", parents)

    # -- the similar-diseases Gremlin script (paper §4) -------------------------
    similar = graph.execute(similar_diseases_script(1))
    print(f"\npatients with similar diseases to patient 1: {len(similar)} found")

    # -- the synergistic SQL + graph query (paper §4, verbatim shape) ------------
    graph.register_table_function()  # exposes graphQuery(...) to SQL
    result = db.execute(synergy_sql(1))
    print("\nSELECT patientID, AVG(steps), AVG(exerciseMinutes) ... GROUP BY:")
    for patient_id, avg_steps, avg_minutes in sorted(result.rows)[:10]:
        print(f"  patient {patient_id:>4}: {avg_steps:8.1f} steps, {avg_minutes:5.1f} min")
    print(f"  ... {len(result.rows)} rows total")

    # -- temporal: the graph is bi-temporal for free (paper §4) ------------------
    as_of = db.now()
    db.execute("UPDATE Patient SET address = 'moved away' WHERE patientID = 1")
    now_addr = g.V("patient::1").values("address").next()
    then_addr = db.execute(
        "SELECT address FROM Patient FOR SYSTEM_TIME AS OF ? WHERE patientID = 1",
        [as_of],
    ).scalar()
    print(f"\naddress now: {now_addr!r}; as of before the update: {then_addr!r}")


if __name__ == "__main__":
    main()
