"""Smoke tests: every example script must run to completion.

Examples are part of the public surface; these tests keep them from
rotting as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 180, stdin: str = "") -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "ada knows: ['grace', 'alan']" in out
    assert "barbara" in out  # the live-update section ran


def test_healthcare_synergy():
    out = run_example("healthcare_synergy.py")
    assert "patients with similar diseases" in out
    assert "address now: 'moved away'" in out


def test_fraud_detection():
    out = run_example("fraud_detection.py")
    assert "recovered 4/4 planted rings" in out
    assert "top recipients" in out


def test_auto_overlay_police():
    out = run_example("auto_overlay_police.py")
    assert "AutoOverlay generated configuration" in out
    assert "gangs connected to arrests" in out


def test_temporal_and_views():
    out = run_example("temporal_and_views.py")
    assert "patient 1 served by: ['clinic-A']" in out
    assert "after deleting doc-10's employment: []" in out
    assert "the graph history is preserved" in out


def test_gremlin_console_scripted():
    stdin = (
        "g.V().hasLabel('patient').count().next()\n"
        "\\sql SELECT COUNT(*) FROM Patient\n"
        "\\topology\n"
        "\\quit\n"
    )
    out = run_example("gremlin_console.py", stdin=stdin)
    assert "50" in out
    assert "Topology:" in out


@pytest.mark.slow
def test_linkbench_comparison():
    out = run_example("linkbench_comparison.py", timeout=300)
    assert "0 disagreements" in out
    assert "getLinkList" in out
