"""Value semantics shared by the expression evaluator and the planner.

SQL uses three-valued logic: a comparison involving NULL yields UNKNOWN
(Python ``None`` here), and WHERE keeps only rows whose predicate is
*True*.  The helpers in this module centralize that logic so every
operator treats NULL the same way.
"""

from __future__ import annotations

from typing import Any

from .errors import ExecutionError


def sql_eq(a: Any, b: Any) -> bool | None:
    if a is None or b is None:
        return None
    return _comparable(a) == _comparable(b)


def sql_ne(a: Any, b: Any) -> bool | None:
    eq = sql_eq(a, b)
    return None if eq is None else not eq


def sql_lt(a: Any, b: Any) -> bool | None:
    if a is None or b is None:
        return None
    return _compare(a, b) < 0


def sql_le(a: Any, b: Any) -> bool | None:
    if a is None or b is None:
        return None
    return _compare(a, b) <= 0


def sql_gt(a: Any, b: Any) -> bool | None:
    if a is None or b is None:
        return None
    return _compare(a, b) > 0


def sql_ge(a: Any, b: Any) -> bool | None:
    if a is None or b is None:
        return None
    return _compare(a, b) >= 0


def sql_and(a: bool | None, b: bool | None) -> bool | None:
    """Three-valued AND: False dominates UNKNOWN."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: bool | None, b: bool | None) -> bool | None:
    """Three-valued OR: True dominates UNKNOWN."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: bool | None) -> bool | None:
    return None if a is None else not a


def _comparable(value: Any) -> Any:
    """Normalize values so mixed int/float comparisons behave."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value) if isinstance(value, float) else value
    return value


def _compare(a: Any, b: Any) -> int:
    """Total-order compare for non-NULL values of compatible types."""
    if isinstance(a, bool) != isinstance(b, bool):
        raise ExecutionError(f"cannot compare {a!r} with {b!r}")
    numeric = (int, float)
    if isinstance(a, numeric) and isinstance(b, numeric):
        return (a > b) - (a < b)
    if isinstance(a, str) and isinstance(b, str):
        return (a > b) - (a < b)
    if isinstance(a, bool) and isinstance(b, bool):
        return (a > b) - (a < b)
    raise ExecutionError(f"cannot compare {type(a).__name__} with {type(b).__name__}")


def sql_like(value: Any, pattern: Any) -> bool | None:
    """SQL LIKE with ``%`` (any run) and ``_`` (single char) wildcards."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExecutionError("LIKE requires string operands")
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    )
    # DOTALL: SQL wildcards match ANY character, newlines included.
    return re.fullmatch(regex, value, re.DOTALL) is not None


def sql_add(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    _require_numeric(a, b, "+")
    return a + b


def sql_sub(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    _require_numeric(a, b, "-")
    return a - b


def sql_mul(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    _require_numeric(a, b, "*")
    return a * b


def sql_div(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    _require_numeric(a, b, "/")
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        # SQL integer division truncates toward zero.
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def sql_concat(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    return _as_text(a) + _as_text(b)


def _as_text(value: Any) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return value if isinstance(value, str) else str(value)


def _require_numeric(a: Any, b: Any, op: str) -> None:
    ok = (int, float)
    if isinstance(a, bool) or isinstance(b, bool):
        raise ExecutionError(f"operator {op} does not accept BOOLEAN")
    if not (isinstance(a, ok) and isinstance(b, ok)):
        raise ExecutionError(f"operator {op} requires numeric operands, got {a!r}, {b!r}")
