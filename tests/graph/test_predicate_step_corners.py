"""Backfilled corner-case units for ``graph/predicates.py`` and
``graph/steps.py`` (ISSUE 9 satellite 2): within/without over mixed
value types, ``has`` on a missing property, ``limit(0)``, plus the
regressions the analytics work flushed out — frontier dedup counting
and edge-weight coercion of bool/None values.
"""

from __future__ import annotations

import pytest

from repro.analytics import AnalyticsError, coerce_weight
from repro.analytics.frontier import FrontierExecutor
from repro.graph import Direction, InMemoryGraph, P
from repro.graph.steps import HasNotStep, HasStep, LimitStep
from repro.graph.traversal import GraphTraversalSource


@pytest.fixture
def mem():
    g = InMemoryGraph()
    g.add_vertex(1, "item", {"name": "a", "size": 5})
    g.add_vertex(2, "item", {"name": "b", "size": "5"})
    g.add_vertex(3, "item", {"name": None})
    g.add_vertex(4, "other", {})
    g.add_edge("link", 1, 2)
    g.add_edge("link", 2, 3)
    g.add_edge("link", 1, 3)
    return g


def g(mem):
    return GraphTraversalSource(mem)


class TestWithinWithoutMixedTypes:
    def test_within_does_not_cross_numeric_string_boundary(self):
        # within() uses equality per candidate: int 5 matches 5 but
        # never the string "5", and vice versa
        assert P.within(5, 6).test(5)
        assert not P.within(5, 6).test("5")
        assert P.within("5").test("5")
        assert not P.within("5").test(5)

    def test_within_accepts_bool_as_int_like_python_eq(self):
        # pinned: Python's True == 1 leaks through within(), exactly
        # like P.eq(1).test(True) does — predicates never add their own
        # type coercion on top of ==
        assert P.within(1, 2).test(True)
        assert P.eq(1).test(True)

    def test_without_with_mixed_tuple(self):
        assert P.without(5, "a").test("b")
        assert not P.without(5, "a").test(5)
        assert P.without(5, "a").test("5")

    def test_none_fails_both_within_and_without(self):
        # pinned: a missing/NULL value fails every non-eq predicate,
        # without() included (SQL's NULL NOT IN semantics, not Python's)
        assert not P.within(None, 1).test(None)
        assert not P.without(1).test(None)
        assert P.eq(None).test(None)
        assert P.neq(1).test(None)

    def test_incomparable_types_fail_closed(self):
        assert not P.gt(5).test("abc")
        assert not P.between(1, 9).test("abc")

    def test_within_traversal_end_to_end(self, mem):
        ids = g(mem).V().has("size", P.within(5)).id_().toList()
        assert ids == [1]  # vertex 2 stores the *string* "5"
        ids = g(mem).V().has("size", P.within("5")).id_().toList()
        assert ids == [2]


class TestHasOnMissingProperty:
    def test_has_missing_key_filters_out(self, mem):
        assert g(mem).V().has("color", "red").toList() == []

    def test_stored_none_counts_as_absent(self, mem):
        # name=None is stored but has() treats NULL as absent (SQL
        # semantics): even eq(None) cannot match it, hasNot() can
        assert g(mem).V().has("name", P.eq(None)).toList() == []
        assert 3 in {v.id for v in g(mem).V().hasNot("name").toList()}

    def test_hasnot_complements_has(self, mem):
        with_name = {v.id for v in g(mem).V().has("name").toList()}
        without_name = {v.id for v in g(mem).V().hasNot("name").toList()}
        assert with_name | without_name == {1, 2, 3, 4}
        assert with_name & without_name == set()

    def test_has_step_matches_unit(self):
        step = HasStep([("size", P.gt(3))])
        vertex = InMemoryGraph().add_vertex(1, "x", {"size": 4})
        assert step.matches(vertex)
        bare = InMemoryGraph().add_vertex(1, "x", {})
        assert not step.matches(bare)

    def test_hasnot_step_key_attribute(self):
        assert HasNotStep("color").key == "color"


class TestLimitZero:
    def test_limit_zero_yields_nothing(self, mem):
        assert g(mem).V().limit(0).toList() == []

    def test_limit_zero_after_expansion(self, mem):
        assert g(mem).V().out("link").limit(0).toList() == []

    def test_limit_zero_count(self, mem):
        assert g(mem).V().limit(0).count().next() == 0

    def test_limit_step_high_zero_consumes_no_input(self):
        consumed = []

        def source():
            for i in range(5):
                consumed.append(i)
                yield i

        step = LimitStep(0, 0)
        assert list(step.process(source(), None)) == []
        # the generator was never advanced past the cutoff check
        assert len(consumed) <= 1


class TestAnalyticsRegressions:
    def test_frontier_dedups_duplicate_ids(self, mem):
        # regression: a frontier with repeated ids must expand each
        # unique vertex once — the step event records the deduped size
        # and adjacency carries one entry per unique vertex
        executor = FrontierExecutor(mem)
        ordered, adjacency = executor.expand(
            [1, 1, 2, 1], Direction.OUT, (), algorithm="bfs"
        )
        assert ordered == [1, 2]
        assert sorted(v.id for v in adjacency[1]) == [2, 3]
        assert [v.id for v in adjacency[2]] == [3]

    def test_bool_weight_takes_default_not_one(self):
        # regression: bool subclasses int — a verified=True edge flag
        # must not silently become a distance of 1.0 vs the default
        assert coerce_weight(True, 7.5) == 7.5
        assert coerce_weight(False, 7.5) == 7.5
        assert coerce_weight(1, 7.5) == 1.0

    def test_negative_weight_rejected_even_as_float(self):
        with pytest.raises(AnalyticsError):
            coerce_weight(-0.5, 1.0)
