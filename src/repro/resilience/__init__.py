"""``repro.resilience`` — failure classification, retries, budgets, chaos.

The paper's pitch is that graph queries *free-ride* Db2's enterprise
robustness (§1, §4).  This package is that robustness for the
reproduction:

* :mod:`~repro.resilience.retry` — transient-vs-permanent error
  classification and an exponential-backoff-with-jitter
  :class:`RetryPolicy` applied per SQL statement in the graph layer;
* :mod:`~repro.resilience.budget` — :class:`QueryBudget` deadlines and
  resource ceilings with cancellation checkpoints at every SQL issue
  and traverser expansion;
* :mod:`~repro.resilience.faults` — a seeded :class:`FaultInjector` the
  executor consults before each statement, powering the deterministic
  chaos suite;
* :mod:`~repro.resilience.errors` — budget errors carrying
  partial-progress snapshots.

Everything time- or randomness-dependent takes an injectable clock,
sleep, and rng, so every failure path is testable without real waiting.
"""

from .budget import BudgetTracker, QueryBudget
from .errors import (
    BudgetError,
    BudgetExceededError,
    QueryTimeoutError,
    ResilienceError,
    RetryExhaustedError,
)
from .faults import (
    CrashPoint,
    Fault,
    FaultInjector,
    InjectedTransientError,
    SimulatedCrashError,
)
from .retry import NO_RETRY, TRANSIENT_ERRORS, RetryPolicy, is_transient

__all__ = [
    "QueryBudget",
    "BudgetTracker",
    "ResilienceError",
    "BudgetError",
    "BudgetExceededError",
    "QueryTimeoutError",
    "RetryExhaustedError",
    "RetryPolicy",
    "NO_RETRY",
    "TRANSIENT_ERRORS",
    "is_transient",
    "FaultInjector",
    "Fault",
    "CrashPoint",
    "InjectedTransientError",
    "SimulatedCrashError",
]
