"""Statement execution: DML, DDL, grants, and SELECT orchestration.

The executor sits between the public :class:`~repro.relational.database.Database`
API and the planner.  It is responsible for privilege checks, table
locking (readers-writer, acquired in sorted name order to avoid
deadlocks), constraint enforcement that spans tables (foreign keys),
and producing :class:`ResultSet` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterator, Sequence

from ..obs import metrics as obs_metrics
from ..obs import tracing
from . import sql_ast as A
from .catalog import View
from .errors import (
    CatalogError,
    ConstraintViolationError,
    ExecutionError,
    SqlSyntaxError,
)
from .expressions import Scope
from .planner import ExecContext, PlannedSelect, Planner
from .schema import Column, ForeignKey, TableSchema


@dataclass
class ResultSet:
    """The outcome of a statement: column names + row tuples, or a
    row-count for DML/DDL."""

    columns: list[str]
    rows: list[tuple]
    rowcount: int = -1

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (for COUNT(*)-style queries)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    @staticmethod
    def from_count(count: int) -> "ResultSet":
        return ResultSet(columns=[], rows=[], rowcount=count)


class Executor:
    def __init__(self, database: Any):
        self.database = database
        # Observability hook: when installed (Db2Graph.enable_phase_timing),
        # called as hook(kind, seconds, rows) after each statement so the
        # graph layer can attribute time spent inside the relational engine.
        self.timing_hook: Any = None

    # -- dispatch ----------------------------------------------------------

    def execute(self, stmt: A.Statement, session: Any, params: Sequence[Any]) -> ResultSet:
        if isinstance(stmt, (A.SelectStmt, A.UnionStmt)):
            planned = Planner(self.database).plan_select(stmt)
            return self.run_select(planned, session, params)
        hook = self.timing_hook
        if hook is None:
            return self._execute_dml(stmt, session, params)
        started = perf_counter()
        result = self._execute_dml(stmt, session, params)
        kind = type(stmt).__name__.removesuffix("Stmt").lower()
        hook(kind, perf_counter() - started, result.rowcount)
        return result

    def _execute_dml(self, stmt: A.Statement, session: Any, params: Sequence[Any]) -> ResultSet:
        kind = type(stmt).__name__.removesuffix("Stmt").lower()
        tables = [t for t in (getattr(stmt, "table", None),) if t]
        try:
            self._before_statement(kind, tables, session)
            return self._dispatch_dml(stmt, session, params)
        except Exception as exc:
            self._note_error(exc, kind)
            raise

    def _dispatch_dml(self, stmt: A.Statement, session: Any, params: Sequence[Any]) -> ResultSet:
        if isinstance(stmt, A.InsertStmt):
            return self._insert(stmt, session, params)
        if isinstance(stmt, A.UpdateStmt):
            return self._update(stmt, session, params)
        if isinstance(stmt, A.DeleteStmt):
            return self._delete(stmt, session, params)
        if isinstance(stmt, A.CreateTableStmt):
            return self._create_table(stmt, session)
        if isinstance(stmt, A.CreateViewStmt):
            return self._create_view(stmt, session)
        if isinstance(stmt, A.CreateIndexStmt):
            return self._create_index(stmt, session)
        if isinstance(stmt, A.AlterTableAddColumnStmt):
            return self._alter_add_column(stmt, session)
        if isinstance(stmt, A.DropStmt):
            return self._drop(stmt, session)
        if isinstance(stmt, A.GrantStmt):
            self.database.access.grant(stmt.privileges, stmt.table, stmt.user)
            self._log_ddl(
                {
                    "op": "grant",
                    "privs": list(stmt.privileges),
                    "tb": stmt.table,
                    "user": stmt.user,
                }
            )
            return ResultSet.from_count(0)
        if isinstance(stmt, A.RevokeStmt):
            self.database.access.revoke(stmt.privileges, stmt.table, stmt.user)
            self._log_ddl(
                {
                    "op": "revoke",
                    "privs": list(stmt.privileges),
                    "tb": stmt.table,
                    "user": stmt.user,
                }
            )
            return ResultSet.from_count(0)
        raise SqlSyntaxError(f"unsupported statement type {type(stmt).__name__}")

    # -- SELECT -----------------------------------------------------------

    def run_select(
        self, planned: PlannedSelect, session: Any, params: Sequence[Any]
    ) -> ResultSet:
        # Readers take no table locks: MVCC snapshots give them a
        # consistent view without blocking on writers — the property
        # behind Db2's concurrent-query strength the paper leans on.
        try:
            self._check_access(planned.accessed, session)
            self._before_statement(
                "select", [name for name, _priv in planned.accessed], session
            )
            hook = self.timing_hook
            started = perf_counter() if hook is not None else 0.0
            ctx = session.exec_context(params)
            rows = list(planned.root.rows(ctx))
        except Exception as exc:
            self._note_error(exc, "select")
            raise
        if hook is not None:
            hook("select", perf_counter() - started, len(rows))
        return ResultSet(columns=list(planned.output_names), rows=rows, rowcount=len(rows))

    # -- resilience hooks ---------------------------------------------------

    def _before_statement(self, kind: str, tables: Sequence[str], session: Any) -> None:
        """Chaos hook: give an installed fault injector the chance to
        fail or delay this statement (session-level wins over database)."""
        injector = getattr(session, "fault_injector", None)
        if injector is None:
            injector = self.database.fault_injector
        if injector is not None:
            injector.on_statement(
                kind,
                tables,
                registry=self.database.obs_registry,
                trace=self.database.obs_trace,
            )

    def _note_error(self, exc: Exception, kind: str) -> None:
        """Count/trace a statement failure exactly once per exception —
        nested statements (INSERT .. SELECT) re-raise the same instance."""
        if getattr(exc, "_obs_noted", False):
            return
        try:
            exc._obs_noted = True  # type: ignore[attr-defined]
        except AttributeError:
            pass
        self.database.obs_registry.counter(obs_metrics.SQL_ERRORS).increment()
        self.database.obs_trace.emit(
            tracing.SQL_ERROR, error=type(exc).__name__, statement=kind
        )

    def _check_access(self, accessed: list[tuple[str, str]], session: Any) -> None:
        for name, privilege in accessed:
            owner = self._owner_of(name)
            self.database.access.check(session.user, privilege, name, owner)

    def _owner_of(self, name: str) -> str | None:
        catalog = self.database.catalog
        if catalog.has_table(name):
            return catalog.get_table(name).owner
        if catalog.has_view(name):
            return catalog.get_view(name).owner
        return None

    # -- INSERT -----------------------------------------------------------

    def _insert(self, stmt: A.InsertStmt, session: Any, params: Sequence[Any]) -> ResultSet:
        table = self.database.catalog.get_table(stmt.table)
        self.database.access.check(session.user, "INSERT", table.name, table.owner)
        schema = table.schema

        if stmt.columns is not None:
            for col in stmt.columns:
                schema.require_column(col)
            positions = [schema.column_position(c) for c in stmt.columns]
        else:
            positions = list(range(len(schema.columns)))

        rows_to_insert: list[tuple] = []
        if stmt.rows is not None:
            scope = Scope([])
            ctx = session.exec_context(params)
            for value_row in stmt.rows:
                if len(value_row) != len(positions):
                    raise ConstraintViolationError(
                        f"INSERT expects {len(positions)} values, got {len(value_row)}"
                    )
                values = [expr.compile(scope)((), ctx) for expr in value_row]
                rows_to_insert.append(self._widen(values, positions, schema))
        elif stmt.select is not None:
            planned = Planner(self.database).plan_select(stmt.select)
            result = self.run_select(planned, session, params)
            for row in result.rows:
                if len(row) != len(positions):
                    raise ConstraintViolationError(
                        f"INSERT expects {len(positions)} values, got {len(row)}"
                    )
                rows_to_insert.append(self._widen(list(row), positions, schema))
        else:
            raise SqlSyntaxError("INSERT requires VALUES or SELECT")

        return self._insert_rows(table, rows_to_insert, session)

    def insert_rows(self, table_name: str, rows: list[Sequence[Any]], session: Any) -> int:
        """Bulk API used by loaders — same constraint path as SQL INSERT."""
        table = self.database.catalog.get_table(table_name)
        self.database.access.check(session.user, "INSERT", table.name, table.owner)
        return self._insert_rows(table, [tuple(r) for r in rows], session).rowcount

    def _insert_rows(self, table: Any, rows: list[tuple], session: Any) -> ResultSet:
        txn, own = session.write_transaction(table.name)
        try:
            for values in rows:
                coerced = table.schema.coerce_row(values)
                self._check_foreign_keys(table.schema, coerced, session, txn)
                table.storage.insert(coerced, txn)
            if own:
                txn.commit()
        except Exception:
            if own:
                txn.rollback()
            raise
        return ResultSet.from_count(len(rows))

    @staticmethod
    def _widen(values: list[Any], positions: list[int], schema: TableSchema) -> tuple:
        full: list[Any] = [None] * len(schema.columns)
        for pos, value in zip(positions, values):
            full[pos] = value
        return tuple(full)

    # -- UPDATE -----------------------------------------------------------

    def _update(self, stmt: A.UpdateStmt, session: Any, params: Sequence[Any]) -> ResultSet:
        table = self.database.catalog.get_table(stmt.table)
        self.database.access.check(session.user, "UPDATE", table.name, table.owner)
        schema = table.schema
        assign_positions = [schema.column_position(c) for c, _e in stmt.assignments]

        txn, own = session.write_transaction(table.name)
        try:
            ctx = session.exec_context(params, txn)
            scope = Scope([(stmt.table, c.name) for c in schema.columns])
            assign_fns = [expr.compile(scope) for _c, expr in stmt.assignments]
            where_fn = stmt.where.compile(scope) if stmt.where is not None else None

            matches: list[tuple[int, tuple]] = []
            for rowid, values in table.storage.scan(txn.snapshot_csn, txn.txn_id):
                if where_fn is None or where_fn(values, ctx) is True:
                    matches.append((rowid, values))

            for rowid, values in matches:
                new_values = list(values)
                for pos, fn in zip(assign_positions, assign_fns):
                    new_values[pos] = fn(values, ctx)
                coerced = schema.coerce_row(new_values)
                self._check_foreign_keys(schema, coerced, session, txn)
                self._check_not_referenced(
                    table, values, session, txn, changing_to=coerced
                )
                table.storage.update(rowid, coerced, txn)
            if own:
                txn.commit()
        except Exception:
            if own:
                txn.rollback()
            raise
        return ResultSet.from_count(len(matches))

    # -- DELETE -----------------------------------------------------------

    def _delete(self, stmt: A.DeleteStmt, session: Any, params: Sequence[Any]) -> ResultSet:
        table = self.database.catalog.get_table(stmt.table)
        self.database.access.check(session.user, "DELETE", table.name, table.owner)
        schema = table.schema

        txn, own = session.write_transaction(table.name)
        try:
            ctx = session.exec_context(params, txn)
            scope = Scope([(stmt.table, c.name) for c in schema.columns])
            where_fn = stmt.where.compile(scope) if stmt.where is not None else None

            matches: list[tuple[int, tuple]] = []
            for rowid, values in table.storage.scan(txn.snapshot_csn, txn.txn_id):
                if where_fn is None or where_fn(values, ctx) is True:
                    matches.append((rowid, values))

            for rowid, values in matches:
                self._check_not_referenced(table, values, session, txn, changing_to=None)
                table.storage.delete(rowid, txn)
            if own:
                txn.commit()
        except Exception:
            if own:
                txn.rollback()
            raise
        return ResultSet.from_count(len(matches))

    # -- foreign keys -------------------------------------------------------

    def _check_foreign_keys(
        self, schema: TableSchema, row: tuple, session: Any, txn: Any
    ) -> None:
        if not self.database.enforce_foreign_keys:
            return
        for fk in schema.foreign_keys:
            key = schema.key_of(row, fk.columns)
            if any(part is None for part in key):
                continue
            ref_table = self.database.catalog.get_table(fk.ref_table)
            if not self._key_exists(ref_table, fk.ref_columns, key, txn):
                raise ConstraintViolationError(
                    f"foreign key violation: {schema.name}{tuple(fk.columns)} = "
                    f"{key!r} not found in {fk.ref_table}{tuple(fk.ref_columns)}"
                )

    def _check_not_referenced(
        self, table: Any, row: tuple, session: Any, txn: Any, changing_to: tuple | None
    ) -> None:
        """RESTRICT semantics: block delete/key-change of a referenced row."""
        if not self.database.enforce_foreign_keys:
            return
        schema = table.schema
        if not schema.has_primary_key:
            return
        old_key = schema.key_of(row, schema.primary_key)
        if changing_to is not None:
            new_key = schema.key_of(changing_to, schema.primary_key)
            if new_key == old_key:
                return  # key unchanged; no dangling references possible
        for other in self.database.catalog.tables():
            for fk in other.schema.foreign_keys:
                if fk.ref_table.lower() != schema.name.lower():
                    continue
                if tuple(c.lower() for c in fk.ref_columns) != tuple(
                    c.lower() for c in schema.primary_key
                ):
                    continue
                if self._key_exists(other, fk.columns, old_key, txn):
                    raise ConstraintViolationError(
                        f"row {old_key!r} of {schema.name!r} is referenced by "
                        f"{other.schema.name!r}"
                    )

    @staticmethod
    def _key_exists(table: Any, columns: Sequence[str], key: tuple, txn: Any) -> bool:
        storage = table.storage
        schema = table.schema
        index = storage.index_on(columns)
        if index is not None:
            for rowid in index.lookup(key):
                values = storage.fetch(rowid, txn.snapshot_csn, txn.txn_id)
                if values is not None and schema.key_of(values, columns) == key:
                    return True
            return False
        for _rowid, values in storage.scan(txn.snapshot_csn, txn.txn_id):
            if schema.key_of(values, columns) == key:
                return True
        return False

    # -- DDL --------------------------------------------------------------

    def _log_ddl(self, record: dict) -> None:
        """WAL a successful DDL statement (no-op without durability).

        DDL autocommits, so each record flushes immediately; recovery
        replays them in log order interleaved with the DML groups.
        """
        durability = self.database.durability
        if durability is not None:
            durability.log_ddl(record)

    def _create_table(self, stmt: A.CreateTableStmt, session: Any) -> ResultSet:
        columns = [Column(c.name, c.sql_type, c.nullable) for c in stmt.columns]
        fks = [
            ForeignKey(tuple(fk.columns), fk.ref_table, tuple(fk.ref_columns))
            for fk in stmt.foreign_keys
        ]
        schema = TableSchema(
            stmt.name, columns, stmt.primary_key, fks, [tuple(u) for u in stmt.unique]
        )
        self.database.catalog.create_table(schema, owner=session.user)
        self.database.bump_ddl_generation()
        if self.database.durability is not None:
            from ..durability.checkpoint import serialize_schema

            self._log_ddl(
                {
                    "op": "create_table",
                    "schema": serialize_schema(schema),
                    "owner": session.user,
                }
            )
        return ResultSet.from_count(0)

    def _create_view(self, stmt: A.CreateViewStmt, session: Any) -> ResultSet:
        # Validate the view body by planning it once.
        planned = Planner(self.database).plan_select(stmt.select)
        view = View(
            stmt.name,
            stmt.select,
            owner=session.user,
            sql_text=getattr(stmt, "source_sql", "") or "",
        )
        view.columns = planned.output_names
        self.database.catalog.create_view(view, or_replace=stmt.or_replace)
        self.database.bump_ddl_generation()
        if view.sql_text:
            # Views replay from their original statement text; a view
            # built from a hand-constructed AST has none and is simply
            # not durable.
            self._log_ddl(
                {
                    "op": "create_view",
                    "name": stmt.name,
                    "sql": view.sql_text,
                    "owner": session.user,
                }
            )
        return ResultSet.from_count(0)

    def _create_index(self, stmt: A.CreateIndexStmt, session: Any) -> ResultSet:
        table = self.database.catalog.get_table(stmt.table)
        table.lock.acquire_write()
        try:
            self.database.catalog.create_index(
                stmt.name, stmt.table, stmt.columns, stmt.kind, stmt.unique
            )
        finally:
            table.lock.release_write()
        self.database.bump_ddl_generation()
        self._log_ddl(
            {
                "op": "create_index",
                "name": stmt.name,
                "table": stmt.table,
                "columns": list(stmt.columns),
                "kind": stmt.kind,
                "unique": stmt.unique,
            }
        )
        return ResultSet.from_count(0)

    def _alter_add_column(self, stmt: A.AlterTableAddColumnStmt, session: Any) -> ResultSet:
        table = self.database.catalog.get_table(stmt.table)
        column = Column(stmt.column.name, stmt.column.sql_type, nullable=True)
        table.lock.acquire_write()
        try:
            table.storage.add_column(column)
            table.schema = table.storage.schema
        finally:
            table.lock.release_write()
        self.database.bump_ddl_generation()
        if self.database.durability is not None:
            from ..durability.checkpoint import serialize_type

            self._log_ddl(
                {
                    "op": "add_column",
                    "tb": stmt.table,
                    "column": [column.name, *serialize_type(column.sql_type), True],
                }
            )
        return ResultSet.from_count(0)

    def _drop(self, stmt: A.DropStmt, session: Any) -> ResultSet:
        if stmt.kind == "TABLE":
            self.database.catalog.drop_table(stmt.name, stmt.if_exists)
        elif stmt.kind == "VIEW":
            self.database.catalog.drop_view(stmt.name, stmt.if_exists)
        elif stmt.kind == "INDEX":
            self.database.catalog.drop_index(stmt.name, stmt.if_exists)
        else:
            raise SqlSyntaxError(f"unsupported DROP {stmt.kind}")
        self.database.bump_ddl_generation()
        self._log_ddl({"op": "drop", "kind": stmt.kind, "name": stmt.name})
        return ResultSet.from_count(0)
