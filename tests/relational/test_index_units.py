"""Unit tests for the index structures themselves."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.errors import CatalogError
from repro.relational.index import HashIndex, SortedIndex, make_index


class TestHashIndex:
    def test_add_lookup(self):
        index = HashIndex("i", "t", ["a"])
        index.add((1,), 10)
        index.add((1,), 11)
        index.add((2,), 12)
        assert sorted(index.lookup((1,))) == [10, 11]
        assert list(index.lookup((3,))) == []

    def test_discard(self):
        index = HashIndex("i", "t", ["a"])
        index.add((1,), 10)
        index.discard((1,), 10)
        assert list(index.lookup((1,))) == []
        index.discard((1,), 99)  # idempotent

    def test_len_and_probes(self):
        index = HashIndex("i", "t", ["a"])
        index.add((1,), 10)
        index.add((2,), 11)
        assert len(index) == 2
        list(index.lookup((1,)))
        assert index.probes == 1

    def test_composite_keys(self):
        index = HashIndex("i", "t", ["a", "b"])
        index.add((1, "x"), 10)
        assert list(index.lookup((1, "x"))) == [10]
        assert list(index.lookup((1, "y"))) == []

    def test_no_range_support(self):
        assert not HashIndex("i", "t", ["a"]).supports_range()


class TestSortedIndex:
    def build(self):
        index = SortedIndex("s", "t", ["a"])
        for value, rowid in [(5, 1), (1, 2), (3, 3), (3, 4), (9, 5)]:
            index.add((value,), rowid)
        return index

    def test_point_lookup(self):
        index = self.build()
        assert sorted(index.lookup((3,))) == [3, 4]

    def test_range_inclusive(self):
        index = self.build()
        assert sorted(index.range((1,), (5,))) == [1, 2, 3, 4]

    def test_range_exclusive_bounds(self):
        index = self.build()
        assert sorted(index.range((1,), (5,), low_inclusive=False, high_inclusive=False)) == [3, 4]

    def test_open_ranges(self):
        index = self.build()
        assert sorted(index.range(low=(5,))) == [1, 5]
        assert sorted(index.range(high=(3,))) == [2, 3, 4]
        assert sorted(index.range()) == [1, 2, 3, 4, 5]

    def test_null_keys_not_indexed(self):
        index = SortedIndex("s", "t", ["a"])
        index.add((None,), 1)
        assert len(index) == 0

    def test_discard_removes_key_when_empty(self):
        index = self.build()
        index.discard((9,), 5)
        assert sorted(index.range(low=(6,))) == []

    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 100)), max_size=60),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_property_range_matches_filter(self, entries, low, high):
        index = SortedIndex("s", "t", ["a"])
        for value, rowid in entries:
            index.add((value,), rowid)
        expected = {rowid for value, rowid in entries if low <= value <= high}
        assert set(index.range((low,), (high,))) == expected


class TestAddDiscardSequences:
    """Lifecycle properties: after an arbitrary interleaving of adds and
    discards, every index answers exactly for the live (key, rowid) set
    — the recovery path leans on this when it rebuilds secondary indexes
    from replayed rows."""

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(-10, 10), st.integers(0, 20)),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sorted_range_equals_live_set(self, ops):
        index = SortedIndex("s", "t", ["a"])
        live: set[tuple[int, int]] = set()
        for is_add, value, rowid in ops:
            if is_add:
                index.add((value,), rowid)
                live.add((value, rowid))
            else:
                index.discard((value,), rowid)
                live.discard((value, rowid))
        assert sorted(index.range()) == sorted(r for _v, r in live)
        for value in {v for v, _r in live}:
            assert set(index.lookup((value,))) == {r for v, r in live if v == value}

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(-10, 10), st.integers(0, 20)),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_hash_and_sorted_point_lookups_agree(self, ops):
        hashed = HashIndex("h", "t", ["a"])
        sorted_ = SortedIndex("s", "t", ["a"])
        for is_add, value, rowid in ops:
            for index in (hashed, sorted_):
                if is_add:
                    index.add((value,), rowid)
                else:
                    index.discard((value,), rowid)
        assert len(hashed) == len(sorted_)
        for value in range(-10, 11):
            assert sorted(hashed.lookup((value,))) == sorted(sorted_.lookup((value,)))


class TestCompositeRanges:
    def build(self):
        index = SortedIndex("s", "t", ["a", "b"])
        for key, rowid in [
            ((1, "a"), 1),
            ((1, "b"), 2),
            ((2, "a"), 3),
            ((2, "c"), 4),
            ((3, "a"), 5),
        ]:
            index.add(key, rowid)
        return index

    def test_composite_range_is_lexicographic(self):
        index = self.build()
        assert sorted(index.range((1, "b"), (2, "c"))) == [2, 3, 4]

    def test_composite_point_lookup(self):
        index = self.build()
        assert list(index.lookup((2, "a"))) == [3]
        assert list(index.lookup((2, "b"))) == []

    def test_composite_null_component_not_indexed(self):
        index = SortedIndex("s", "t", ["a", "b"])
        index.add((1, None), 1)
        assert len(index) == 0

    def test_range_probes_counted(self):
        index = self.build()
        before = index.probes
        list(index.range((1, "a"), (3, "a")))
        assert index.probes == before + 1


class TestFactory:
    def test_make_index_kinds(self):
        assert make_index("hash", "i", "t", ["a"]).kind == "hash"
        assert make_index("sorted", "i", "t", ["a"]).kind == "sorted"
        assert make_index("btree", "i", "t", ["a"]).kind == "sorted"

    def test_unknown_kind(self):
        with pytest.raises(CatalogError):
            make_index("bitmap", "i", "t", ["a"])

    def test_empty_columns_rejected(self):
        with pytest.raises(CatalogError):
            HashIndex("i", "t", [])

    def test_unique_flag_propagates(self):
        assert make_index("hash", "i", "t", ["a"], unique=True).unique is True
        assert make_index("btree", "i", "t", ["a"], unique=True).unique is True
        assert make_index("sorted", "i", "t", ["a"]).unique is False
