"""Transactions, snapshots, table locks, and deadlock detection.

The engine uses multi-version concurrency control: every row version
carries a *begin* and *end* commit-sequence-number (CSN).  A statement
reads under a snapshot CSN and sees exactly the versions committed at
or before it, plus its own transaction's uncommitted writes.  Commits
additionally stamp versions with wallclock times, which is what powers
``FOR SYSTEM_TIME AS OF`` temporal queries (paper §1/§4: Db2's
bi-temporal support "comes for free" for the overlaid graph).

Write conflicts are prevented with per-table reader-writer locks held
until transaction end for writers and statement end for readers.  The
locks record their shared/exclusive hold times, which the benchmark
harness uses to derive each engine's serial fraction for the Fig. 6
throughput model.

Every lock of one database shares a :class:`LockManager`: one condition
variable guards all lock state, which makes three properties cheap to
provide the way a production engine does (paper §1: graph queries
free-ride Db2's concurrency control rather than reimplement it):

* **Deadlock detection** — a blocked acquire registers a wait edge and
  walks the wait-for graph; a cycle raises :class:`DeadlockError` on
  the *youngest* participant (largest transaction id) instead of
  letting both sides burn their full lock timeout.
* **Writer preference** — new readers queue behind waiting writers, so
  a steady reader stream cannot starve a writer.
* **Observability** — every wait and every detected deadlock emits a
  ``lock.wait`` / ``deadlock.detected`` trace event and counter through
  the shared :mod:`repro.obs` registry.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..common.clock import Clock, SystemClock
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_RECORDER, TraceRecorder
from .errors import DeadlockError, LockTimeoutError, TransactionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .storage import RowVersion, TableStorage


def _thread_owner() -> int:
    """Fallback lock owner for acquires outside a transaction (DDL).

    Negative so it can never win victim selection against a real
    transaction id (victim = the *largest* owner in the cycle).
    """
    return -threading.get_ident()


class LockManager:
    """Shared coordination point for every table lock of one database.

    A single condition variable guards all lock state.  That makes the
    wait-for graph trivially consistent (no lock-ordering problems
    inside the deadlock detector itself) and lets a detected victim be
    woken with one ``notify_all``.  Table-level locking is coarse
    enough that the shared condition is not a throughput concern.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        self._cond = threading.Condition()
        # owner -> (lock, exclusive) while the owner is blocked
        self._waits: dict[Any, tuple["RWLock", bool]] = {}
        # owners chosen as deadlock victims, with the error to deliver
        self._victims: dict[Any, DeadlockError] = {}
        self.deadlocks_detected = 0
        # Rebound by Database.bind_observability (Db2Graph.open installs
        # its own registry/recorder here so one snapshot spans layers).
        self.registry: MetricsRegistry = MetricsRegistry()
        self.trace: TraceRecorder = NULL_RECORDER

    # -- introspection (tests assert the lock table is clean) ---------------

    def waiting_owners(self) -> list[Any]:
        with self._cond:
            return list(self._waits)

    def is_clean(self) -> bool:
        """No pending waits and no undelivered victim markers."""
        with self._cond:
            return not self._waits and not self._victims

    # -- wait bookkeeping (callers hold self._cond) -------------------------

    def _begin_wait(self, owner: Any, lock: "RWLock", exclusive: bool) -> None:
        self._waits[owner] = (lock, exclusive)
        if exclusive:
            lock._waiting_writers += 1
        self.registry.counter(obs_metrics.LOCK_WAITS).increment()
        self.trace.emit(
            tracing.LOCK_WAIT, table=lock.name, owner=owner, exclusive=exclusive
        )
        try:
            self._check_deadlock(owner)
        except DeadlockError:
            self._end_wait(owner, lock, exclusive)
            raise

    def _end_wait(self, owner: Any, lock: "RWLock", exclusive: bool) -> None:
        self._waits.pop(owner, None)
        self._victims.pop(owner, None)
        if exclusive:
            lock._waiting_writers -= 1
            # a writer giving up may unblock readers queued behind it
            self._cond.notify_all()

    # -- wait-for graph ------------------------------------------------------

    def _blockers(self, owner: Any, lock: "RWLock", exclusive: bool) -> set[Any]:
        """Owners that currently prevent ``owner`` from acquiring."""
        blockers: set[Any] = set()
        if lock._writer_owner is not None and lock._writer_owner != owner:
            blockers.add(lock._writer_owner)
        if exclusive:
            blockers.update(r for r in lock._reader_count if r != owner)
        else:
            # writer preference: a reader queues behind waiting writers
            blockers.update(
                w
                for w, (waited, ex) in self._waits.items()
                if ex and waited is lock and w != owner
            )
        return blockers

    def _check_deadlock(self, start: Any) -> None:
        cycle = self._find_cycle(start)
        if cycle is None:
            return
        victim = max(cycle)  # youngest transaction = largest txn id
        self.deadlocks_detected += 1
        lock, _exclusive = self._waits[victim]
        self.registry.counter(obs_metrics.LOCK_DEADLOCKS).increment()
        self.trace.emit(
            tracing.DEADLOCK_DETECTED, table=lock.name, victim=victim, cycle=tuple(cycle)
        )
        error = DeadlockError(
            f"deadlock detected on {lock.name!r}: cycle {tuple(cycle)!r}, "
            f"victim txn {victim}",
            victim=victim,
            cycle=tuple(cycle),
        )
        if victim == start:
            raise error
        self._victims[victim] = error
        self._cond.notify_all()

    def _find_cycle(self, start: Any) -> list[Any] | None:
        """DFS from ``start`` over wait-for edges; the cycle through
        ``start`` (a new wait can only close cycles through itself)."""
        path: list[Any] = [start]
        visited: set[Any] = set()

        def walk(node: Any) -> bool:
            entry = self._waits.get(node)
            if entry is None:
                return False
            lock, exclusive = entry
            for blocker in self._blockers(node, lock, exclusive):
                if blocker == start:
                    return True
                if blocker in visited:
                    continue
                visited.add(blocker)
                path.append(blocker)
                if walk(blocker):
                    return True
                path.pop()
            return False

        return path if walk(start) else None


class RWLock:
    """A reader-writer lock with deadlock detection, writer preference,
    and hold-time instrumentation.

    Re-entrant per transaction is not needed: the executor acquires each
    table lock at most once per statement/transaction.  ``owner`` is a
    transaction id where available; lock-table DDL acquires fall back to
    a per-thread owner token.
    """

    def __init__(self, name: str = "", timeout: float = 10.0, manager: LockManager | None = None):
        self.name = name
        self.timeout = timeout
        self.manager = manager if manager is not None else LockManager()
        self._reader_count: dict[Any, int] = {}
        self._writer_owner: Any | None = None
        self._waiting_writers = 0
        self.shared_held_seconds = 0.0
        self.exclusive_held_seconds = 0.0
        self._shared_since: dict[Any, float] = {}
        self._exclusive_since = 0.0

    # -- introspection -------------------------------------------------------

    @property
    def writer_owner(self) -> Any | None:
        return self._writer_owner

    @property
    def reader_owners(self) -> list[Any]:
        return list(self._reader_count)

    @property
    def waiting_writers(self) -> int:
        return self._waiting_writers

    @property
    def is_idle(self) -> bool:
        """Nobody holds or waits on this lock (for leak regression tests)."""
        with self.manager._cond:
            return (
                self._writer_owner is None
                and not self._reader_count
                and self._waiting_writers == 0
            )

    # -- predicates (callers hold manager._cond) -----------------------------

    def _read_blocked(self, owner: Any) -> bool:
        if self._writer_owner is not None and self._writer_owner != owner:
            return True
        # writer preference: new readers queue behind waiting writers;
        # owners already reading may "re-enter" without queueing.
        if self._waiting_writers > 0 and owner not in self._reader_count:
            return True
        return False

    def _write_blocked(self, owner: Any) -> bool:
        if self._writer_owner is not None and self._writer_owner != owner:
            return True
        return any(reader != owner for reader in self._reader_count)

    # -- acquire/release -----------------------------------------------------

    def acquire_read(self, owner: Any = None, timeout: float | None = None) -> None:
        self._acquire(owner, exclusive=False, timeout=timeout)

    def acquire_write(self, owner: Any = None, timeout: float | None = None) -> None:
        self._acquire(owner, exclusive=True, timeout=timeout)

    def _acquire(self, owner: Any, exclusive: bool, timeout: float | None) -> None:
        if owner is None:
            owner = _thread_owner()
        manager = self.manager
        blocked = self._write_blocked if exclusive else self._read_blocked
        with manager._cond:
            if not blocked(owner):
                self._grant(owner, exclusive)
                return
            limit = self.timeout if timeout is None else timeout
            deadline = manager.clock() + limit
            manager._begin_wait(owner, self, exclusive)
            try:
                while True:
                    error = manager._victims.pop(owner, None)
                    if error is not None:
                        raise error
                    # Re-check the predicate on *every* wakeup — a timed-out
                    # wait() where the lock just became free must acquire,
                    # not raise.
                    if not blocked(owner):
                        self._grant(owner, exclusive)
                        return
                    remaining = deadline - manager.clock()
                    if remaining <= 0:
                        kind = "write" if exclusive else "read"
                        raise LockTimeoutError(
                            f"{kind} lock timeout on {self.name!r} (owner {owner!r})"
                        )
                    manager._cond.wait(remaining)
            finally:
                manager._end_wait(owner, self, exclusive)

    def _grant(self, owner: Any, exclusive: bool) -> None:
        if exclusive:
            self._writer_owner = owner
            self._exclusive_since = time.perf_counter()
        else:
            count = self._reader_count.get(owner, 0)
            self._reader_count[owner] = count + 1
            if count == 0:
                self._shared_since[owner] = time.perf_counter()

    def release_read(self, owner: Any = None) -> None:
        if owner is None:
            owner = _thread_owner()
        with self.manager._cond:
            count = self._reader_count.get(owner)
            if not count:
                raise TransactionError(
                    f"read lock on {self.name!r} not held by {owner!r}"
                )
            if count == 1:
                del self._reader_count[owner]
                since = self._shared_since.pop(owner, None)
                if since is not None:
                    self.shared_held_seconds += time.perf_counter() - since
            else:
                self._reader_count[owner] = count - 1
            self.manager._cond.notify_all()

    def release_write(self, owner: Any = None) -> None:
        with self.manager._cond:
            if self._writer_owner is None:
                raise TransactionError(f"write lock on {self.name!r} not held")
            if owner is not None and self._writer_owner != owner:
                raise TransactionError(
                    f"write lock on {self.name!r} held by {self._writer_owner!r}, "
                    f"not {owner!r}"
                )
            self._writer_owner = None
            self.exclusive_held_seconds += time.perf_counter() - self._exclusive_since
            self.manager._cond.notify_all()


class Transaction:
    """An open transaction: snapshot, undo information, and locks.

    ``isolation`` picks the read rule between statements:

    * :data:`READ_COMMITTED` (default, the engine's historical
      behavior) — :meth:`refresh_snapshot` advances the snapshot at
      every statement boundary, so later statements see concurrent
      commits immediately.
    * :data:`SNAPSHOT` — the snapshot taken at BEGIN is kept for the
      whole transaction; every statement reads the same committed
      state (plus own writes).  Combined with the storage layer's
      first-committer-wins write-write conflict check this is snapshot
      isolation: no read skew is observable within one transaction.
    """

    ACTIVE = "active"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"

    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"

    def __init__(
        self,
        txn_id: int,
        snapshot_csn: int,
        manager: "TransactionManager",
        isolation: str = READ_COMMITTED,
    ):
        if isolation not in (Transaction.READ_COMMITTED, Transaction.SNAPSHOT):
            raise TransactionError(f"unknown isolation level {isolation!r}")
        self.txn_id = txn_id
        self.snapshot_csn = snapshot_csn
        self.isolation = isolation
        self.status = Transaction.ACTIVE
        self._manager = manager
        # Versions this transaction created / logically deleted, paired
        # with the storage that owns them (for rollback cleanup).
        self.created: list[tuple[TableStorage, int, RowVersion]] = []
        self.ended: list[RowVersion] = []
        self.write_locks: dict[str, RWLock] = {}
        self.read_locks: dict[str, RWLock] = {}

    # -- bookkeeping used by TableStorage ---------------------------------

    def record_create(self, storage: "TableStorage", rowid: int, version: "RowVersion") -> None:
        self.created.append((storage, rowid, version))

    def record_end(self, version: "RowVersion") -> None:
        self.ended.append(version)

    def note_write(
        self,
        kind: str,
        storage: "TableStorage",
        rowid: int,
        values: tuple | None = None,
    ) -> None:
        """Buffer a logical redo record for the WAL (no-op when the
        database is not durable).

        Called by :class:`TableStorage` while its mutation lock is held;
        the durability manager's buffer lock is a leaf, so this can
        never deadlock against a concurrent checkpoint.
        """
        durability = self._manager.durability
        if durability is None:
            return
        record: dict = {
            "k": kind,
            "t": self.txn_id,
            "tb": storage.schema.name.lower(),
            "r": rowid,
        }
        if values is not None:
            record["v"] = tuple(values)
        durability.note_dml(self.txn_id, record)

    def refresh_snapshot(self) -> None:
        """Advance the snapshot to the latest committed CSN.

        Called between statements for READ COMMITTED-style visibility,
        which matches what the graph layer needs: "any update to the
        relational tables from the transactional side is immediately
        available to the graph queries".  Under :data:`SNAPSHOT`
        isolation this is a no-op — the BEGIN-time snapshot holds for
        the transaction's lifetime.
        """
        if self.isolation == Transaction.SNAPSHOT:
            return
        self.snapshot_csn = self._manager.current_csn()

    def commit(self) -> int:
        return self._manager.commit(self)

    def rollback(self) -> None:
        self._manager.rollback(self)

    @property
    def is_active(self) -> bool:
        return self.status == Transaction.ACTIVE


class TransactionManager:
    """Allocates transactions and CSNs, and maps CSNs to wallclock time."""

    def __init__(self, clock: Clock | None = None):
        self.clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._next_txn_id = 1
        self._csn = 0
        # Parallel arrays: commit wallclock times and the CSN committed
        # at that time, used to translate AS OF timestamps to CSNs.
        self._commit_times: list[float] = []
        self._commit_csns: list[int] = []
        # Called with the written (lowercase) table names of every DML
        # commit, after version stamping and before lock release; the
        # database registers the cache epoch bump here.  Rollback never
        # fires these.
        self.commit_hooks: list = []
        # Durability manager (repro.durability) or None for a purely
        # in-memory database.  When set, commit routes version stamping
        # through it so the WAL group is flushed *before* the versions
        # become visible (durable-before-visible).
        self.durability = None
        # Replication node handle (repro.replication) or None.  When
        # set, commit is fenced (a deposed primary's writes are rejected
        # before any local effect) and, after the commit completes
        # locally, the handle may wait for replica acks (sync-ack mode).
        self.replication = None

    def begin(self, isolation: str = Transaction.READ_COMMITTED) -> Transaction:
        with self._lock:
            txn = Transaction(self._next_txn_id, self._csn, self, isolation)
            self._next_txn_id += 1
            return txn

    def current_csn(self) -> int:
        with self._lock:
            return self._csn

    def commit(self, txn: Transaction) -> int:
        if not txn.is_active:
            raise TransactionError(f"transaction {txn.txn_id} is not active")
        if self.replication is not None:
            # Fencing: a deposed primary must reject the write before
            # any local effect (no CSN allocated, nothing logged).
            self.replication.ensure_primary()
        now = self.clock.now()
        with self._lock:
            self._csn += 1
            csn = self._csn
            if txn.created or txn.ended:
                # Only ops-bearing commits enter the AS OF history: a
                # no-op commit (e.g. a DELETE matching zero rows) stamps
                # no versions and writes no WAL group, so recording it
                # would make the in-memory history strictly richer than
                # anything recovery or a replica can rebuild — and it
                # cannot change what any AS OF snapshot sees.
                self._commit_times.append(now)
                self._commit_csns.append(csn)

        def stamp() -> None:
            for _storage, _rowid, version in txn.created:
                version.commit_begin(csn, now)
            for version in txn.ended:
                version.commit_end(csn, now)

        if self.durability is None:
            stamp()
        else:
            # Flush-before-commit: the WAL group reaches disk before any
            # version is stamped visible (and before the epoch-bump
            # hooks below).  A crash inside leaves the transaction
            # either fully durable or fully absent.
            self.durability.commit_transaction(txn, csn, now, stamp)
        txn.status = Transaction.COMMITTED
        # Epoch bumps must land after the versions above are stamped
        # (committed data visible before its epoch moves — the cache's
        # capture-before-SQL rule depends on this order) and before the
        # write locks release.
        if self.commit_hooks:
            written = list(txn.write_locks)
            if written:
                for hook in self.commit_hooks:
                    hook(written)
        self._release_locks(txn)
        if self.replication is not None:
            # Sync-ack mode pumps the replication transport until every
            # live replica has redo-applied this commit's frames (or
            # raises ReplicationAckTimeout — the commit stays durable
            # and visible locally, but is *uncertain* on the replicated
            # timeline).  Async mode pumps once, opportunistically.
            self.replication.on_commit(csn)
        return csn

    def rollback(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise TransactionError(f"transaction {txn.txn_id} is not active")
        for storage, rowid, version in txn.created:
            storage.discard_version(rowid, version)
        for version in txn.ended:
            version.clear_end()
        if self.durability is not None:
            self.durability.rollback_transaction(txn)
        txn.status = Transaction.ROLLED_BACK
        self._release_locks(txn)

    # -- durability support --------------------------------------------------

    def peek_next_txn_id(self) -> int:
        with self._lock:
            return self._next_txn_id

    def commit_history(self, up_to_csn: int | None = None) -> list[tuple[float, int]]:
        """``(wallclock, csn)`` pairs of every commit, optionally capped
        at ``up_to_csn`` (checkpoints cap at the last *logged* CSN so an
        allocated-but-unflushed commit is never captured twice)."""
        with self._lock:
            pairs = list(zip(self._commit_times, self._commit_csns))
        if up_to_csn is None:
            return pairs
        return [(time, csn) for time, csn in pairs if csn <= up_to_csn]

    def note_replicated_commit(self, csn: int, now: float, txn_id: int = 0) -> None:
        """Advance the CSN clock and AS OF history for one redo-applied
        commit (replica apply path — the commit keeps the *primary's*
        CSN and wallclock stamps, so temporal queries agree across
        nodes).  Also tracks the highest replayed transaction id so a
        promoted replica allocates fresh ids."""
        with self._lock:
            if csn > self._csn:
                self._csn = csn
                self._commit_times.append(now)
                self._commit_csns.append(csn)
            if txn_id >= self._next_txn_id:
                self._next_txn_id = txn_id + 1

    def restore_state(
        self, csn: int, next_txn_id: int, history: list[tuple[float, int]]
    ) -> None:
        """Reset counters and AS OF history after crash recovery."""
        with self._lock:
            self._csn = csn
            self._next_txn_id = max(next_txn_id, 1)
            self._commit_times = [time for time, _csn in history]
            self._commit_csns = [c for _time, c in history]

    def csn_as_of(self, timestamp: float) -> int:
        """The CSN visible at wallclock ``timestamp`` (for AS OF)."""
        with self._lock:
            pos = bisect.bisect_right(self._commit_times, timestamp)
            return self._commit_csns[pos - 1] if pos else 0

    def _release_locks(self, txn: Transaction) -> None:
        for lock in txn.write_locks.values():
            lock.release_write(txn.txn_id)
        txn.write_locks.clear()
        for lock in txn.read_locks.values():
            lock.release_read(txn.txn_id)
        txn.read_locks.clear()
