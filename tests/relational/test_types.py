"""Unit tests for the SQL type system."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.relational.errors import TypeMismatchError
from repro.relational.types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    VARCHAR,
    VarcharType,
    type_from_name,
)


class TestInteger:
    def test_accepts_int(self):
        assert INTEGER.coerce(42) == 42

    def test_accepts_integral_float(self):
        assert INTEGER.coerce(42.0) == 42

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce(42.5)

    def test_accepts_numeric_string(self):
        assert INTEGER.coerce("17") == 17

    def test_rejects_non_numeric_string(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce("hello")

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce(True)

    def test_null_passthrough(self):
        assert INTEGER.coerce(None) is None

    @given(st.integers())
    def test_property_roundtrip(self, value):
        assert INTEGER.coerce(value) == value


class TestDouble:
    def test_accepts_int_and_float(self):
        assert DOUBLE.coerce(2) == 2.0
        assert DOUBLE.coerce(2.5) == 2.5

    def test_accepts_numeric_string(self):
        assert DOUBLE.coerce("3.14") == pytest.approx(3.14)

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            DOUBLE.coerce(False)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_property_roundtrip(self, value):
        assert DOUBLE.coerce(value) == value


class TestVarchar:
    def test_accepts_str(self):
        assert VARCHAR.coerce("hi") == "hi"

    def test_stringifies_numbers(self):
        assert VARCHAR.coerce(5) == "5"

    def test_length_limit_enforced(self):
        limited = VarcharType(3)
        assert limited.coerce("abc") == "abc"
        with pytest.raises(TypeMismatchError):
            limited.coerce("abcd")

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            VARCHAR.coerce(True)

    def test_name_includes_length(self):
        assert VarcharType(10).name == "VARCHAR(10)"
        assert VARCHAR.name == "VARCHAR"


class TestBoolean:
    def test_accepts_bool(self):
        assert BOOLEAN.coerce(True) is True

    def test_accepts_zero_one(self):
        assert BOOLEAN.coerce(1) is True
        assert BOOLEAN.coerce(0) is False

    def test_accepts_true_false_strings(self):
        assert BOOLEAN.coerce("true") is True
        assert BOOLEAN.coerce("FALSE") is False

    def test_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            BOOLEAN.coerce(2)


class TestTimestamp:
    def test_accepts_epoch_float(self):
        assert TIMESTAMP.coerce(1234.5) == 1234.5

    def test_accepts_datetime(self):
        dt = datetime.datetime(2020, 6, 14, 12, 0, 0)
        assert TIMESTAMP.coerce(dt) == dt.timestamp()

    def test_accepts_iso_string(self):
        value = TIMESTAMP.coerce("2020-06-14T12:00:00")
        assert value == datetime.datetime(2020, 6, 14, 12, 0, 0).timestamp()

    def test_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.coerce("not a date")


class TestTypeFromName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", INTEGER),
            ("integer", INTEGER),
            ("BIGINT", BIGINT),
            ("LONG", BIGINT),
            ("DOUBLE", DOUBLE),
            ("FLOAT", DOUBLE),
            ("VARCHAR", VARCHAR),
            ("string", VARCHAR),
            ("BOOLEAN", BOOLEAN),
            ("TIMESTAMP", TIMESTAMP),
        ],
    )
    def test_known_names(self, name, expected):
        assert type_from_name(name) == expected

    def test_varchar_with_length(self):
        resolved = type_from_name("VARCHAR", 12)
        assert isinstance(resolved, VarcharType)
        assert resolved.length == 12

    def test_unknown_name_raises(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("BLOB")

    def test_equality_and_hash(self):
        assert VarcharType(5) == VarcharType(5)
        assert VarcharType(5) != VarcharType(6)
        assert hash(VarcharType(5)) == hash(VarcharType(5))
