"""Deadlock detection, victim selection, writer preference, and the
lock-leak / deadline-loop regressions.

The opposite-order-writers scenario is the acceptance test from the
issue: before the wait-for-graph detector this blocked for the full
10 s lock timeout; now one transaction (the youngest) is chosen as the
victim and fails in well under a second while the other proceeds.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.relational import Database, DeadlockError, LockTimeoutError
from repro.relational.transactions import LockManager, RWLock


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


@pytest.fixture
def two_tables():
    db = Database()
    db.execute("CREATE TABLE a (id INT)")
    db.execute("CREATE TABLE b (id INT)")
    return db


class TestDeadlockDetection:
    def test_opposite_order_writers_raise_deadlock_fast(self, two_tables):
        db = two_tables
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c2.execute("BEGIN")
        c1.execute("INSERT INTO a VALUES (1)")  # txn1 holds a
        c2.execute("INSERT INTO b VALUES (1)")  # txn2 holds b
        txn1_id = c1.current_txn.txn_id
        txn2_id = c2.current_txn.txn_id
        assert txn2_id > txn1_id  # c2 began later: the younger txn

        survivor_error: list[Exception] = []

        def cross():  # txn1 now wants b — blocks behind txn2
            try:
                c1.execute("INSERT INTO b VALUES (2)")
            except Exception as error:  # pragma: no cover - failure path
                survivor_error.append(error)

        thread = threading.Thread(target=cross)
        started = time.monotonic()
        thread.start()
        assert _wait_until(lambda: txn1_id in db.lock_manager.waiting_owners())

        # txn2 wants a — closes the cycle; txn2 is youngest, so it is
        # the victim and fails immediately (no 10 s timeout).
        with pytest.raises(DeadlockError) as info:
            c2.execute("INSERT INTO a VALUES (2)")
        elapsed = time.monotonic() - started
        assert elapsed < 1.0, f"deadlock took {elapsed:.2f}s to detect"
        assert info.value.victim == txn2_id
        assert set(info.value.cycle) == {txn1_id, txn2_id}

        # the victim's transaction is still rollback-able; rolling it
        # back releases b and unblocks the survivor
        c2.rollback()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert not survivor_error
        c1.commit()
        assert db.lock_manager.is_clean()
        assert db.execute("SELECT COUNT(*) FROM b").scalar() == 1

    def test_victim_waiting_in_wait_loop_is_woken(self, two_tables):
        """When the cycle-closing request comes from the *older* txn,
        the younger one — already blocked in its wait loop — must be
        woken and receive the DeadlockError."""
        db = two_tables
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c2.execute("BEGIN")
        c2.execute("INSERT INTO b VALUES (1)")  # younger txn holds b first
        c1.execute("INSERT INTO a VALUES (1)")
        txn1_id = c1.current_txn.txn_id
        txn2_id = c2.current_txn.txn_id

        victim_error: list[Exception] = []

        def younger_waits():  # txn2 wants a — blocks behind txn1
            try:
                c2.execute("INSERT INTO a VALUES (2)")
            except Exception as error:
                victim_error.append(error)
                c2.rollback()  # victim client responds by rolling back

        thread = threading.Thread(target=younger_waits)
        thread.start()
        assert _wait_until(lambda: txn2_id in db.lock_manager.waiting_owners())

        # txn1 wants b: cycle closes, but txn2 (younger) is the victim —
        # this statement *succeeds* once the victim rolls back.
        c1.execute("INSERT INTO b VALUES (2)")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(victim_error) == 1
        assert isinstance(victim_error[0], DeadlockError)
        assert victim_error[0].victim == txn2_id

        c1.commit()
        assert db.lock_manager.is_clean()

    def test_deadlock_counter_and_trace_emitted(self, two_tables):
        from repro.obs import metrics as M
        from repro.obs import tracing
        from repro.obs.tracing import TraceRecorder

        db = two_tables
        trace = TraceRecorder(enabled=True)
        db.bind_observability(db.obs_registry, trace)
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c2.execute("BEGIN")
        c1.execute("INSERT INTO a VALUES (1)")
        c2.execute("INSERT INTO b VALUES (1)")

        thread = threading.Thread(target=lambda: c1.execute("INSERT INTO b VALUES (2)"))
        thread.start()
        assert _wait_until(
            lambda: c1.current_txn.txn_id in db.lock_manager.waiting_owners()
        )
        with pytest.raises(DeadlockError):
            c2.execute("INSERT INTO a VALUES (2)")
        c2.rollback()
        thread.join(timeout=5.0)
        c1.commit()

        assert db.obs_registry.counter(M.LOCK_DEADLOCKS).value == 1
        assert trace.count(tracing.DEADLOCK_DETECTED) == 1
        assert db.obs_registry.counter(M.LOCK_WAITS).value == trace.count(
            tracing.LOCK_WAIT
        )
        assert trace.count(tracing.LOCK_WAIT) >= 2  # both blocked acquires


class TestWriterPreference:
    def test_new_readers_queue_behind_waiting_writer(self):
        lock = RWLock("t", timeout=5.0)
        lock.acquire_read(owner=1)
        blocked = threading.Thread(target=lambda: lock.acquire_write(owner=2))
        blocked.start()
        assert _wait_until(lambda: lock.waiting_writers == 1)

        # a steady stream of new readers must NOT starve the writer:
        # they queue behind it and time out instead of sneaking in
        with pytest.raises(LockTimeoutError):
            lock.acquire_read(owner=3, timeout=0.05)

        lock.release_read(owner=1)  # writer's turn now
        blocked.join(timeout=5.0)
        assert lock.writer_owner == 2
        lock.release_write(owner=2)
        # with the writer gone, readers acquire freely again
        lock.acquire_read(owner=3, timeout=0.05)
        lock.release_read(owner=3)
        assert lock.is_idle

    def test_existing_reader_may_reenter_despite_waiting_writer(self):
        lock = RWLock("t", timeout=5.0)
        lock.acquire_read(owner=1)
        blocked = threading.Thread(target=lambda: lock.acquire_write(owner=2))
        blocked.start()
        assert _wait_until(lambda: lock.waiting_writers == 1)
        # re-entrant read by the holder must not deadlock against itself
        lock.acquire_read(owner=1, timeout=0.05)
        lock.release_read(owner=1)
        lock.release_read(owner=1)
        blocked.join(timeout=5.0)
        lock.release_write(owner=2)
        assert lock.is_idle


class TestDeadlineLoopRegression:
    def test_wakeup_after_timeout_with_free_lock_acquires(self, monkeypatch):
        """The old loop raised whenever ``wait()`` returned False, even
        when the lock had just been freed — the predicate must be
        re-checked after every wakeup."""
        lock = RWLock("t")
        lock.acquire_write(owner=1)

        def timed_out_but_freed(timeout=None):
            # simulate: wait() times out, but the writer released while
            # we were blocked
            lock._writer_owner = None
            return False

        monkeypatch.setattr(lock.manager._cond, "wait", timed_out_but_freed)
        lock.acquire_read(owner=2, timeout=0.05)  # must acquire, not raise
        assert lock.reader_owners == [2]
        lock.release_read(owner=2)

    def test_timeout_recomputed_across_spurious_wakeups(self):
        """Spurious wakeups must not each restart the full timeout: total
        wait stays near the requested deadline."""
        lock = RWLock("t")
        lock.acquire_write(owner=1)
        waker_stop = threading.Event()

        def waker():  # storm of notifies = spurious wakeups for the reader
            while not waker_stop.is_set():
                with lock.manager._cond:
                    lock.manager._cond.notify_all()
                time.sleep(0.002)

        thread = threading.Thread(target=waker)
        thread.start()
        started = time.monotonic()
        try:
            with pytest.raises(LockTimeoutError):
                lock.acquire_read(owner=2, timeout=0.1)
            elapsed = time.monotonic() - started
            assert elapsed < 2.0, f"timeout ballooned to {elapsed:.2f}s"
        finally:
            waker_stop.set()
            thread.join(timeout=5.0)
        lock.release_write(owner=1)


class TestLockLeakRegression:
    def test_txn_usable_after_lock_timeout_rollback_then_retry(self, two_tables):
        db = two_tables
        table = db.catalog.get_table("a")
        table.lock.timeout = 0.05
        c1, c2 = db.connect(), db.connect()

        c1.execute("BEGIN")
        c1.execute("INSERT INTO a VALUES (1)")  # c1 holds a's write lock

        c2.execute("BEGIN")
        c2.execute("INSERT INTO b VALUES (1)")
        with pytest.raises(LockTimeoutError):
            c2.execute("INSERT INTO a VALUES (2)")  # times out on a

        # no stale wait entries or reader/writer counts
        assert db.lock_manager.is_clean()
        assert table.lock.writer_owner == c1.current_txn.txn_id

        # the failed statement left c2's transaction rollback-able
        c2.rollback()
        c1.commit()
        assert table.lock.is_idle

        # ...and retry succeeds
        c2.execute("INSERT INTO a VALUES (2)")
        assert db.execute("SELECT COUNT(*) FROM a").scalar() == 2
        # b's insert was rolled back with c2's transaction
        assert db.execute("SELECT COUNT(*) FROM b").scalar() == 0

    def test_autocommit_lock_timeout_leaves_no_active_txn(self, two_tables):
        db = two_tables
        db.catalog.get_table("a").lock.timeout = 0.05
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO a VALUES (1)")

        with pytest.raises(LockTimeoutError):
            c2.execute("INSERT INTO a VALUES (2)")  # autocommit statement
        assert c2.current_txn is None  # no leaked ACTIVE transaction
        assert db.lock_manager.is_clean()

        c1.commit()
        c2.execute("INSERT INTO a VALUES (3)")  # connection still usable
        assert db.execute("SELECT COUNT(*) FROM a").scalar() == 2


class TestStandaloneLock:
    def test_standalone_rwlock_keeps_private_manager(self):
        a, b = RWLock("a"), RWLock("b")
        assert a.manager is not b.manager  # no accidental shared state
        a.acquire_write(owner=1)
        b.acquire_write(owner=1)
        a.release_write(owner=1)
        b.release_write(owner=1)
        assert a.exclusive_held_seconds > 0.0

    def test_database_tables_share_one_manager(self, two_tables):
        db = two_tables
        lock_a = db.catalog.get_table("a").lock
        lock_b = db.catalog.get_table("b").lock
        assert lock_a.manager is lock_b.manager is db.lock_manager

    def test_thread_owner_never_beats_txn_in_victim_selection(self):
        manager = LockManager()
        lock_a = RWLock("a", manager=manager)
        lock_b = RWLock("b", manager=manager)
        # txn 5 holds a; this thread (DDL-style, negative owner) holds b
        lock_a.acquire_write(owner=5)
        lock_b.acquire_write()  # thread-owner fallback

        waiter_error: list[Exception] = []

        def txn_waits():  # txn 5 wants b
            try:
                lock_b.acquire_write(owner=5, timeout=5.0)
            except DeadlockError as error:
                waiter_error.append(error)
                lock_a.release_write(owner=5)  # the victim "rolls back"

        thread = threading.Thread(target=txn_waits)
        thread.start()
        assert _wait_until(lambda: 5 in manager.waiting_owners())
        # this thread wants a: cycle {5, -thread}; the positive txn id
        # is always the max — the txn is the victim, never the thread,
        # so this acquire succeeds once the victim releases.
        lock_a.acquire_write(timeout=5.0)
        thread.join(timeout=5.0)
        assert len(waiter_error) == 1
        assert waiter_error[0].victim == 5
        lock_a.release_write()
        lock_b.release_write()
        assert manager.is_clean()
