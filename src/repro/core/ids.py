"""Id templates: how vertex/edge ids map to table columns.

The overlay configuration defines ids with specs like::

    "diseaseID"                      # one column, raw value
    "'patient'::patientID"           # constant prefix + column
    "'ontology'::sourceID::targetID" # prefix + two columns

A single bare column keeps the raw column value as the id (so
``g.V(42)`` works with integer ids); anything else renders to a
``::``-joined string.  Decoding inverts rendering and is the basis of
two runtime optimizations (paper §6.3): *prefixed id* table pinning and
breaking an id apart into conjunctive SQL predicates.

Implicit edge ids are the concatenation ``src_v::label::dst_v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..relational.errors import CatalogError

SEPARATOR = "::"


@dataclass(frozen=True)
class ConstPart:
    value: str


@dataclass(frozen=True)
class ColumnPart:
    column: str


Part = ConstPart | ColumnPart


class IdTemplate:
    """A parsed id spec: a sequence of constant and column parts."""

    def __init__(self, parts: Sequence[Part]):
        if not parts:
            raise CatalogError("id template must have at least one part")
        self.parts = tuple(parts)
        self.columns = tuple(p.column for p in parts if isinstance(p, ColumnPart))
        if not self.columns:
            raise CatalogError("id template must reference at least one column")
        self.constants = tuple(p.value for p in parts if isinstance(p, ConstPart))
        self.is_single_column = len(self.parts) == 1

    @classmethod
    def parse(cls, spec: str) -> "IdTemplate":
        parts: list[Part] = []
        for raw in spec.split(SEPARATOR):
            token = raw.strip()
            if not token:
                raise CatalogError(f"empty segment in id spec {spec!r}")
            if token.startswith("'") and token.endswith("'") and len(token) >= 2:
                parts.append(ConstPart(token[1:-1]))
            else:
                parts.append(ColumnPart(token))
        return cls(parts)

    @property
    def prefix(self) -> str | None:
        """The leading constant, if the template starts with one."""
        first = self.parts[0]
        return first.value if isinstance(first, ConstPart) else None

    # -- render / decode ------------------------------------------------------

    def render(self, row: Mapping[str, Any]) -> Any:
        """Build the id value for a row (columns looked up lowercase)."""
        if self.is_single_column:
            return row[self.columns[0].lower()]
        rendered: list[str] = []
        for part in self.parts:
            if isinstance(part, ConstPart):
                rendered.append(part.value)
            else:
                rendered.append(_segment(row[part.column.lower()]))
        return SEPARATOR.join(rendered)

    def decode(self, id_value: Any, strict: bool = True) -> dict[str, Any] | None:
        """Invert :meth:`render`: id value -> column values (as strings
        for composite ids), or ``None`` when the id cannot belong to
        this template (e.g. wrong prefix) — which is exactly the signal
        used for table elimination.

        ``strict=False`` models a system *without* the prefixed-id
        optimization (§6.3): constants are not verified and a
        ``::``-bearing string is still tried against a single-column
        template, so the SQL gets issued and simply returns nothing.
        """
        if self.is_single_column:
            if strict and isinstance(id_value, str) and SEPARATOR in id_value:
                return None
            return {self.columns[0]: id_value}
        if not isinstance(id_value, str):
            return None
        segments = id_value.split(SEPARATOR)
        if len(segments) != len(self.parts):
            return None
        values: dict[str, Any] = {}
        for part, segment in zip(self.parts, segments):
            if isinstance(part, ConstPart):
                if strict and part.value != segment:
                    return None
            else:
                values[part.column] = segment
        return values

    def segment_count(self) -> int:
        return len(self.parts)

    def spec(self) -> str:
        return SEPARATOR.join(
            f"'{p.value}'" if isinstance(p, ConstPart) else p.column for p in self.parts
        )

    def __repr__(self) -> str:
        return f"IdTemplate({self.spec()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IdTemplate) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(self.parts)


class ImplicitEdgeId:
    """``src_v::label::dst_v`` implicit edge ids (paper §5).

    The label segment must be a fixed label for decoding to pin down
    the edge table — the optimization described in §6.3 ("Using
    Implicit Edge Id Values")."""

    def __init__(self, src_template: IdTemplate, label: str, dst_template: IdTemplate):
        self.src_template = src_template
        self.label = label
        self.dst_template = dst_template

    def render(self, row: Mapping[str, Any]) -> str:
        src = _segment(self.src_template.render(row))
        dst = _segment(self.dst_template.render(row))
        return SEPARATOR.join([src, self.label, dst])

    def decode(self, edge_id: Any, strict: bool = True) -> tuple[Any, Any] | None:
        """edge id -> (src_v id, dst_v id), or None on mismatch.

        Composite src/dst ids embed their own ``::`` separators; the
        fixed label anchors the split.  ``strict=False`` skips the
        label check (modelling a system without the implicit-edge-id
        table elimination of §6.3).
        """
        if not isinstance(edge_id, str):
            return None
        segments = edge_id.split(SEPARATOR)
        n_src = self.src_template.segment_count()
        n_dst = self.dst_template.segment_count()
        if len(segments) != n_src + 1 + n_dst:
            return None
        if strict and segments[n_src] != self.label:
            return None
        src_id = SEPARATOR.join(segments[:n_src])
        dst_id = SEPARATOR.join(segments[n_src + 1 :])
        if self.src_template.is_single_column:
            src_id = segments[0]
        if self.dst_template.is_single_column:
            dst_id = segments[-1]
        return src_id, dst_id


def _segment(value: Any) -> str:
    if value is None:
        raise CatalogError("id column value is NULL; cannot build id")
    return str(value)
