"""Durability: write-ahead logging, checkpoints, and crash recovery.

The paper's pitch (§1, §7) is that a graph layer retrofitted *inside*
the RDBMS inherits the enterprise guarantees underneath — ACID,
recovery, HA — instead of reimplementing them.  This package supplies
the "recovery" leg for the reproduction's in-memory engine: a
checksummed WAL flushed at commit, atomic-rename checkpoints, and a
recovery path that rebuilds a bit-identical queryable state, so the
graph overlay (which never copies data) survives crashes for free.
"""

from .codec import (
    HEADER_SIZE,
    decode_record,
    decode_value,
    encode_record,
    encode_value,
    intact_prefix_length,
    iter_records,
    iter_records_with_offsets,
)
from .config import (
    CHECKPOINT_EVERY_ENV,
    WAL_DIR_ENV,
    WAL_FSYNC_ENV,
    DurabilityConfig,
    resolve_durability_config,
)
from .errors import CodecError, DurabilityError, RecoveryError, TornLogError
from .manager import DurabilityManager
from .recovery import RecoveryReport, recover_into
from .sim import SimulatedCrash

__all__ = [
    "CHECKPOINT_EVERY_ENV",
    "HEADER_SIZE",
    "WAL_DIR_ENV",
    "WAL_FSYNC_ENV",
    "CodecError",
    "DurabilityConfig",
    "DurabilityError",
    "DurabilityManager",
    "RecoveryError",
    "RecoveryReport",
    "SimulatedCrash",
    "TornLogError",
    "decode_record",
    "decode_value",
    "encode_record",
    "encode_value",
    "intact_prefix_length",
    "iter_records",
    "iter_records_with_offsets",
    "recover_into",
    "resolve_durability_config",
]
