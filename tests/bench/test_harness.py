"""Tests for the benchmark harness itself (engines, latency,
throughput model, reporting)."""

import pytest

from repro.bench.concurrency import measure_throughput, modelled_throughput
from repro.bench.harness import (
    EngineUnderTest,
    build_engines,
    clear_engine_cache,
    measure_latency,
)
from repro.bench.reporting import format_bytes, format_seconds, format_table
from repro.workloads.linkbench import LinkBenchConfig


@pytest.fixture(scope="module")
def setup():
    config = LinkBenchConfig(name="bench-test", n_vertices=800, seed=4)
    result = build_engines(config, include_baselines=True, disk_read_latency=0.0)
    yield result
    clear_engine_cache()


class TestBuildEngines:
    def test_three_engines(self, setup):
        assert [e.name for e in setup.engines] == ["Db2 Graph", "GDB-X", "JanusGraph"]

    def test_engines_share_the_dataset(self, setup):
        counts = set()
        for engine in setup.engines:
            counts.add(engine.traversal().V().count().next())
        assert counts == {800}

    def test_setup_is_cached(self, setup):
        again = build_engines(
            LinkBenchConfig(name="bench-test", n_vertices=800, seed=4),
            include_baselines=True,
            disk_read_latency=0.0,
        )
        assert again is setup


class TestLatency:
    def test_measure_latency_fields(self, setup):
        result = measure_latency(
            setup.engines[0], setup.workload, "getNode", iterations=20, warmup=5
        )
        assert result.engine == "Db2 Graph"
        assert result.query == "getNode"
        assert result.samples == 20
        assert 0 < result.mean_seconds < 1
        assert result.p50_seconds <= result.p95_seconds
        assert result.mean_ms == pytest.approx(result.mean_seconds * 1e3)


class TestThroughput:
    def test_amdahl_model_limits(self):
        # fully serial: no speedup
        assert modelled_throughput(0.001, 1.0, 50, 32) == pytest.approx(1000)
        # fully parallel: 32x on 32 cores
        assert modelled_throughput(0.001, 0.0, 50, 32) == pytest.approx(32_000)
        # degenerate service time
        assert modelled_throughput(0.0, 0.5, 50, 32) == 0.0

    def test_model_monotonic_in_serial_fraction(self):
        values = [modelled_throughput(0.001, s, 50, 32) for s in (0.0, 0.3, 0.7, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_measure_throughput_fields(self, setup):
        result = measure_throughput(
            setup.engines[0], setup.workload, "getNode", clients=4, queries_per_client=5
        )
        assert result.measured_qps > 0
        assert result.modelled_qps > 0
        assert 0 <= result.serial_fraction <= 1

    def test_baselines_more_serialized_than_relational(self, setup):
        db2 = measure_throughput(
            setup.engines[0], setup.workload, "getLinkList", clients=2, queries_per_client=5
        )
        native = measure_throughput(
            setup.engines[1], setup.workload, "getLinkList", clients=2, queries_per_client=5
        )
        assert native.serial_fraction > db2.serial_fraction


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024**2) == "3.0MB"
        assert format_bytes(5 * 1024**3) == "5.0GB"

    def test_format_seconds(self):
        assert format_seconds(5e-5) == "50us"
        assert format_seconds(0.0123) == "12.3ms"
        assert format_seconds(3.5) == "3.50s"
        assert format_seconds(300) == "5.0min"
