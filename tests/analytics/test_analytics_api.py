"""API tests for the bulk analytics engine: the ``g.analytics()``
facade, the ``bulk=True`` repeat strategy, the ``graphQuery('analytics',
...)`` table-function bridge, the session/service path, budget
partial-progress semantics, and the analytics observability surface.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analytics import (
    AnalyticsError,
    BfsResult,
    BulkRepeatStep,
    GraphAnalytics,
    WccResult,
    coerce_weight,
)
from repro.core import Db2Graph
from repro.graph import __
from repro.graph.steps import RepeatStep
from repro.obs import metrics as M
from repro.relational import Database
from repro.resilience import BudgetExceededError, QueryBudget
from repro.service import GraphService, ServiceConfig

OVERLAY = {
    "v_tables": [
        {"table_name": "item", "id": "id", "fix_label": True,
         "label": "'item'", "properties": ["id", "name"]},
    ],
    "e_tables": [
        {"table_name": "link", "src_v_table": "item", "src_v": "src",
         "dst_v_table": "item", "dst_v": "dst",
         "implicit_edge_id": True, "fix_label": True, "label": "'link'",
         "properties": ["w"]},
    ],
}


def make_db() -> Database:
    """Two weakly-connected components::

        1 -(2.0)-> 2 -(1.0)-> 3 -(4.0)-> 4      1 -(10.0)-> 3
        5 -> 6   (w NULL: takes default_weight)
    """
    db = Database()
    db.execute("CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE link (src INT, dst INT, w DOUBLE)")
    db.execute(
        "INSERT INTO item VALUES (1, 'a'), (2, 'b'), (3, 'c'), "
        "(4, 'd'), (5, 'e'), (6, 'f')"
    )
    db.execute(
        "INSERT INTO link VALUES (1, 2, 2.0), (2, 3, 1.0), "
        "(3, 4, 4.0), (1, 3, 10.0), (5, 6, NULL)"
    )
    return db


@pytest.fixture
def graph():
    g = Db2Graph.open(make_db(), OVERLAY)
    yield g
    g.close()


class TestBfs:
    def test_depths_and_parents(self, graph):
        got = graph.analytics().bfs(1)
        assert got.depth == {1: 0, 2: 1, 3: 1, 4: 2}
        # 3 is discovered at depth 1 directly from 1, not through 2
        assert got.parent == {1: None, 2: 1, 3: 1, 4: 3}
        assert got.converged
        assert got.frontier_sizes == [1, 2, 1]

    def test_direction_in_and_both(self, graph):
        assert graph.analytics().bfs(4, direction="in").depth == {
            4: 0, 3: 1, 1: 2, 2: 2
        }
        both = graph.analytics().bfs(4, direction="both")
        assert set(both.depth) == {1, 2, 3, 4}

    def test_max_depth_cutoff_is_not_convergence(self, graph):
        got = graph.analytics().bfs(1, max_depth=1)
        assert got.depth == {1: 0, 2: 1, 3: 1}
        assert not got.converged
        assert graph.stats()["analytics_converged"] == 0

    def test_missing_source_raises(self, graph):
        with pytest.raises(AnalyticsError):
            graph.analytics().bfs(99)

    def test_rows_are_sorted(self, graph):
        rows = graph.analytics().bfs(1).rows()
        assert rows == [(1, 0, None), (2, 1, 1), (3, 1, 1), (4, 2, 3)]


class TestSssp:
    def test_weighted_distances(self, graph):
        got = graph.analytics().sssp(1, weight="w")
        # 1->2->3 (3.0) beats the direct 1->3 (10.0)
        assert got.distance == {1: 0.0, 2: 2.0, 3: 3.0, 4: 7.0}
        assert got.parent == {1: None, 2: 1, 3: 2, 4: 3}
        assert got.converged

    def test_null_weight_takes_default(self, graph):
        got = graph.analytics().sssp(5, weight="w", default_weight=2.5)
        assert got.distance == {5: 0.0, 6: 2.5}

    def test_negative_weight_raises(self):
        db = make_db()
        db.execute("INSERT INTO link VALUES (4, 1, -1.0)")
        g = Db2Graph.open(db, OVERLAY)
        with pytest.raises(AnalyticsError):
            g.analytics().sssp(1, weight="w")

    def test_coerce_weight_rule(self):
        assert coerce_weight(3, 1.0) == 3.0
        assert coerce_weight(0.5, 1.0) == 0.5
        # bool subclasses int but is not a distance
        assert coerce_weight(True, 1.0) == 1.0
        assert coerce_weight(None, 1.0) == 1.0
        assert coerce_weight("7", 1.0) == 1.0
        with pytest.raises(AnalyticsError):
            coerce_weight(-2, 1.0)


class TestWcc:
    def test_components(self, graph):
        got = graph.analytics().wcc()
        assert got.component == {1: 1, 2: 1, 3: 1, 4: 1, 5: 5, 6: 5}
        assert got.component_count() == 2
        assert got.converged

    def test_max_iterations_cutoff(self, graph):
        got = graph.analytics().wcc(max_iterations=1)
        assert not got.converged


class TestPageRank:
    def test_ranks_form_a_distribution(self, graph):
        got = graph.analytics().pagerank(max_iterations=25)
        assert got.iterations == 25
        assert not got.converged  # cutoff, not convergence
        assert sum(got.rank.values()) == pytest.approx(1.0, abs=1e-9)
        # 4 collects from the whole 1->...->4 chain; 1 and 5 only get
        # base + dangling mass
        assert got.rank[4] > got.rank[1]

    def test_tolerance_convergence(self, graph):
        got = graph.analytics().pagerank(max_iterations=200, tolerance=1e-12)
        assert got.converged
        assert got.iterations < 200
        assert got.delta < 1e-12
        assert graph.stats()["analytics_converged"] == 1

    def test_damping_validated(self, graph):
        with pytest.raises(AnalyticsError):
            graph.analytics().pagerank(damping=1.5)
        with pytest.raises(AnalyticsError):
            graph.analytics().pagerank(max_iterations=0)


class TestBudgets:
    def test_partial_progress_on_statement_budget(self):
        g = Db2Graph.open(make_db(), OVERLAY, cache=False)
        an = g.analytics(budget=QueryBudget(max_sql_statements=3))
        with pytest.raises(BudgetExceededError) as info:
            an.wcc()
        partial = info.value.partial
        assert isinstance(partial, WccResult)
        assert not partial.converged
        assert partial.component  # the scan completed before the trip

    def test_partial_progress_on_bfs(self):
        g = Db2Graph.open(make_db(), OVERLAY, cache=False)
        an = g.analytics(budget=QueryBudget(max_sql_statements=2))
        with pytest.raises(BudgetExceededError) as info:
            an.bfs(1)
        assert isinstance(info.value.partial, BfsResult)

    def test_graph_level_budget_is_inherited(self):
        g = Db2Graph.open(
            make_db(), OVERLAY, cache=False,
            budget=QueryBudget(max_sql_statements=2),
        )
        with pytest.raises(BudgetExceededError):
            g.analytics().wcc()


class TestObservability:
    def test_counters_and_stats(self, graph):
        graph.analytics().bfs(1)
        stats = graph.stats()
        assert stats["analytics_steps"] == 3  # frontier sizes [1, 2, 1]
        assert stats["analytics_converged"] == 1
        assert stats["frontier_samples"] == 3
        assert stats["frontier_max"] == 2
        graph.reset_stats()
        stats = graph.stats()
        assert stats["analytics_steps"] == 0
        assert stats["frontier_samples"] == 0
        assert stats["frontier_max"] == 0

    def test_histogram_mirrors_step_counter(self, graph):
        graph.analytics().wcc()
        stats = graph.stats()
        assert stats["frontier_samples"] == stats["analytics_steps"]


class TestBulkRepeatStrategy:
    def _graphs(self):
        db = make_db()
        plain = Db2Graph.open(db, OVERLAY, bulk=False)
        bulk = Db2Graph.open(db, OVERLAY, bulk=True)
        return plain, bulk

    def test_eligible_plan_is_rewritten(self):
        _, bulk = self._graphs()
        t = bulk.traversal().V().repeat(__.out()).times(2)
        t.compile()
        kinds = [type(s) for s in t.steps]
        assert BulkRepeatStep in kinds
        assert RepeatStep not in [k for k in kinds if k is not BulkRepeatStep]

    def test_multiset_equivalence(self):
        plain, bulk = self._graphs()
        chains = [
            lambda g: g.V().repeat(__.out()).times(2).id_().toList(),
            lambda g: g.V().repeat(__.both()).times(2).id_().toList(),
            lambda g: g.V().repeat(__.out()).times(2).emit().id_().toList(),
            lambda g: g.V(1).repeat(__.out()).until(__.has("id", 4)).id_().toList(),
        ]
        for chain in chains:
            assert Counter(chain(plain.traversal())) == Counter(
                chain(bulk.traversal())
            )

    def test_path_observation_disables_bulk(self):
        _, bulk = self._graphs()
        t = bulk.traversal().V().repeat(__.out()).times(2).path()
        t.compile()
        assert not any(isinstance(s, BulkRepeatStep) for s in t.steps)

    def test_non_vertex_body_disables_bulk(self):
        _, bulk = self._graphs()
        t = bulk.traversal().V().repeat(__.outE().inV()).times(2)
        t.compile()
        assert not any(isinstance(s, BulkRepeatStep) for s in t.steps)

    def test_bulk_issues_fewer_statements(self):
        # small batches so per-traverser duplication spills into extra
        # IN-list statements; bulking dedups the whole frontier first
        db = make_db()
        plain = Db2Graph.open(db, OVERLAY, bulk=False, batch_size=4)
        bulk = Db2Graph.open(db, OVERLAY, bulk=True, batch_size=4)
        plain.traversal().V().repeat(__.both()).times(3).id_().toList()
        baseline = plain.stats()["sql_queries"]
        bulk.traversal().V().repeat(__.both()).times(3).id_().toList()
        assert bulk.stats()["sql_queries"] < baseline

    def test_repeat_emits_analytics_events(self):
        _, bulk = self._graphs()
        bulk.traversal().V(1).repeat(__.out()).times(3).id_().toList()
        assert bulk.stats()["analytics_steps"] > 0


class TestTableFunction:
    def test_wcc_rows(self, graph):
        graph.register_table_function()
        db = graph.connection.database
        rows = db.execute(
            "SELECT v, c FROM TABLE(graphQuery('analytics', 'wcc')) "
            "AS t (v BIGINT, c BIGINT) ORDER BY v"
        ).rows
        assert rows == [(1, 1), (2, 1), (3, 1), (4, 1), (5, 5), (6, 5)]

    def test_bfs_rows_join_back(self, graph):
        graph.register_table_function()
        db = graph.connection.database
        rows = db.execute(
            "SELECT i.name, t.d FROM item AS i, "
            "TABLE(graphQuery('analytics', 'bfs source=1')) "
            "AS t (v BIGINT, d INT, p BIGINT) "
            "WHERE i.id = t.v ORDER BY t.d, i.name"
        ).rows
        assert rows == [("a", 0), ("b", 1), ("c", 1), ("d", 2)]

    def test_sssp_and_pagerank_specs(self, graph):
        graph.register_table_function()
        db = graph.connection.database
        rows = db.execute(
            "SELECT v, d FROM TABLE(graphQuery('analytics', "
            "'sssp source=1 weight=w')) AS t (v BIGINT, d DOUBLE, p BIGINT) "
            "ORDER BY v"
        ).rows
        assert rows == [(1, 0.0), (2, 2.0), (3, 3.0), (4, 7.0)]
        rows = db.execute(
            "SELECT v FROM TABLE(graphQuery('analytics', "
            "'pagerank max_iterations=5')) AS t (v BIGINT, r DOUBLE)"
        ).rows
        assert len(rows) == 6

    def test_unknown_algorithm_rejected(self, graph):
        graph.register_table_function()
        db = graph.connection.database
        with pytest.raises(AnalyticsError):
            db.execute(
                "SELECT v FROM TABLE(graphQuery('analytics', 'dijkstra')) "
                "AS t (v BIGINT)"
            )

    def test_missing_required_argument_rejected(self, graph):
        graph.register_table_function()
        db = graph.connection.database
        with pytest.raises(AnalyticsError):
            db.execute(
                "SELECT v FROM TABLE(graphQuery('analytics', 'bfs')) "
                "AS t (v BIGINT)"
            )


class TestServiceIntegration:
    def test_analytics_through_a_session(self):
        svc = GraphService(make_db(), OVERLAY, ServiceConfig(workers=2))
        try:
            with svc.open_session() as session:
                result = session.run(lambda s: s.analytics().wcc())
                assert result.component_count() == 2
                depths = session.run(lambda s: s.analytics().bfs(1).depth)
                assert depths == {1: 0, 2: 1, 3: 1, 4: 2}
        finally:
            svc.shutdown(timeout=10)

    def test_in_memory_provider_also_works(self):
        from repro.graph import InMemoryGraph

        mem = InMemoryGraph()
        for v in (1, 2, 3):
            mem.add_vertex(v, "item")
        mem.add_edge("link", 1, 2)
        mem.add_edge("link", 2, 3)
        got = GraphAnalytics(mem).bfs(1)
        assert got.depth == {1: 0, 2: 1, 3: 2}
