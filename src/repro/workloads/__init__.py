"""``repro.workloads`` — synthetic datasets and query workloads:

* :mod:`~repro.workloads.linkbench` — the LinkBench graph benchmark
  (paper §8: Tables 1 and 2, Figures 4-6);
* :mod:`~repro.workloads.healthcare` — the §4 example scenario
  (patients, diseases, ontology, wearable device data);
* :mod:`~repro.workloads.finance` — mule-fraud detection (§7);
* :mod:`~repro.workloads.police` — the law-enforcement dataset (§7),
  used to exercise AutoOverlay.
"""

from .finance import FinanceConfig, FinanceDataset, find_mule_chains
from .healthcare import (
    HEALTHCARE_OVERLAY,
    HealthcareConfig,
    HealthcareDataset,
    similar_diseases_script,
    synergy_sql,
)
from .linkbench import (
    LINKBENCH_QUERIES,
    LinkBenchConfig,
    LinkBenchDataset,
    LinkBenchWorkload,
)
from .police import PoliceConfig, PoliceDataset

__all__ = [
    "LinkBenchConfig",
    "LinkBenchDataset",
    "LinkBenchWorkload",
    "LINKBENCH_QUERIES",
    "HealthcareConfig",
    "HealthcareDataset",
    "HEALTHCARE_OVERLAY",
    "similar_diseases_script",
    "synergy_sql",
    "FinanceConfig",
    "FinanceDataset",
    "find_mule_chains",
    "PoliceConfig",
    "PoliceDataset",
]
