"""Tests for group/project/choose/optional/constant/identity/sideEffect
and the mutation steps (addV/addE) on the in-memory backend."""

import pytest

from repro.graph import GraphTraversalSource, InMemoryGraph, P, TraversalError, __
from repro.graph.gremlin_parser import evaluate_gremlin


class TestGroup:
    def test_group_by_label(self, g):
        groups = g.V().group().by("~label").next()
        assert {k: len(v) for k, v in groups.items()} == {"person": 4, "software": 2}

    def test_group_by_property(self, g):
        groups = g.V().hasLabel("software").group().by("lang").next()
        assert set(groups) == {"java"}
        assert len(groups["java"]) == 2

    def test_group_value_traversal(self, g):
        groups = g.V().hasLabel("person").group().by("~label").by(__.values("age")).next()
        assert sorted(groups["person"]) == [27, 29, 32, 35]

    def test_group_by_key_traversal(self, g):
        groups = g.V().hasLabel("person").group().by(__.out().count()).next()
        # marko->3, vadas->0, josh->2, peter->1
        assert {k: len(v) for k, v in groups.items()} == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_group_without_by_groups_identity(self, g):
        groups = g.V().hasLabel("software").values("lang").group().next()
        assert list(groups) == ["java"]

    def test_too_many_bys_rejected(self, g):
        with pytest.raises(TraversalError):
            g.V().group().by("a").by("b").by("c")


class TestProject:
    def test_project_with_traversals(self, g):
        result = (
            g.V(1)
            .project("name", "degree")
            .by(__.values("name"))
            .by(__.out().count())
            .next()
        )
        assert result == {"name": "marko", "degree": 3}

    def test_project_default_identity(self, g):
        result = g.V(1).values("age").project("value").next()
        assert result == {"value": 29}

    def test_project_by_property_key(self, g):
        result = g.V(1).project("n").by("name").next()
        assert result == {"n": "marko"}

    def test_project_requires_names(self, g):
        with pytest.raises(TraversalError):
            g.V().project()

    def test_extra_by_rejected(self, g):
        with pytest.raises(TraversalError):
            g.V().project("a").by("x").by("y")


class TestFlowControl:
    def test_choose_two_branches(self, g):
        result = g.V().choose(
            __.hasLabel("person"), __.values("name"), __.constant("sw")
        ).toList()
        assert result.count("sw") == 2
        assert "marko" in result

    def test_choose_without_false_branch_passes_through(self, g):
        result = g.V().choose(__.hasLabel("person"), __.values("age")).toList()
        ages = [r for r in result if isinstance(r, int)]
        others = [r for r in result if not isinstance(r, int)]
        assert len(ages) == 4 and len(others) == 2

    def test_optional_present(self, g):
        assert sorted(v.id for v in g.V(1).optional(__.out("knows"))) == [2, 4]

    def test_optional_absent_keeps_original(self, g):
        assert [v.id for v in g.V(2).optional(__.out("knows"))] == [2]

    def test_constant(self, g):
        assert g.V().constant(7).toList() == [7] * 6

    def test_identity(self, g):
        assert g.V(3).identity().next().id == 3

    def test_side_effect_lambda(self, g):
        collected = []
        count = g.V().sideEffect(lambda o: collected.append(o.id)).count().next()
        assert count == 6 and len(collected) == 6

    def test_side_effect_traversal(self, g):
        result = g.V(1).sideEffect(__.out().store("neighbors")).cap("neighbors").next()
        assert len(result) == 3


class TestMutationInMemory:
    def test_addv_with_properties(self):
        graph = InMemoryGraph()
        g = GraphTraversalSource(graph)
        vertex = g.addV("person").property("name", "ada").next()
        assert vertex.label == "person"
        assert vertex.value("name") == "ada"
        assert g.V().count().next() == 1

    def test_addv_explicit_id(self):
        graph = InMemoryGraph()
        g = GraphTraversalSource(graph)
        vertex = g.addV("p").property("id", 42).next()
        assert vertex.id == 42

    def test_adde_between_ids(self):
        graph = InMemoryGraph()
        graph.add_vertex(1, "p")
        graph.add_vertex(2, "p")
        g = GraphTraversalSource(graph)
        edge = g.addE("knows").from_(1).to(2).property("w", 0.5).next()
        assert edge.out_v_id == 1 and edge.in_v_id == 2
        assert g.V(1).out("knows").count().next() == 1

    def test_adde_from_traversal_endpoints(self):
        graph = InMemoryGraph()
        graph.add_vertex(1, "p", {"name": "a"})
        graph.add_vertex(2, "p", {"name": "b"})
        g = GraphTraversalSource(graph)
        g.addE("likes").from_(__.V().has("name", "a")).to(__.V().has("name", "b")).next()
        assert g.V(1).out("likes").count().next() == 1

    def test_adde_mid_traversal_uses_current_vertex(self):
        graph = InMemoryGraph()
        graph.add_vertex(1, "p")
        graph.add_vertex(2, "p")
        g = GraphTraversalSource(graph)
        g.V(1).addE("self").to(2).iterate()
        assert g.V(1).out("self").count().next() == 1

    def test_property_without_add_step_rejected(self, g):
        with pytest.raises(TraversalError):
            g.V().property("a", 1)

    def test_from_without_adde_rejected(self, g):
        with pytest.raises(TraversalError):
            g.V().from_(1)


class TestParserSupport:
    def test_group_in_string(self, g):
        result = evaluate_gremlin(g, "g.V().group().by('lang').next()")
        assert "java" in result

    def test_project_in_string(self, g):
        result = evaluate_gremlin(
            g, "g.V(1).project('n', 'd').by(values('name')).by(out().count()).next()"
        )
        assert result == {"n": "marko", "d": 3}

    def test_choose_in_string(self, g):
        result = evaluate_gremlin(
            g,
            "g.V().choose(hasLabel('person'), constant(1), constant(0)).sum().next()",
        )
        assert result == 4

    def test_addv_in_string(self):
        graph = InMemoryGraph()
        g = GraphTraversalSource(graph)
        evaluate_gremlin(g, "g.addV('x').property('name', 'n1').iterate()")
        assert g.V().count().next() == 1
