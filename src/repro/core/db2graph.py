"""The Db2 Graph facade: ``Db2Graph.open(...)`` (paper §6.1).

Opening a graph reads the overlay configuration, resolves it against
the catalog into a Topology, and wires the Graph Structure module, the
SQL Dialect module, and (optionally) the optimized traversal
strategies together.  ``traversal()`` then hands back a ``g`` to
query, exactly as
``g = Db2Graph.open('config.properties').traversal()`` does in the
paper.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..cache import CacheConfig, GraphCache, resolve_cache_config
from ..graph.gremlin_parser import evaluate_gremlin
from ..graph.strategy import StrategyRegistry
from ..graph.traversal import GraphTraversalSource
from ..obs import metrics as M
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceRecorder
from ..relational.database import Connection, Database
from .fanout import FanoutPool, resolve_batch_size, resolve_parallelism
from .graph_structure import OverlayGraph, RuntimeOptimizations
from .overlay import OverlayConfig
from .sql_dialect import SqlDialect
from .strategies import optimized_strategies
from .topology import Topology


class Db2Graph:
    def __init__(
        self,
        connection: Connection,
        topology: Topology,
        dialect: SqlDialect,
        provider: OverlayGraph,
        optimized: bool,
        auto_refresh: bool = False,
        auto_generated_tables: list[str] | None = None,
    ):
        self.connection = connection
        self.topology = topology
        self.dialect = dialect
        self.provider = provider
        self.optimized = optimized
        # One registry + recorder span the SQL Dialect and Graph
        # Structure modules; stats()/reset_stats()/tracing read them.
        self.registry = dialect.registry
        self.trace = dialect.trace
        # -- catalog integration (the paper's §5.1 future work) --------
        # auto_refresh re-resolves the overlay when DDL changes; if the
        # overlay came from AutoOverlay, it is regenerated wholesale so
        # new tables/columns join the graph automatically.
        self.auto_refresh = auto_refresh
        self._auto_generated_tables = auto_generated_tables
        self._is_auto_generated = auto_generated_tables is not None
        self._resolved_generation = connection.database.ddl_generation
        self.refresh_count = 0
        # Default QueryBudget for traversals (None = unlimited); set by
        # open(budget=...) or per-source via g.with_budget(...).
        self.budget = None
        # FanoutPool shared by every traversal on this graph; set by
        # open(parallelism=...).  None = serial.  A pool handed in by
        # open(pool=...) belongs to its creator (the service layer) and
        # is not shut down by close().
        self.pool: FanoutPool | None = None
        self._owns_pool = True
        # Transactional read cache (repro.cache); set by open(cache=...).
        # None = every read goes to the relational engine.
        self.cache: GraphCache | None = None
        # Bulk repeat() evaluation (repro.analytics); set by open(bulk=...).
        self.bulk = False
        # ReplicationCluster (repro.replication); set by open(replication=...).
        # None = single-node operation.
        self.replication = None

    @classmethod
    def open(
        cls,
        database: Database | Connection,
        overlay: OverlayConfig | dict | str | Path,
        *,
        user: str = "admin",
        optimized: bool = True,
        runtime_opts: RuntimeOptimizations | None = None,
        track_patterns: bool = True,
        auto_refresh: bool = False,
        budget: Any = None,
        retry_policy: Any = None,
        parallelism: int | None = None,
        batch_size: int | None = None,
        cache: CacheConfig | bool | GraphCache | None = None,
        durability: Any = None,
        replication: Any = None,
        registry: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
        pool: FanoutPool | None = None,
        bulk: bool = False,
    ) -> "Db2Graph":
        """Open a property graph over relational data.

        ``parallelism`` bounds the worker pool that runs a fan-out
        step's per-table SQL statements concurrently (default 1 =
        serial, today's behavior; the ``REPRO_PARALLELISM`` env var
        changes the default).  ``batch_size`` caps how many traversers
        coalesce into one ``WHERE id IN (...)`` statement per table
        (default 256; env default ``REPRO_BATCH_SIZE``; 1 = one
        statement per traverser).  Results are demultiplexed back to
        their originating traversers in submission order, so any
        (parallelism, batch_size) setting returns identical results.

        ``budget`` (a :class:`~repro.resilience.budget.QueryBudget`)
        bounds every traversal spawned from :meth:`traversal` —
        wall-clock deadline and/or statement/row/traverser ceilings.
        ``retry_policy`` (a
        :class:`~repro.resilience.retry.RetryPolicy`) retries
        transient engine errors (deadlock victim, lock timeout) at the
        per-statement boundary.

        ``overlay`` accepts an :class:`OverlayConfig`, a raw dict, or a
        path to a JSON overlay configuration file.

        ``optimized=False`` disables the compile-time traversal
        strategies (§6.2) while keeping the runtime data-dependent
        optimizations (§6.3) — the exact configuration of the paper's
        Figure 4 "off" bars.  ``runtime_opts`` toggles the latter.

        ``auto_refresh=True`` re-resolves the overlay against the
        catalog whenever DDL changes (the paper's §5.1 future work) —
        e.g. a column added to a table with inferred properties shows
        up as a new graph property without reopening.

        ``cache`` enables the transactional read cache
        (:mod:`repro.cache`): ``None`` consults ``REPRO_CACHE_ENABLED``
        (off by default), ``True``/``False`` force it, and a
        :class:`~repro.cache.CacheConfig` sets explicit capacities.
        Cached entries are invalidated by per-table epoch counters
        bumped on DML commit, so graph reads stay coherent with
        relational writes; lookups inside an explicit transaction
        bypass the cache for read-your-writes.  A prebuilt
        :class:`~repro.cache.GraphCache` instance may also be passed —
        the service layer shares one cache across every session's
        handle so an invalidation from any session covers all of them.

        ``registry``/``recorder``/``pool`` share an existing metrics
        registry, trace recorder, and fan-out worker pool instead of
        creating fresh ones — the service layer passes its own so one
        observability snapshot (and one bounded worker pool) spans
        every session multiplexed over the database.  A shared pool is
        not shut down by :meth:`close`; its owner does that.

        ``bulk=True`` adds the :class:`BulkRepeatStrategy` runtime
        strategy: eligible ``repeat(out(...))`` chains evaluate
        set-at-a-time (whole unique frontiers per level, GTM traverser
        bulking) instead of one traverser at a time.  Result multisets
        are identical; result order is not guaranteed.

        ``durability`` (a directory path or
        :class:`~repro.durability.DurabilityConfig`) attaches WAL
        logging to the underlying database if it has none yet; a
        database that is already durable — from ``Database.open(...)``
        or the ``REPRO_WAL_DIR`` environment knob consulted at
        ``Database()`` construction — is left untouched.

        ``replication`` attaches WAL-shipping hot standbys
        (:mod:`repro.replication`): ``None`` consults
        ``REPRO_REPL_REPLICAS`` (off by default, and silently off when
        the database is not durable — the stream *is* the WAL), an
        ``int`` is a replica count, a
        :class:`~repro.replication.ReplicationConfig` sets ack mode and
        the staleness contract, and a prebuilt
        :class:`~repro.replication.ReplicationCluster` is shared as-is
        (a database that already has a cluster attached reuses it).
        The cluster lives on ``graph.replication``.
        """
        if isinstance(database, Connection):
            connection = database
        else:
            connection = database.connect(user)
        if durability not in (None, False) and connection.database.durability is None:
            from ..durability.config import resolve_durability_config

            connection.database.attach_durability(
                resolve_durability_config(durability, connection.database.name)
            )
        if isinstance(overlay, (str, Path)):
            config = OverlayConfig.from_file(overlay)
        elif isinstance(overlay, dict):
            config = OverlayConfig.from_dict(overlay)
        else:
            config = overlay
        topology = Topology(connection.database, config)
        registry = registry if registry is not None else MetricsRegistry()
        recorder = recorder if recorder is not None else TraceRecorder()
        if isinstance(cache, GraphCache):
            graph_cache: GraphCache | None = cache
        else:
            cache_config = resolve_cache_config(cache)
            graph_cache = (
                GraphCache(
                    connection.database,
                    cache_config,
                    registry=registry,
                    recorder=recorder,
                )
                if cache_config is not None
                else None
            )
        dialect = SqlDialect(
            connection,
            track_patterns=track_patterns,
            registry=registry,
            recorder=recorder,
            retry_policy=retry_policy,
            cache=graph_cache,
        )
        # One registry/recorder span the graph layer AND the relational
        # engine underneath it (lock waits, deadlocks, sql errors), so
        # stats()/traces reconcile across layers.
        connection.database.bind_observability(registry, recorder)
        cluster = cls._resolve_replication(connection.database, replication)
        owns_pool = pool is None
        if pool is None:
            workers = resolve_parallelism(parallelism)
            pool = FanoutPool(workers, registry=registry, trace=recorder)
        provider = OverlayGraph(
            topology,
            dialect,
            runtime_opts,
            pool=pool,
            batch_size=resolve_batch_size(batch_size),
            cache=graph_cache,
        )
        graph = cls(
            connection, topology, dialect, provider, optimized, auto_refresh=auto_refresh
        )
        graph.budget = budget
        graph.pool = pool
        graph._owns_pool = owns_pool
        graph.cache = graph_cache
        graph.bulk = bulk
        graph.replication = cluster
        return graph

    @staticmethod
    def _resolve_replication(database: Database, replication: Any):
        """Attach (or reuse) a replication cluster for ``database``.

        Env-driven activation (``replication=None`` +
        ``REPRO_REPL_REPLICAS``) is silently skipped on a non-durable
        database so suite-wide soak runs don't break in-memory tests;
        an *explicit* request against a non-durable database raises.
        """
        from ..replication import ReplicationCluster
        from ..replication.config import resolve_replication_config

        if isinstance(replication, ReplicationCluster):
            return replication
        if database.durability is not None and database.durability.replication is not None:
            # The database already ships its WAL — share that cluster.
            return database.durability.replication.cluster
        config = resolve_replication_config(replication)
        if config is None:
            return None
        if database.durability is None:
            if replication is None:
                return None  # env knob + in-memory database: silently off
            from ..replication.errors import ReplicationError

            raise ReplicationError(
                "replication requires a durable database (pass durability=... "
                "or open the database with a WAL directory)"
            )
        return ReplicationCluster(database, config)

    @classmethod
    def open_auto(
        cls,
        database: Database | Connection,
        table_names: list[str] | None = None,
        *,
        user: str = "admin",
        optimized: bool = True,
        runtime_opts: RuntimeOptimizations | None = None,
        auto_refresh: bool = True,
    ) -> "Db2Graph":
        """Open a graph whose overlay is generated by AutoOverlay
        (Algorithms 1-2) and, with ``auto_refresh``, regenerated on
        every DDL change — new tables with keys become new vertex/edge
        tables automatically (full §5.1 catalog integration)."""
        from .auto_overlay import generate_overlay

        connection = database if isinstance(database, Connection) else database.connect(user)
        config = generate_overlay(connection.database, table_names)
        graph = cls.open(
            connection,
            config,
            optimized=optimized,
            runtime_opts=runtime_opts,
            auto_refresh=auto_refresh,
        )
        graph._auto_generated_tables = table_names or []
        graph._is_auto_generated = True
        return graph

    # -- catalog integration ----------------------------------------------------

    def refresh(self) -> None:
        """Re-resolve (or regenerate) the overlay against the catalog."""
        database = self.connection.database
        if self._is_auto_generated:
            from .auto_overlay import generate_overlay

            config = generate_overlay(
                database, self._auto_generated_tables or None
            )
        else:
            config = self.topology.config
        self.topology = Topology(database, config)
        self.provider.topology = self.topology
        self._resolved_generation = database.ddl_generation
        self.refresh_count += 1

    def _maybe_refresh(self) -> None:
        if not self.auto_refresh:
            return
        if self.connection.database.ddl_generation != self._resolved_generation:
            self.refresh()

    # -- querying ------------------------------------------------------------

    def traversal(self) -> GraphTraversalSource:
        self._maybe_refresh()
        strategies = list(optimized_strategies()) if self.optimized else []
        if self.bulk:
            from ..analytics.bulk import BulkRepeatStrategy

            strategies.append(BulkRepeatStrategy())
        registry = StrategyRegistry(strategies)
        return GraphTraversalSource(
            self.provider, registry, recorder=self.trace, budget=self.budget
        )

    def analytics(self, budget: Any = None) -> "Any":
        """Bulk whole-graph analytics over this handle
        (:mod:`repro.analytics`): ``g.analytics().bfs(source)``,
        ``.sssp(source, weight=...)``, ``.wcc()``, ``.pagerank()``.

        ``budget`` overrides the handle's default
        :class:`~repro.resilience.budget.QueryBudget` for the
        algorithms run through the returned facade."""
        from ..analytics.algorithms import GraphAnalytics

        self._maybe_refresh()
        return GraphAnalytics(
            self.provider, budget=budget if budget is not None else self.budget
        )

    def execute(self, gremlin: str, variables: dict[str, Any] | None = None) -> Any:
        """Run a Gremlin query string (the Gremlin-console interface)."""
        self.trace.emit(tracing.TRAVERSAL_PARSED, script=gremlin)
        return evaluate_gremlin(self.traversal(), gremlin, variables)

    def register_table_function(self, name: str = "graphQuery") -> None:
        """Expose this graph inside SQL via the polymorphic table
        function (paper §4)::

            SELECT ... FROM TABLE(graphQuery('gremlin', '<script>'))
                AS P (col TYPE, ...)
        """
        from .table_function import make_graph_query_function

        self.connection.database.register_table_function(
            name, make_graph_query_function(self)
        )

    # -- operations ---------------------------------------------------------------

    def suggest_indexes(self) -> list[tuple[str, tuple[str, ...]]]:
        return self.dialect.suggest_indexes()

    def create_suggested_indexes(self) -> list[str]:
        return self.dialect.create_suggested_indexes()

    def stats(self) -> dict[str, Any]:
        cache = self.connection.database.statement_cache
        return {
            "sql_queries": self.dialect.stats.queries_issued,
            "rows_fetched": self.dialect.stats.rows_fetched,
            "prepared_hits": self.dialect.stats.prepared_hits,
            "vertex_table_queries": self.provider.stats.vertex_table_queries,
            "edge_table_queries": self.provider.stats.edge_table_queries,
            "tables_eliminated": self.provider.stats.tables_eliminated,
            "vertices_from_edges": self.provider.stats.vertices_from_edges,
            "lazy_vertices": self.provider.stats.lazy_vertices,
            "statement_cache_hits": cache.hits,
            "statement_cache_misses": cache.misses,
            # parallel fan-out + traverser batching
            "batched_statements": self.registry.counter(M.SQL_BATCHED).value,
            "batched_ids": self.registry.counter(M.BATCH_IDS).value,
            "parallel_fanouts": self.registry.counter(M.FANOUT_PARALLEL).value,
            # graph read cache (repro.cache)
            "cache_hits": self.registry.counter(M.CACHE_HITS).value,
            "cache_misses": self.registry.counter(M.CACHE_MISSES).value,
            "cache_evictions": self.registry.counter(M.CACHE_EVICTIONS).value,
            "cache_invalidations": self.registry.counter(M.CACHE_INVALIDATIONS).value,
            "cache_bypass_txn": self.registry.counter(M.CACHE_BYPASS_TXN).value,
            # resilience layer
            "sql_errors": self.registry.counter(M.SQL_ERRORS).value,
            "lock_waits": self.registry.counter(M.LOCK_WAITS).value,
            "deadlocks": self.registry.counter(M.LOCK_DEADLOCKS).value,
            "retry_attempts": self.registry.counter(M.RETRY_ATTEMPTS).value,
            "retry_exhausted": self.registry.counter(M.RETRY_EXHAUSTED).value,
            "budget_exceeded": self.registry.counter(M.BUDGET_EXCEEDED).value,
            "faults_injected": self.registry.counter(M.FAULTS_INJECTED).value,
            # service layer (repro.service) — zero unless this handle's
            # registry is shared with a GraphService
            "service_admitted": self.registry.counter(M.SERVICE_ADMITTED).value,
            "service_rejected": self.registry.counter(M.SERVICE_REJECTED).value,
            "service_shed": self.registry.counter(M.SERVICE_SHED).value,
            "service_sessions_opened": self.registry.counter(M.SERVICE_SESSIONS_OPENED).value,
            "service_sessions_closed": self.registry.counter(M.SERVICE_SESSIONS_CLOSED).value,
            # bulk analytics engine (repro.analytics)
            "analytics_steps": self.registry.counter(M.ANALYTICS_STEPS).value,
            "analytics_converged": self.registry.counter(M.ANALYTICS_CONVERGED).value,
            "frontier_samples": self.registry.histogram(M.FRONTIER_SIZE).count,
            "frontier_max": (
                self.registry.histogram(M.FRONTIER_SIZE).max
                if self.registry.histogram(M.FRONTIER_SIZE).count
                else 0
            ),
            # durability (repro.durability)
            "wal_appends": self.registry.counter(M.WAL_APPENDS).value,
            "wal_flushes": self.registry.counter(M.WAL_FLUSHES).value,
            "checkpoints_written": self.registry.counter(M.CHECKPOINTS_WRITTEN).value,
            "recovery_replayed": self.registry.counter(M.RECOVERY_REPLAYED).value,
            "recovery_discarded": self.registry.counter(M.RECOVERY_DISCARDED).value,
            # replication & failover (repro.replication)
            "repl_shipped": self.registry.counter(M.REPL_SHIPPED).value,
            "repl_applied": self.registry.counter(M.REPL_APPLIED).value,
            "repl_acked": self.registry.counter(M.REPL_ACKED).value,
            "repl_fenced": self.registry.counter(M.REPL_FENCED).value,
            "repl_retransmits": self.registry.counter(M.REPL_RETRANSMITS).value,
            "repl_read_fallthrough": self.registry.counter(M.REPL_READ_FALLTHROUGH).value,
            "failover_promotions": self.registry.counter(M.FAILOVER_PROMOTIONS).value,
            "repl_lag_samples": self.registry.histogram(M.REPL_LAG).count,
            "repl_lag_max": (
                self.registry.histogram(M.REPL_LAG).max
                if self.registry.histogram(M.REPL_LAG).count
                else 0
            ),
            # structured state (dict-or-None, not counters): what crash
            # recovery found at open, and the live replication topology
            "recovery_report": self._recovery_report_dict(),
            "replication": self.replication.status() if self.replication else None,
        }

    def _recovery_report_dict(self) -> dict[str, Any] | None:
        report = self.connection.database.recovery_report
        if report is None:
            return None
        from dataclasses import asdict

        return asdict(report)

    def health(self) -> dict[str, Any]:
        """Liveness/topology summary (mirrored by GraphService.health):
        whether this node is durable and alive, what recovery did at
        open, and — when replicated — epoch, per-replica apply state,
        and failover history."""
        database = self.connection.database
        durability = database.durability
        return {
            "database": database.name,
            "durable": durability is not None,
            "alive": durability is None or not durability.dead,
            "last_logged_csn": durability.last_logged_csn if durability else None,
            "recovery_report": self._recovery_report_dict(),
            "replication": self.replication.status() if self.replication else None,
        }

    def metrics(self) -> dict[str, Any]:
        """Full registry snapshot: every named counter (including the
        per-rule ``structure.eliminated.*`` breakdown) and, when phase
        timing is on, the translate/execute/materialize histograms."""
        return self.registry.snapshot()

    def reset_stats(self) -> None:
        # One registry holds every counter both stats facades write —
        # reset it wholesale, plus the prepared-statement cache counters
        # and trace buffer the old implementation missed.
        self.registry.reset()
        cache = self.connection.database.statement_cache
        cache.hits = 0
        cache.misses = 0
        self.trace.clear()

    # -- observability ---------------------------------------------------------

    def enable_tracing(self, max_events: int | None = None) -> TraceRecorder:
        """Start recording structured trace events (cleared first)."""
        if max_events is not None:
            self.trace.max_events = max_events
        self.trace.clear()
        self.trace.enabled = True
        return self.trace

    def disable_tracing(self) -> None:
        self.trace.enabled = False

    def enable_phase_timing(self, enabled: bool = True) -> None:
        """Toggle translate/execute/materialize phase histograms plus
        the relational engine's per-statement timing hook."""
        self.registry.timing_enabled = enabled
        executor = self.connection.database.executor
        if enabled:
            registry = self.registry

            def hook(kind: str, seconds: float, rows: int) -> None:
                registry.histogram(f"engine.{kind}_seconds").observe(seconds)

            executor.timing_hook = hook
        else:
            executor.timing_hook = None

    def close(self) -> None:
        """Release the graph (the relational data stays untouched —
        there never was a copy).  Shuts down the fan-out worker pool,
        unless the pool is shared (owned by the service layer)."""
        if self.pool is not None and self._owns_pool:
            self.pool.shutdown()

    @property
    def parallelism(self) -> int:
        return self.pool.parallelism if self.pool is not None else 1

    @property
    def batch_size(self) -> int:
        return self.provider.batch_size

    def __repr__(self) -> str:
        return (
            f"Db2Graph(v_tables={len(self.topology.vertex_tables)}, "
            f"e_tables={len(self.topology.edge_tables)}, "
            f"parallelism={self.parallelism}, batch_size={self.batch_size}, "
            f"cache={'on' if self.cache is not None else 'off'}, "
            f"optimized={self.optimized})"
        )
