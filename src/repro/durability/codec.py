"""Binary codec for WAL and checkpoint records.

Two layers:

* **Values** — a tagged, length-prefixed encoding closed over the types
  the engine stores and the record shapes the WAL needs: ``None``,
  ``bool``, ``int`` (arbitrary precision), ``float`` (exact IEEE-754
  round trip), ``str`` (UTF-8, any unicode), ``bytes``, ``list``,
  ``tuple``, and ``dict`` (arbitrary encodable keys).  Tuples and lists
  survive as their own types, which matters because row values are
  tuples and composite graph ids are value tuples.
* **Frames** — each record payload is wrapped as
  ``[4-byte length][4-byte CRC32][payload]``.  A reader that hits a
  short header, a short payload, or a checksum mismatch knows the log
  was torn *at that point* and that every earlier frame is intact: a
  truncated tail can hide records, but it can never misparse into a
  different record (the property the hypothesis suite pins).

No compression, no varints — the format optimizes for being obviously
correct and torn-tail-detectable, not for byte count.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator

from .errors import CodecError, TornLogError

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)
_DOUBLE = struct.Struct(">d")
_LEN = struct.Struct(">I")

HEADER_SIZE = _HEADER.size

# Value tags (one byte each).
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"U"
_T_DICT = b"M"


# -- values ----------------------------------------------------------------


def encode_value(value: Any) -> bytes:
    """Encode one value into the tagged binary form."""
    out: list[bytes] = []
    _encode(value, out)
    return b"".join(out)


def _encode(value: Any, out: list[bytes]) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out.append(_T_INT + _LEN.pack(len(body)) + body)
    elif isinstance(value, float):
        out.append(_T_FLOAT + _DOUBLE.pack(value))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_T_STR + _LEN.pack(len(body)) + body)
    elif isinstance(value, bytes):
        out.append(_T_BYTES + _LEN.pack(len(value)) + value)
    elif isinstance(value, (list, tuple)):
        out.append((_T_LIST if isinstance(value, list) else _T_TUPLE) + _LEN.pack(len(value)))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT + _LEN.pack(len(value)))
        for key, item in value.items():
            _encode(key, out)
            _encode(item, out)
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode_value(data: bytes) -> Any:
    """Decode one value; the payload must be exactly one encoding."""
    value, pos = _decode(data, 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after value")
    return value


def _decode(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise CodecError("unexpected end of payload")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FLOAT:
        if pos + _DOUBLE.size > len(data):
            raise CodecError("truncated float")
        return _DOUBLE.unpack_from(data, pos)[0], pos + _DOUBLE.size
    if tag in (_T_INT, _T_STR, _T_BYTES):
        length, pos = _read_length(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated scalar body")
        body = data[pos : pos + length]
        pos += length
        if tag == _T_INT:
            try:
                return int(body.decode("ascii")), pos
            except ValueError as exc:
                raise CodecError(f"bad integer body {body!r}") from exc
        if tag == _T_STR:
            try:
                return body.decode("utf-8"), pos
            except UnicodeDecodeError as exc:
                raise CodecError("bad UTF-8 in string body") from exc
        return body, pos
    if tag in (_T_LIST, _T_TUPLE):
        count, pos = _read_length(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), pos
    if tag == _T_DICT:
        count, pos = _read_length(data, pos)
        record: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode(data, pos)
            value, pos = _decode(data, pos)
            record[key] = value
        return record, pos
    raise CodecError(f"unknown value tag {tag!r}")


def _read_length(data: bytes, pos: int) -> tuple[int, int]:
    if pos + _LEN.size > len(data):
        raise CodecError("truncated length prefix")
    return _LEN.unpack_from(data, pos)[0], pos + _LEN.size


# -- frames ----------------------------------------------------------------


def encode_record(record: dict[str, Any]) -> bytes:
    """One framed record: header + encoded dict payload."""
    payload = encode_value(record)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(frame: bytes) -> dict[str, Any]:
    """Strict single-frame decode (raises :class:`TornLogError`)."""
    records = list(iter_records(frame, strict=True))
    if len(records) != 1:
        raise TornLogError(f"expected exactly one frame, found {len(records)}")
    return records[0]


def iter_records(data: bytes, strict: bool = False) -> Iterator[dict[str, Any]]:
    """Yield records until the data ends or tears.

    ``strict=True`` raises :class:`TornLogError` on a torn tail;
    otherwise iteration simply stops at the last intact frame, which is
    the recovery semantic ("discard the torn suffix").
    """
    for record, _end in iter_records_with_offsets(data, strict):
        yield record


def iter_records_with_offsets(
    data: bytes, strict: bool = False
) -> Iterator[tuple[dict[str, Any], int]]:
    """Like :func:`iter_records` but also yields the byte offset just
    past each intact frame (the truncation point for torn-tail repair)."""
    pos = 0
    total = len(data)
    while pos < total:
        if pos + HEADER_SIZE > total:
            if strict:
                raise TornLogError(f"torn frame header at byte {pos}")
            return
        length, crc = _HEADER.unpack_from(data, pos)
        body_start = pos + HEADER_SIZE
        body_end = body_start + length
        if body_end > total:
            if strict:
                raise TornLogError(f"torn frame payload at byte {pos}")
            return
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            if strict:
                raise TornLogError(f"checksum mismatch at byte {pos}")
            return
        try:
            record = decode_value(payload)
        except CodecError:
            if strict:
                raise TornLogError(f"undecodable payload at byte {pos}")
            return
        if not isinstance(record, dict):
            if strict:
                raise TornLogError(f"frame payload is not a record at byte {pos}")
            return
        yield record, body_end
        pos = body_end


def intact_prefix_length(data: bytes) -> int:
    """Byte length of the longest intact frame prefix of ``data``."""
    end = 0
    for _record, offset in iter_records_with_offsets(data):
        end = offset
    return end
