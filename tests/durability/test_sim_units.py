"""Direct unit tests for the crash-simulation harness itself
(:mod:`repro.durability.sim`): the batteries lean on ``run_to_crash``,
``arm_crash`` occurrence counting, and reopen-time config plumbing, so
each of those contracts gets pinned here in isolation.
"""

from __future__ import annotations

import os

import pytest

from repro.durability import SimulatedCrash
from repro.resilience.faults import SimulatedCrashError

pytestmark = pytest.mark.crash


def test_run_to_crash_reports_firing(tmp_path):
    sim = SimulatedCrash(dir=str(tmp_path / "wal"))
    db = sim.open()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    sim.arm_crash("wal.before_flush", occurrence=1)
    assert sim.run_to_crash(lambda d: d.execute("INSERT INTO t VALUES (1)"))
    rule = sim.injector.crash_points[0]
    assert rule.fired


def test_run_to_crash_false_on_clean_run_and_propagates_other_errors(tmp_path):
    sim = SimulatedCrash(dir=str(tmp_path / "wal"))
    db = sim.open()
    assert not sim.run_to_crash(
        lambda d: d.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    )
    # Only SimulatedCrashError is swallowed; real bugs surface.
    with pytest.raises(Exception, match="(?i)syntax|parse|unsupported"):
        sim.run_to_crash(lambda d: d.execute("THIS IS NOT SQL"))
    db.close()


def test_arm_crash_occurrence_counts_hits_not_statements(tmp_path):
    sim = SimulatedCrash(dir=str(tmp_path / "wal"))
    db = sim.open()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    # Occurrence 3 counts from arming time: two flushes survive, the
    # third dies.
    sim.arm_crash("wal.after_flush", occurrence=3)
    assert not sim.run_to_crash(lambda d: d.execute("INSERT INTO t VALUES (1)"))
    assert not sim.run_to_crash(lambda d: d.execute("INSERT INTO t VALUES (2)"))
    assert sim.run_to_crash(lambda d: d.execute("INSERT INTO t VALUES (3)"))
    recovered = sim.reopen()
    # The first two flushes completed, the third was after_flush (the
    # flush itself landed) — all three rows are durable.
    assert len(recovered.execute("SELECT * FROM t").rows) == 3


def test_occurrence_is_relative_to_arming_point(tmp_path):
    sim = SimulatedCrash(dir=str(tmp_path / "wal"))
    db = sim.open()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES (1)")  # pre-arm flushes don't count
    hits_before = sim.injector.point_hits.get("wal.before_flush", 0)
    assert hits_before >= 2
    sim.arm_crash("wal.before_flush", occurrence=1)
    assert sim.run_to_crash(lambda d: d.execute("INSERT INTO t VALUES (2)"))
    recovered = sim.reopen()
    # The armed flush never completed: row 2 lost, row 1 durable.
    assert recovered.execute("SELECT * FROM t").rows == [(1,)]


def test_open_twice_and_arm_without_open_raise(tmp_path):
    sim = SimulatedCrash(dir=str(tmp_path / "wal"))
    sim.open()
    with pytest.raises(RuntimeError, match="already open"):
        sim.open()
    sim.crash()
    with pytest.raises(RuntimeError, match="no open database"):
        sim.arm_crash("wal.before_flush")


def test_crash_marks_manager_dead_and_counts(tmp_path):
    sim = SimulatedCrash(dir=str(tmp_path / "wal"))
    db = sim.open()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    durability = db.durability
    assert sim.crashes == 0
    sim.crash()
    assert sim.crashes == 1 and sim.db is None and sim.injector is None
    assert durability.dead  # the abandoned incarnation can never write
    sim.open()
    sim.reopen()
    assert sim.crashes == 2


def test_reopen_plumbs_config_and_fresh_injector(tmp_path):
    wal_dir = str(tmp_path / "wal")
    sim = SimulatedCrash(dir=wal_dir, checkpoint_every=7, seed=3)
    config = sim.config()
    assert str(config.dir) == wal_dir
    assert config.checkpoint_every == 7
    assert config.fsync is False

    db = sim.open()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    sim.arm_crash("wal.before_flush", occurrence=10)  # never reached
    old_injector = sim.injector
    recovered = sim.reopen()
    # Same directory (the state survived), same knobs on the new
    # incarnation, and a *fresh* injector — armed points never leak
    # into the recovered instance.
    assert str(recovered.durability.config.dir) == wal_dir
    assert recovered.durability.config.checkpoint_every == 7
    assert sim.injector is not old_injector
    assert sim.injector.crash_points == []
    assert recovered.fault_injector is sim.injector
    assert recovered.catalog.has_table("t")


def test_default_dir_is_a_fresh_tempdir():
    sim = SimulatedCrash()
    assert os.path.isdir(sim.dir)
    assert SimulatedCrash().dir != sim.dir
    db = sim.open()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    assert sim.reopen().catalog.has_table("t")
    sim.crash()
