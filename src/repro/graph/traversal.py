"""The fluent Gremlin-style traversal DSL.

``GraphTraversalSource`` (obtained from a backend's ``.traversal()``)
spawns :class:`Traversal` objects; each fluent call appends a step.
Python keywords force a few renames (``in_``, ``is_``, ``not_``,
``as_``, ``id_``, ``sum_``, ``min_``, ``max_``, ``filter_``,
``map_``, ``range_``); the Gremlin string parser maps the original
Gremlin names onto these.

Anonymous traversals (``__.out()`` etc.) are unbound step lists used
inside ``repeat``/``filter``/``union``; they bind to the enclosing
traversal's provider at run time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from .errors import TraversalError
from .model import Direction, GraphProvider, Pushdown
from .predicates import P
from .steps import (
    AddEdgeStep,
    AddVertexStep,
    AsStep,
    CapStep,
    ChooseStep,
    CoalesceStep,
    ConstantStep,
    CountStep,
    DedupStep,
    EdgeVertexStep,
    FilterLambdaStep,
    FilterTraversalStep,
    FoldStep,
    GraphStep,
    GroupCountStep,
    GroupStep,
    HasNotStep,
    HasStep,
    IdentityStep,
    IdStep,
    IsStep,
    LabelStep,
    LimitStep,
    MapLambdaStep,
    MaxStep,
    MeanStep,
    MinStep,
    OptionalStep,
    OrderStep,
    PathStep,
    ProjectStep,
    PropertiesStep,
    RepeatStep,
    SelectStep,
    SideEffectStep,
    SimplePathStep,
    Step,
    StoreStep,
    SumStep,
    TraversalContext,
    Traverser,
    UnfoldStep,
    UnionStep,
    ValueMapStep,
    ValueTupleStep,
    VertexStep,
    run_steps,
)
from .strategy import StrategyRegistry


class Traversal:
    """A chain of steps plus (for bound traversals) a source."""

    def __init__(self, source: "GraphTraversalSource | None" = None):
        self.source = source
        self.steps: list[Step] = []
        self._compiled = False
        self._result_iter: Iterator[Traverser] | None = None

    # -- plumbing ------------------------------------------------------------

    def _append(self, step: Step) -> "Traversal":
        if self._compiled:
            raise TraversalError("cannot extend a traversal after execution started")
        self.steps.append(step)
        return self

    def clone(self) -> "Traversal":
        copied = Traversal(self.source)
        copied.steps = list(self.steps)
        return copied

    # -- GSA steps -----------------------------------------------------------

    def V(self, *ids: Any) -> "Traversal":
        return self._append(GraphStep("vertex", _flatten_ids(ids)))

    def E(self, *ids: Any) -> "Traversal":
        return self._append(GraphStep("edge", _flatten_ids(ids)))

    def out(self, *labels: str) -> "Traversal":
        return self._append(VertexStep(Direction.OUT, labels, "vertex"))

    def in_(self, *labels: str) -> "Traversal":
        return self._append(VertexStep(Direction.IN, labels, "vertex"))

    def both(self, *labels: str) -> "Traversal":
        return self._append(VertexStep(Direction.BOTH, labels, "vertex"))

    def outE(self, *labels: str) -> "Traversal":
        return self._append(VertexStep(Direction.OUT, labels, "edge"))

    def inE(self, *labels: str) -> "Traversal":
        return self._append(VertexStep(Direction.IN, labels, "edge"))

    def bothE(self, *labels: str) -> "Traversal":
        return self._append(VertexStep(Direction.BOTH, labels, "edge"))

    def outV(self) -> "Traversal":
        return self._append(EdgeVertexStep(Direction.OUT))

    def inV(self) -> "Traversal":
        return self._append(EdgeVertexStep(Direction.IN))

    def bothV(self) -> "Traversal":
        return self._append(EdgeVertexStep(Direction.BOTH))

    def otherV(self) -> "Traversal":
        return self._append(EdgeVertexStep(Direction.OTHER))

    # -- filters --------------------------------------------------------------

    def has(self, *args: Any) -> "Traversal":
        """``has(key)``, ``has(key, value)``, ``has(key, P)``, or
        ``has(label, key, value)``."""
        if len(args) == 1:
            key = args[0]
            return self._append(FilterLambdaStep(lambda o: o.has_property(key)))
        if len(args) == 2:
            return self._append(HasStep([(args[0], P.of(args[1]))]))
        if len(args) == 3:
            return self._append(
                HasStep([("~label", P.eq(args[0])), (args[1], P.of(args[2]))])
            )
        raise TraversalError("has() takes 1-3 arguments")

    def hasLabel(self, *labels: str) -> "Traversal":
        predicate = P.eq(labels[0]) if len(labels) == 1 else P.within(*labels)
        return self._append(HasStep([("~label", predicate)]))

    def hasId(self, *ids: Any) -> "Traversal":
        flattened = _flatten_ids(ids) or []
        predicate = P.eq(flattened[0]) if len(flattened) == 1 else P.within(*flattened)
        return self._append(HasStep([("~id", predicate)]))

    def hasNot(self, key: str) -> "Traversal":
        return self._append(HasNotStep(key))

    def is_(self, predicate: Any) -> "Traversal":
        return self._append(IsStep(P.of(predicate)))

    def filter_(self, condition: "Traversal | Callable[[Any], bool]") -> "Traversal":
        if isinstance(condition, Traversal):
            return self._append(FilterTraversalStep(condition))
        return self._append(FilterLambdaStep(condition))

    def where(self, condition: "Traversal") -> "Traversal":
        return self._append(FilterTraversalStep(condition))

    def not_(self, condition: "Traversal") -> "Traversal":
        return self._append(FilterTraversalStep(condition, negated=True))

    def dedup(self) -> "Traversal":
        return self._append(DedupStep())

    def limit(self, count: int) -> "Traversal":
        return self._append(LimitStep(0, count))

    def range_(self, low: int, high: int) -> "Traversal":
        return self._append(LimitStep(low, high if high >= 0 else None))

    def skip(self, count: int) -> "Traversal":
        return self._append(LimitStep(count, None))

    def simplePath(self) -> "Traversal":
        return self._append(SimplePathStep())

    # -- maps ------------------------------------------------------------------

    def values(self, *keys: str) -> "Traversal":
        if any(not isinstance(k, str) for k in keys):
            raise TraversalError("values() takes property-name strings")
        return self._append(PropertiesStep(tuple(keys)))

    def valueTuple(self, *keys: str) -> "Traversal":
        return self._append(ValueTupleStep(tuple(keys)))

    def valueMap(self, *keys: str, with_tokens: bool = False) -> "Traversal":
        return self._append(ValueMapStep(tuple(keys), with_tokens))

    def id_(self) -> "Traversal":
        return self._append(IdStep())

    def label(self) -> "Traversal":
        return self._append(LabelStep())

    def map_(self, fn: Callable[[Any], Any]) -> "Traversal":
        return self._append(MapLambdaStep(fn))

    def path(self) -> "Traversal":
        return self._append(PathStep())

    def as_(self, label: str) -> "Traversal":
        return self._append(AsStep(label))

    def select(self, *keys: str) -> "Traversal":
        return self._append(SelectStep(tuple(keys)))

    def fold(self) -> "Traversal":
        return self._append(FoldStep())

    def unfold(self) -> "Traversal":
        return self._append(UnfoldStep())

    # -- misc maps / flow control -------------------------------------------------

    def identity(self) -> "Traversal":
        return self._append(IdentityStep())

    def constant(self, value: Any) -> "Traversal":
        return self._append(ConstantStep(value))

    def sideEffect(self, effect: "Traversal | Callable[[Any], None]") -> "Traversal":
        return self._append(SideEffectStep(effect))

    def optional(self, sub: "Traversal") -> "Traversal":
        return self._append(OptionalStep(sub))

    def choose(
        self,
        condition: "Traversal",
        true_branch: "Traversal",
        false_branch: "Traversal | None" = None,
    ) -> "Traversal":
        return self._append(ChooseStep(condition, true_branch, false_branch))

    def group(self) -> "Traversal":
        return self._append(GroupStep())

    def project(self, *names: str) -> "Traversal":
        return self._append(ProjectStep(tuple(names)))

    # -- mutation -------------------------------------------------------------------

    def addV(self, label: str) -> "Traversal":
        return self._append(AddVertexStep(label))

    def addE(self, label: str) -> "Traversal":
        return self._append(AddEdgeStep(label))

    def property(self, key: str, value: Any) -> "Traversal":
        """Modulator for the preceding addV()/addE()."""
        last = self.steps[-1] if self.steps else None
        if isinstance(last, (AddVertexStep, AddEdgeStep)):
            last.properties[key] = value
            return self
        raise TraversalError("property() must follow addV() or addE()")

    def from_(self, spec: Any) -> "Traversal":
        last = self.steps[-1] if self.steps else None
        if not isinstance(last, AddEdgeStep):
            raise TraversalError("from_() must follow addE()")
        last.from_vertex = spec
        return self

    def to(self, spec: Any) -> "Traversal":
        last = self.steps[-1] if self.steps else None
        if not isinstance(last, AddEdgeStep):
            raise TraversalError("to() must follow addE()")
        last.to_vertex = spec
        return self

    # -- side effects -------------------------------------------------------------

    def store(self, key: str) -> "Traversal":
        return self._append(StoreStep(key))

    def aggregate(self, key: str) -> "Traversal":
        # Eager vs lazy distinction doesn't matter for our pipelined
        # executor; aggregate behaves as store.
        return self._append(StoreStep(key))

    def cap(self, key: str) -> "Traversal":
        return self._append(CapStep(key))

    # -- reducers ---------------------------------------------------------------

    def count(self) -> "Traversal":
        return self._append(CountStep())

    def sum_(self) -> "Traversal":
        return self._append(SumStep())

    def mean(self) -> "Traversal":
        return self._append(MeanStep())

    def min_(self) -> "Traversal":
        return self._append(MinStep())

    def max_(self) -> "Traversal":
        return self._append(MaxStep())

    def groupCount(self) -> "Traversal":
        return self._append(GroupCountStep())

    def order(self) -> "Traversal":
        return self._append(OrderStep())

    def by(self, key: "str | Traversal | None" = None, order: str = "asc") -> "Traversal":
        """Modulator for the preceding ``order()``/``groupCount()``/
        ``group()``/``project()``."""
        if not self.steps:
            raise TraversalError("by() requires a preceding step")
        last = self.steps[-1]
        descending = order in ("desc", "decr")
        if isinstance(last, OrderStep):
            if isinstance(key, Traversal):
                raise TraversalError("order().by() takes a property key")
            last.comparators.append((key, descending))
            return self
        if isinstance(last, GroupCountStep):
            if isinstance(key, Traversal):
                raise TraversalError("groupCount().by() takes a property key")
            last.by_key = key
            return self
        if isinstance(last, (GroupStep, ProjectStep)):
            last.modulate(key)
            return self
        raise TraversalError(f"by() cannot modulate {last.name()}")

    # -- branching ----------------------------------------------------------------

    def union(self, *branches: "Traversal") -> "Traversal":
        return self._append(UnionStep(branches))

    def coalesce(self, *branches: "Traversal") -> "Traversal":
        return self._append(CoalesceStep(branches))

    def repeat(self, body: "Traversal") -> "Traversal":
        return self._append(RepeatStep(body))

    def times(self, count: int) -> "Traversal":
        step = self._last_repeat()
        step.times = count
        return self

    def until(self, condition: "Traversal") -> "Traversal":
        last = self.steps[-1] if self.steps else None
        if isinstance(last, RepeatStep) and last.until is None:
            last.until = condition  # repeat().until() — do-while
        else:
            # until().repeat() — while-do; remember for the next repeat
            pending = RepeatStep(Traversal(), until=condition, until_first=True)
            self._append(pending)
        return self

    def emit(self, condition: "Traversal | None" = None) -> "Traversal":
        last = self.steps[-1] if self.steps else None
        if isinstance(last, RepeatStep):
            last.emit = condition if condition is not None else True
        else:
            pending = RepeatStep(Traversal(), emit=condition if condition is not None else True)
            pending.times = None
            self._append(pending)
        return self

    def _last_repeat(self) -> RepeatStep:
        if not self.steps or not isinstance(self.steps[-1], RepeatStep):
            raise TraversalError("times()/until()/emit() must follow repeat()")
        return self.steps[-1]

    # -- execution -------------------------------------------------------------------

    def compile(self) -> "Traversal":
        """Apply the source's traversal strategies (idempotent)."""
        if self._compiled:
            return self
        # Merge a pending until()/emit()-before-repeat marker into the
        # following repeat step.
        self._merge_pending_repeats()
        if self.source is not None:
            recorder = self.source.recorder
            if recorder is not None and recorder.enabled:
                self._compile_traced(recorder)
            else:
                self.source.strategies.apply_all(self)
        self._compiled = True
        return self

    def _compile_traced(self, recorder: Any) -> None:
        """Strategy application with one ``strategy.applied`` event per
        strategy that changed the plan, plus a ``traversal.compiled``
        summary.  Only runs when tracing is on — the fast path stays a
        single ``apply_all`` call."""
        from ..obs import tracing
        from ..obs.explain import describe_plan

        original = describe_plan(self.steps)
        for strategy in self.source.strategies.in_order():  # type: ignore[union-attr]
            before = describe_plan(self.steps)
            strategy.apply(self)
            after = describe_plan(self.steps)
            if before != after:
                recorder.emit(
                    tracing.STRATEGY_APPLIED,
                    strategy=strategy.name,
                    before=before,
                    after=after,
                )
        recorder.emit(
            tracing.TRAVERSAL_COMPILED,
            original=original,
            plan=describe_plan(self.steps),
        )

    def _merge_pending_repeats(self) -> None:
        merged: list[Step] = []
        pending: RepeatStep | None = None
        for step in self.steps:
            if isinstance(step, RepeatStep) and not step.body.steps:
                pending = step
                continue
            if pending is not None and isinstance(step, RepeatStep):
                step.until = step.until or pending.until
                step.until_first = pending.until_first
                if pending.emit and not step.emit:
                    step.emit = pending.emit
                pending = None
            merged.append(step)
        if pending is not None:
            raise TraversalError("until()/emit() without a following repeat()")
        self.steps = merged

    def _execution_context(self) -> TraversalContext:
        """Compile and build the execution context (shared by normal
        execution and ``profile()``)."""
        if self.source is None:
            raise TraversalError("cannot execute an anonymous traversal directly")
        self.compile()
        # path tracking is needed for path()/simplePath() and for
        # otherV(), which must know which endpoint the traverser came from
        track = any(
            isinstance(s, (PathStep, SimplePathStep))
            or (isinstance(s, EdgeVertexStep) and s.direction is Direction.OTHER)
            for s in self._all_steps()
        )
        ctx = TraversalContext(self.source.provider, track_paths=track)
        budget = getattr(self.source, "budget", None)
        if budget is not None:
            dialect = getattr(self.source.provider, "dialect", None)
            if dialect is not None:
                ctx.budget = budget.tracker(dialect.registry, dialect.trace)
            else:
                ctx.budget = budget.tracker()
        return ctx

    def _execute(self) -> Iterator[Traverser]:
        ctx = self._execution_context()
        stream = run_steps(self.steps, [], ctx)
        if ctx.budget is not None:
            stream = self._budgeted(stream, ctx.budget)
        return stream

    def _budgeted(self, stream: Iterator[Traverser], tracker: Any) -> Iterator[Traverser]:
        """Drive the lazy result stream with the budget tracker active on
        the dialect, so every SQL issue checkpoints against it — the
        dialect is shared by concurrent traversals, hence the
        thread-local activation around each pull."""
        dialect = getattr(self.source.provider, "dialect", None)
        if dialect is None:
            yield from stream
            return
        while True:
            with dialect.budget_scope(tracker):
                try:
                    item = next(stream)
                except StopIteration:
                    return
            yield item

    def _all_steps(self) -> Iterator[Step]:
        stack = list(self.steps)
        while stack:
            step = stack.pop()
            yield step
            for _label, sub in step.sub_traversals():
                stack.extend(sub.steps)

    # -- terminals ----------------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return (t.obj for t in self._ensure_iter())

    def _ensure_iter(self) -> Iterator[Traverser]:
        if self._result_iter is None:
            self._result_iter = self._execute()
        return self._result_iter

    def toList(self) -> list[Any]:
        return list(self)

    def toSet(self) -> set[Any]:
        return set(self)

    def next(self) -> Any:
        for obj in self:
            return obj
        raise TraversalError("traversal has no more results")

    def tryNext(self) -> Any | None:
        for obj in self:
            return obj
        return None

    def hasNext(self) -> bool:
        iterator = self._ensure_iter()
        try:
            first = next(iterator)
        except StopIteration:
            return False
        # push back
        import itertools as _it

        self._result_iter = _it.chain([first], iterator)
        return True

    def iterate(self) -> "Traversal":
        for _ in self:
            pass
        return self

    def explain(self) -> Any:
        """The original and strategy-mutated step plans plus the SQL
        each GSA step would issue (see :mod:`repro.obs.explain`).  Does
        not execute the traversal."""
        from ..obs.explain import build_explain

        return build_explain(self)

    def profile(self) -> Any:
        """Execute and return a per-step tree of timings, SQL counts,
        and row counts (see :mod:`repro.obs.profiler`)."""
        from ..obs.profiler import run_profile

        return run_profile(self)

    def __repr__(self) -> str:
        return "Traversal[" + ", ".join(s.name() for s in self.steps) + "]"


class GraphTraversalSource:
    """``g`` — spawns traversals against a provider with a strategy set."""

    def __init__(
        self,
        provider: GraphProvider,
        strategies: StrategyRegistry | None = None,
        recorder: Any = None,
        budget: Any = None,
    ):
        self.provider = provider
        self.strategies = strategies or StrategyRegistry()
        # Optional TraceRecorder (from Db2Graph.enable_tracing()):
        # compile() emits strategy.applied/traversal.compiled through it.
        self.recorder = recorder
        # Optional QueryBudget applied to every traversal spawned here.
        self.budget = budget

    def __deepcopy__(self, memo: dict) -> "GraphTraversalSource":
        # explain() deep-copies step plans; step plans reference their
        # source via sub-traversals.  The source (and with it the whole
        # database) must never be copied along.
        return self

    def V(self, *ids: Any) -> Traversal:
        return Traversal(self).V(*ids)

    def E(self, *ids: Any) -> Traversal:
        return Traversal(self).E(*ids)

    def addV(self, label: str) -> Traversal:
        return Traversal(self).addV(label)

    def addE(self, label: str) -> Traversal:
        return Traversal(self).addE(label)

    def with_strategies(self, *strategies: Any) -> "GraphTraversalSource":
        registry = self.strategies.copy()
        for strategy in strategies:
            registry.add(strategy)
        return GraphTraversalSource(self.provider, registry, self.recorder, self.budget)

    def without_strategies(self, *names: str) -> "GraphTraversalSource":
        registry = self.strategies.copy()
        for name in names:
            registry.remove(name)
        return GraphTraversalSource(self.provider, registry, self.recorder, self.budget)

    def with_budget(self, budget: Any = None, **limits: Any) -> "GraphTraversalSource":
        """A source whose traversals run under a :class:`QueryBudget`.

        Accepts a ready budget or limit kwargs::

            g.with_budget(deadline_seconds=1.0, max_traversers=10_000)
        """
        if budget is None:
            from ..resilience.budget import QueryBudget

            budget = QueryBudget(**limits)
        return GraphTraversalSource(self.provider, self.strategies, self.recorder, budget)

    def __repr__(self) -> str:
        return f"g[{self.provider.describe()}]"


class _AnonymousTraversal:
    """``__`` — builds unbound traversals for use inside steps."""

    def __getattr__(self, name: str) -> Callable[..., Traversal]:
        def start(*args: Any, **kwargs: Any) -> Traversal:
            traversal = Traversal(None)
            method = getattr(traversal, name, None)
            if method is None:
                raise TraversalError(f"unknown traversal step {name!r}")
            return method(*args, **kwargs)

        return start

    def start(self) -> Traversal:
        return Traversal(None)


__ = _AnonymousTraversal()


def _flatten_ids(ids: Sequence[Any]) -> list[Any] | None:
    from .model import Element

    if not ids:
        return None
    flattened: list[Any] = []
    for item in ids:
        if isinstance(item, (list, tuple, set, frozenset)):
            flattened.extend(e.id if isinstance(e, Element) else e for e in item)
        elif isinstance(item, Element):
            flattened.append(item.id)
        else:
            flattened.append(item)
    return flattened
