"""Engine bugs flushed out by the generative conformance harness
(``repro.testing``), pinned as hand-written minimal repros so they can
never regress silently.

Each test names the sweep seed that first exposed the bug; the repro
itself is reduced to a hand-built schema so it does not depend on the
generator's draw sequence staying stable.
"""

from __future__ import annotations

import pytest

from repro.core import Db2Graph
from repro.graph import __
from repro.relational import Database
from repro.testing import generate_scenario, run_scenario


def composite_src_graph(batch_size):
    """Vertices with composite ids ('vc'::ka::kb) feeding an edge table
    whose src template is multi-column."""
    db = Database(enforce_foreign_keys=False)
    db.execute("CREATE TABLE vc (ka INT, kb INT, score INT)")
    db.execute("CREATE TABLE vo (pk INT PRIMARY KEY)")
    db.execute("CREATE TABLE e (s_ka INT, s_kb INT, d_pk INT)")
    db.execute("INSERT INTO vc VALUES (1, 2, 5), (3, 4, 6)")
    db.execute("INSERT INTO vo VALUES (10), (11), (12)")
    db.execute("INSERT INTO e VALUES (1, 2, 10), (1, 2, 11), (3, 4, 12)")
    overlay = {
        "v_tables": [
            {"table_name": "vc", "prefixed_id": True, "id": "'vc'::ka::kb",
             "fix_label": True, "label": "'vc_lab'", "properties": ["score"]},
            {"table_name": "vo", "id": "pk", "fix_label": True,
             "label": "'vo_lab'", "properties": []},
        ],
        "e_tables": [
            {"table_name": "e", "src_v": "'vc'::s_ka::s_kb", "dst_v": "d_pk",
             "src_v_table": "vc", "dst_v_table": "vo",
             "implicit_edge_id": True, "fix_label": True, "label": "'e_lab'"},
        ],
    }
    return Db2Graph.open(db, overlay, batch_size=batch_size)


@pytest.mark.parametrize("batch_size", [1, 2, 64])
def test_duplicate_composite_traversers_fetch_once(batch_size):
    """Sweep seed 27: with batch_size > 1, several traversers parked on
    the same composite-id vertex were each emitting one endpoint-id
    probe, and every probe's edges were demuxed back to *every*
    traverser — quadratic duplication.  g.V(x, x).out() must yield each
    neighbor exactly once per traverser, at any batch size."""
    graph = composite_src_graph(batch_size)
    try:
        out = graph.traversal().V("vc::1::2", "vc::1::2").out().toList()
        assert sorted(str(v.id) for v in out) == ["10", "10", "11", "11"]
        # same invariant via union(), the shape the sweep first caught
        t = graph.traversal()
        both = t.V("vc::1::2").union(__.identity(), __.identity()).out().toList()
        assert sorted(str(v.id) for v in both) == ["10", "10", "11", "11"]
    finally:
        graph.close()


def dual_role_column_label_graph():
    """A §5 dual table: rows are vertices (column label!) and edges at
    once.  The vertex's label column is not part of the edge config, so
    an edge row fetched with a projection may lack it."""
    db = Database(enforce_foreign_keys=False)
    db.execute("CREATE TABLE d (pk INT PRIMARY KEY, ref INT, lab VARCHAR, score INT)")
    db.execute("INSERT INTO d VALUES (1, 2, 'x_lab', 7), (2, 1, 'y_lab', 8)")
    overlay = {
        "v_tables": [
            {"table_name": "d", "prefixed_id": True, "id": "'d'::pk",
             "label": "lab", "properties": ["score"]},
        ],
        "e_tables": [
            {"table_name": "d", "config_name": "d_self",
             "src_v": "'d'::pk", "dst_v": "'d'::ref",
             "src_v_table": "d", "dst_v_table": "d",
             "implicit_edge_id": True, "fix_label": True,
             "label": "'d_e'", "properties": []},
        ],
    }
    return Db2Graph.open(db, overlay)


def test_vertex_from_edge_with_projected_row():
    """Sweep seed 155: the vertex-from-edge shortcut (§6.3 'when a
    vertex table is also an edge table') trusted the *relation's* column
    list, but the fetched edge row was projected down to edge columns —
    building the vertex then KeyError'd on the label column.  The
    shortcut must fall back to a lazy vertex when the row is partial."""
    graph = dual_role_column_label_graph()
    try:
        endpoints = graph.traversal().E().outV().toList()
        assert sorted((str(v.id), v.label) for v in endpoints) == [
            ("d::1", "x_lab"),
            ("d::2", "y_lab"),
        ]
    finally:
        graph.close()


@pytest.mark.parametrize("seed", [27, 155, 179])
def test_original_sweep_seeds_stay_conformant(seed):
    """The full generated scenarios that first exposed the bugs above
    (27: composite dedup, 155: projected-row subsumption, 179: NULL-key
    DML WHERE clauses) replay divergence-free."""
    assert run_scenario(generate_scenario(seed)) is None
