"""Traversal engine tests on the TinkerPop 'modern' graph — the
canonical recipes every Gremlin implementation is judged against."""

import pytest

from repro.graph import P, TraversalError, __


class TestVerticesAndEdges:
    def test_v_all(self, g):
        assert g.V().count().next() == 6

    def test_v_by_id(self, g):
        assert g.V(1).values("name").next() == "marko"

    def test_v_by_multiple_ids(self, g):
        assert sorted(g.V(1, 4).values("name").toList()) == ["josh", "marko"]

    def test_v_by_id_list(self, g):
        assert g.V([2, 6]).count().next() == 2

    def test_v_missing_id_yields_nothing(self, g):
        assert g.V(99).toList() == []

    def test_e_all(self, g):
        assert g.E().count().next() == 6

    def test_e_by_id(self, g):
        edge = g.E(7).next()
        assert edge.label == "knows"
        assert edge.out_v_id == 1 and edge.in_v_id == 2

    def test_haslabel(self, g):
        assert g.V().hasLabel("person").count().next() == 4
        assert g.V().hasLabel("software").count().next() == 2
        assert g.V().hasLabel("person", "software").count().next() == 6

    def test_has_key_value(self, g):
        assert g.V().has("name", "marko").next().id == 1

    def test_has_with_predicate(self, g):
        assert g.V().has("age", P.gt(30)).count().next() == 2

    def test_has_label_key_value(self, g):
        assert g.V().has("person", "name", "josh").next().id == 4

    def test_has_key_only(self, g):
        assert g.V().has("age").count().next() == 4

    def test_hasnot(self, g):
        assert g.V().hasNot("age").count().next() == 2

    def test_hasid(self, g):
        assert g.V().hasId(1, 2).count().next() == 2


class TestAdjacency:
    def test_out(self, g):
        assert sorted(v.id for v in g.V(1).out()) == [2, 3, 4]

    def test_out_with_label(self, g):
        assert sorted(v.id for v in g.V(1).out("knows")) == [2, 4]

    def test_in(self, g):
        assert sorted(v.id for v in g.V(3).in_("created")) == [1, 4, 6]

    def test_both(self, g):
        assert sorted(v.id for v in g.V(4).both()) == [1, 3, 5]

    def test_oute_ine(self, g):
        assert g.V(1).outE().count().next() == 3
        assert g.V(3).inE().count().next() == 3
        assert g.V(4).bothE().count().next() == 3

    def test_outv_inv(self, g):
        assert g.V(1).outE("knows").inV().values("name").toSet() == {"vadas", "josh"}
        assert g.V(1).outE("knows").outV().values("name").toSet() == {"marko"}

    def test_bothv(self, g):
        assert sorted(v.id for v in g.E(7).bothV()) == [1, 2]

    def test_otherv(self, g):
        assert sorted(v.id for v in g.V(1).bothE("knows").otherV()) == [2, 4]

    def test_two_hops(self, g):
        assert sorted(v.id for v in g.V(1).out("knows").out("created")) == [3, 5]

    def test_out_on_edge_raises(self, g):
        with pytest.raises(TraversalError):
            g.V(1).outE().out().toList()

    def test_outv_on_vertex_raises(self, g):
        with pytest.raises(TraversalError):
            g.V(1).outV().toList()


class TestValuesAndMaps:
    def test_values_single_key(self, g):
        assert sorted(g.V().hasLabel("person").values("name").toList()) == [
            "josh", "marko", "peter", "vadas",
        ]

    def test_values_multiple_keys_flatten(self, g):
        result = g.V(1).values("name", "age").toList()
        assert set(result) == {"marko", 29}

    def test_values_skips_missing(self, g):
        assert g.V(3).values("age").toList() == []

    def test_values_no_keys_yields_all(self, g):
        assert set(g.V(1).values().toList()) == {"marko", 29}

    def test_valuemap(self, g):
        assert g.V(1).valueMap().next() == {"name": "marko", "age": 29}

    def test_valuemap_with_tokens(self, g):
        mapping = g.V(1).valueMap(with_tokens=True).next()
        assert mapping["id"] == 1 and mapping["label"] == "person"

    def test_valuetuple(self, g):
        assert g.V(1).valueTuple("name", "age").next() == ("marko", 29)

    def test_id_and_label(self, g):
        assert sorted(g.V().hasLabel("software").id_().toList()) == [3, 5]
        assert g.V(1).label().next() == "person"
        assert g.E(7).label().next() == "knows"

    def test_map_lambda(self, g):
        assert g.V(1).values("age").map_(lambda a: a + 1).next() == 30


class TestReducers:
    def test_count_empty(self, g):
        assert g.V(99).count().next() == 0

    def test_sum_mean_min_max(self, g):
        ages = g.V().hasLabel("person").values("age")
        assert ages.clone().source is None or True  # clone keeps steps
        assert g.V().values("age").sum_().next() == 29 + 27 + 32 + 35
        assert g.V().values("age").mean().next() == pytest.approx(30.75)
        assert g.V().values("age").min_().next() == 27
        assert g.V().values("age").max_().next() == 35

    def test_numeric_reducer_on_empty_yields_nothing(self, g):
        assert g.V(99).values("age").sum_().toList() == []

    def test_fold_unfold(self, g):
        folded = g.V().hasLabel("person").values("name").fold().next()
        assert isinstance(folded, list) and len(folded) == 4
        assert g.V(1).out("knows").fold().unfold().count().next() == 2

    def test_groupcount(self, g):
        counts = g.V().groupCount().by("~label" if False else None).next()
        assert isinstance(counts, dict)
        label_counts = g.V().label().groupCount().next()
        assert label_counts == {"person": 4, "software": 2}

    def test_groupcount_by_property(self, g):
        counts = g.V().hasLabel("software").groupCount().by("lang").next()
        assert counts == {"java": 2}


class TestFiltersAndSlicing:
    def test_dedup(self, g):
        # josh and marko both created lop
        assert g.V().out("created").count().next() == 4
        assert g.V().out("created").dedup().count().next() == 2

    def test_limit(self, g):
        assert len(g.V().limit(3).toList()) == 3

    def test_range(self, g):
        assert len(g.V().range_(2, 5).toList()) == 3

    def test_skip(self, g):
        assert len(g.V().skip(4).toList()) == 2

    def test_is_filter(self, g):
        assert g.V().values("age").is_(P.gt(30)).toList() == [32, 35]

    def test_filter_lambda(self, g):
        names = g.V().values("name").filter_(lambda n: n.startswith("m")).toList()
        assert names == ["marko"]

    def test_filter_traversal(self, g):
        creators = g.V().filter_(__.out("created")).values("name").toSet()
        assert creators == {"marko", "josh", "peter"}

    def test_not_traversal(self, g):
        non_creators = g.V().hasLabel("person").not_(__.out("created")).values("name").toList()
        assert non_creators == ["vadas"]

    def test_where(self, g):
        assert g.V().where(__.in_("knows")).count().next() == 2

    def test_order_by_property(self, g):
        names = g.V().hasLabel("person").order().by("age").values("name").toList()
        assert names == ["vadas", "marko", "josh", "peter"]

    def test_order_desc(self, g):
        ages = g.V().hasLabel("person").values("age").order().by(None, "desc").toList()
        assert ages == [35, 32, 29, 27]


class TestTerminals:
    def test_next_raises_on_empty(self, g):
        with pytest.raises(TraversalError):
            g.V(99).next()

    def test_trynext(self, g):
        assert g.V(99).tryNext() is None
        assert g.V(1).tryNext() is not None

    def test_hasnext(self, g):
        traversal = g.V(1)
        assert traversal.hasNext() is True
        assert traversal.next().id == 1

    def test_iterate_drains(self, g):
        g.V().store("x").iterate()

    def test_explain_lists_steps(self, g):
        text = g.V().has("name", "x").out().compile().explain()
        assert "GraphStep" in text

    def test_traversal_not_extendable_after_execution(self, g):
        traversal = g.V()
        traversal.toList()
        with pytest.raises(TraversalError):
            traversal.out()
