"""``repro.graph`` — the property graph model and Gremlin-style
traversal engine (the reproduction's TinkerPop substitute).

Public surface::

    from repro.graph import GraphTraversalSource, InMemoryGraph, P, __

    g = GraphTraversalSource(InMemoryGraph())
    g.V().hasLabel('person').out('knows').values('name').toList()
"""

from .errors import ElementNotFoundError, GraphError, GremlinSyntaxError, TraversalError
from .memory import InMemoryGraph
from .model import Direction, Edge, GraphProvider, Pushdown, Vertex
from .predicates import P, TextP
from .strategy import StrategyRegistry, TraversalStrategy
from .traversal import GraphTraversalSource, Traversal, __

__all__ = [
    "GraphTraversalSource",
    "Traversal",
    "__",
    "P",
    "TextP",
    "Vertex",
    "Edge",
    "Direction",
    "Pushdown",
    "GraphProvider",
    "InMemoryGraph",
    "TraversalStrategy",
    "StrategyRegistry",
    "GraphError",
    "GremlinSyntaxError",
    "TraversalError",
    "ElementNotFoundError",
]
