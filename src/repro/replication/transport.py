"""Simulated in-process transport with seeded network faults.

The replication protocol is deliberately *pull-based and threadless*:
the cluster owns a :class:`SimulatedTransport` whose virtual clock only
moves when ``advance()`` is called (one "pump round").  Every message —
replica fetches and primary frame batches alike — takes at least one
tick to arrive, so a full fetch → reply → apply cycle costs two rounds
and an ack becomes visible to the primary on the third.  Determinism
falls out for free: same seed, same send sequence, same delivery
schedule, which is what makes the network-chaos battery reproducible.

Faults are decided per *send* by a :class:`NetworkFaultInjector`
(mirroring the statement-level :class:`~repro.resilience.faults
.FaultInjector` idiom: seeded rng, bounded windows, per-kind stats):

* **drop** — the message never arrives,
* **duplicate** — two copies arrive, possibly with different delays,
* **delay** — delivery is pushed several ticks out,
* **reorder** — messages due in the same round are shuffled,
* **partition** — seeded or scripted tick windows during which traffic
  between (a pair of, or all) nodes is dropped,
* **torn frame** — a ``frames`` batch arrives with the last frame's
  bytes truncated, exercising the replica's CRC/length framing checks.

The protocol must converge under every combination because fetches are
idempotent (a fetch re-states ``from_seq``; re-served frames below a
replica's ``next_seq`` are skipped) and acks are cumulative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class PartitionWindow:
    """Traffic between ``a`` and ``b`` (both ``None`` = all pairs) is
    dropped while ``start <= tick < end``."""

    start: int
    end: int
    a: str | None = None
    b: str | None = None

    def blocks(self, tick: int, src: str, dst: str) -> bool:
        if not (self.start <= tick < self.end):
            return False
        if self.a is None and self.b is None:
            return True
        return {self.a, self.b} == {src, dst}


class NetworkFaultInjector:
    """Seeded per-send fault decisions for :class:`SimulatedTransport`.

    ::

        net = NetworkFaultInjector(seed=7, drop=0.1, duplicate=0.05,
                                   delay=0.2, max_delay=4, reorder=0.3,
                                   torn=0.05)
        net.partition(start=10, end=25)            # total partition
        net.partition(start=40, end=50, a="primary", b="replica-0")

    Rates are independent probabilities consulted in a fixed order
    (partition → drop → torn → duplicate → delay) so a given seed
    always yields the same schedule.  ``heal()`` clears partitions —
    chaos sweeps end with a healed network so convergence is possible.
    """

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        max_delay: int = 4,
        reorder: float = 0.0,
        torn: float = 0.0,
    ):
        self.rng = random.Random(seed)
        self.seed = seed
        self.drop_rate = drop
        self.duplicate_rate = duplicate
        self.delay_rate = delay
        self.max_delay = max(1, max_delay)
        self.reorder_rate = reorder
        self.torn_rate = torn
        self.partitions: list[PartitionWindow] = []
        # Per-kind fire counts (the chaos battery asserts these against
        # transport stats so a sweep that injected nothing is caught).
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.torn = 0
        self.partitioned = 0

    def partition(
        self, start: int, end: int, a: str | None = None, b: str | None = None
    ) -> PartitionWindow:
        window = PartitionWindow(start, end, a, b)
        self.partitions.append(window)
        return window

    def heal(self) -> None:
        self.partitions.clear()

    # -- transport hooks -----------------------------------------------------

    def on_send(
        self, tick: int, src: str, dst: str, msg: dict[str, Any]
    ) -> list[tuple[int, dict[str, Any]]]:
        """Decide the fate of one send; returns ``(extra_delay, msg)``
        deliveries (empty = dropped)."""
        for window in self.partitions:
            if window.blocks(tick, src, dst):
                self.partitioned += 1
                self.dropped += 1
                return []
        if self.drop_rate and self.rng.random() < self.drop_rate:
            self.dropped += 1
            return []
        if (
            self.torn_rate
            and msg.get("kind") == "frames"
            and msg.get("frames")
            and self.rng.random() < self.torn_rate
        ):
            msg = self._tear(msg)
            self.torn += 1
        deliveries = [(0, msg)]
        if self.duplicate_rate and self.rng.random() < self.duplicate_rate:
            self.duplicated += 1
            deliveries.append((self.rng.randrange(self.max_delay), dict(msg)))
        if self.delay_rate and self.rng.random() < self.delay_rate:
            self.delayed += 1
            deliveries = [
                (extra + 1 + self.rng.randrange(self.max_delay), m)
                for extra, m in deliveries
            ]
        return deliveries

    def on_deliver(self, due: list["_InFlight"]) -> list["_InFlight"]:
        """Optionally shuffle the messages due in one round."""
        if len(due) > 1 and self.reorder_rate and self.rng.random() < self.reorder_rate:
            self.reordered += 1
            shuffled = list(due)
            self.rng.shuffle(shuffled)
            return shuffled
        return due

    def _tear(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Truncate the last frame of a ``frames`` batch mid-bytes, the
        wire analogue of ``wal.mid_record``'s torn tail."""
        frames = list(msg["frames"])
        last = frames[-1]
        frames[-1] = last[: max(1, len(last) // 2)]
        torn_msg = dict(msg)
        torn_msg["frames"] = frames
        torn_msg["torn"] = True
        return torn_msg

    def stats(self) -> dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "torn": self.torn,
            "partitioned": self.partitioned,
        }

    def __repr__(self) -> str:
        return f"NetworkFaultInjector(seed={self.seed}, {self.stats()})"


@dataclass
class _InFlight:
    """One scheduled delivery; ``order`` breaks ties deterministically."""

    due_tick: int
    order: int
    src: str
    dst: str
    msg: dict[str, Any]


class SimulatedTransport:
    """Tick-driven message fabric between named nodes.

    ``send`` schedules (subject to the fault injector); ``advance``
    moves the clock one tick and hands every due message to the
    receiver callback registered for its destination.  Undeliverable
    messages (destination never registered, or unregistered after a
    failover detaches a node) are counted and dropped — exactly what a
    real network does with packets for a dead host.
    """

    def __init__(self, injector: NetworkFaultInjector | None = None):
        self.injector = injector or NetworkFaultInjector()
        self.tick = 0
        self._order = 0
        self._inflight: list[_InFlight] = []
        self._receivers: dict[str, Callable[[str, dict[str, Any]], None]] = {}
        self.sent = 0
        self.delivered = 0
        self.undeliverable = 0

    def register(self, node: str, receive: Callable[[str, dict[str, Any]], None]) -> None:
        self._receivers[node] = receive

    def unregister(self, node: str) -> None:
        self._receivers.pop(node, None)

    def send(self, src: str, dst: str, msg: dict[str, Any]) -> None:
        self.sent += 1
        for extra_delay, delivered_msg in self.injector.on_send(
            self.tick, src, dst, msg
        ):
            self._order += 1
            self._inflight.append(
                _InFlight(
                    # Every message takes at least one tick.
                    due_tick=self.tick + 1 + extra_delay,
                    order=self._order,
                    src=src,
                    dst=dst,
                    msg=delivered_msg,
                )
            )

    def advance(self) -> int:
        """One pump round: move the clock, deliver everything due.
        Returns the number of messages delivered."""
        self.tick += 1
        due = [m for m in self._inflight if m.due_tick <= self.tick]
        if not due:
            return 0
        self._inflight = [m for m in self._inflight if m.due_tick > self.tick]
        due.sort(key=lambda m: (m.due_tick, m.order))
        count = 0
        for inflight in self.injector.on_deliver(due):
            receive = self._receivers.get(inflight.dst)
            if receive is None:
                self.undeliverable += 1
                continue
            receive(inflight.src, inflight.msg)
            self.delivered += 1
            count += 1
        return count

    def pending(self) -> int:
        return len(self._inflight)

    def drain(self, rounds: int = 64) -> None:
        """Advance until nothing is in flight (bounded by ``rounds``)."""
        for _ in range(rounds):
            if not self._inflight:
                return
            self.advance()

    def stats(self) -> dict[str, Any]:
        return {
            "tick": self.tick,
            "sent": self.sent,
            "delivered": self.delivered,
            "undeliverable": self.undeliverable,
            "pending": len(self._inflight),
            **self.injector.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"SimulatedTransport(tick={self.tick}, sent={self.sent}, "
            f"pending={len(self._inflight)})"
        )


def chaos_schedule(seed: int) -> NetworkFaultInjector:
    """Build the seeded chaos injector used by the network-fault sweeps:
    moderate rates of every fault kind plus one seeded partition window,
    all derived from ``seed`` so each sweep case is a distinct schedule."""
    rng = random.Random(seed * 2654435761 % (2**32))
    injector = NetworkFaultInjector(
        seed=seed,
        drop=0.05 + rng.random() * 0.15,
        duplicate=0.05 + rng.random() * 0.10,
        delay=0.10 + rng.random() * 0.20,
        max_delay=2 + rng.randrange(4),
        reorder=0.10 + rng.random() * 0.30,
        torn=0.03 + rng.random() * 0.07,
    )
    start = 5 + rng.randrange(20)
    injector.partition(start=start, end=start + 3 + rng.randrange(10))
    return injector
