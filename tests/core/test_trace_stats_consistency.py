"""Trace events and stats() counters are two views of the same program
points — every counter increment emits a matching event at the same
site.  These tests pin that 1:1 invariant on the paper's §6.3
data-dependent optimizations using the Figure 2 healthcare graph:
fixed-label elimination (``label_values``), prefixed-id table pinning
(``prefixed_ids``), and vertex-from-edge materialization.

Also the reset_stats() regression: after a reset, *every* counter —
including the prepared-statement cache counters that the pre-registry
implementation missed — reads zero and the trace buffer is empty.
"""

from __future__ import annotations

import pytest

from repro.obs import tracing


@pytest.fixture()
def traced(paper_graph):
    paper_graph.reset_stats()
    recorder = paper_graph.enable_tracing()
    yield paper_graph, recorder
    paper_graph.disable_tracing()


def assert_counters_match_events(graph, recorder):
    stats = graph.stats()
    assert stats["tables_eliminated"] == recorder.count(tracing.TABLE_ELIMINATED)
    # sql_queries counts every issued statement — selects AND the
    # inserts that addV/addE translate to — so match all kinds.
    assert stats["sql_queries"] == recorder.count(tracing.SQL_ISSUED)
    assert stats["vertex_table_queries"] == recorder.count(tracing.TABLE_QUERIED, kind="vertex")
    assert stats["edge_table_queries"] == recorder.count(tracing.TABLE_QUERIED, kind="edge")
    assert stats["vertices_from_edges"] == recorder.count(tracing.VERTEX_FROM_EDGE)
    assert stats["lazy_vertices"] == recorder.count(tracing.VERTEX_LAZY)
    assert_parallel_counters_match_events(graph, recorder)
    assert_resilience_counters_match_events(graph, recorder)
    assert_cache_counters_match_events(graph, recorder)
    assert_durability_counters_match_events(graph, recorder)
    assert_service_counters_match_events(graph, recorder)
    assert_analytics_counters_match_events(graph, recorder)
    assert_replication_counters_match_events(graph, recorder)


def assert_parallel_counters_match_events(graph, recorder):
    """The parallel-execution counters keep the 1:1 invariant: one
    ``sql.batched`` event per batched statement, ``batch.size`` is the
    sum of the events' ``size`` attributes, one ``fanout.parallel``
    event per pool dispatch."""
    stats = graph.stats()
    batched = recorder.named(tracing.SQL_BATCHED)
    assert stats["batched_statements"] == len(batched)
    assert stats["batched_ids"] == sum(e.get("size", 0) for e in batched)
    assert stats["parallel_fanouts"] == recorder.count(tracing.FANOUT_PARALLEL)


def assert_resilience_counters_match_events(graph, recorder):
    """Every resilience counter has a trace event at the same site."""
    stats = graph.stats()
    assert stats["sql_errors"] == recorder.count(tracing.SQL_ERROR)
    assert stats["lock_waits"] == recorder.count(tracing.LOCK_WAIT)
    assert stats["deadlocks"] == recorder.count(tracing.DEADLOCK_DETECTED)
    assert stats["retry_attempts"] == recorder.count(tracing.RETRY_ATTEMPT)
    assert stats["retry_exhausted"] == recorder.count(tracing.RETRY_EXHAUSTED)
    assert stats["budget_exceeded"] == recorder.count(tracing.BUDGET_EXCEEDED)
    assert stats["faults_injected"] == recorder.count(tracing.FAULT_INJECTED)


def assert_cache_counters_match_events(graph, recorder):
    """The graph read cache keeps the 1:1 invariant too — with the
    cache off every counter and event count is identically zero, so
    the same assertions pin both configurations."""
    stats = graph.stats()
    assert stats["cache_hits"] == recorder.count(tracing.CACHE_HIT)
    assert stats["cache_misses"] == recorder.count(tracing.CACHE_MISS)
    assert stats["cache_evictions"] == recorder.count(tracing.CACHE_EVICT)
    assert stats["cache_invalidations"] == recorder.count(tracing.CACHE_INVALIDATE)
    assert stats["cache_bypass_txn"] == recorder.count(tracing.CACHE_BYPASS_TXN)


def assert_durability_counters_match_events(graph, recorder):
    """The WAL and recovery counters keep the 1:1 invariant — with no
    durability attached every pair is identically zero, so the same
    assertions pin both configurations."""
    stats = graph.stats()
    assert stats["wal_appends"] == recorder.count(tracing.WAL_APPEND)
    assert stats["wal_flushes"] == recorder.count(tracing.WAL_FLUSH)
    assert stats["checkpoints_written"] == recorder.count(tracing.CHECKPOINT_WRITTEN)
    assert stats["recovery_replayed"] == recorder.count(tracing.RECOVERY_REPLAYED)
    assert stats["recovery_discarded"] == recorder.count(tracing.RECOVERY_DISCARDED)


def assert_service_counters_match_events(graph, recorder):
    """The service-layer admission counters keep the 1:1 invariant —
    outside a GraphService every pair is identically zero, so the same
    assertions pin standalone graphs and multiplexed sessions alike.
    ``service.queue_depth`` is a histogram whose every observation is
    mirrored by one ``service.queued`` event."""
    stats = graph.stats()
    assert stats["service_admitted"] == recorder.count(tracing.SERVICE_ADMITTED)
    assert stats["service_rejected"] == recorder.count(tracing.SERVICE_REJECTED)
    assert stats["service_shed"] == recorder.count(tracing.SERVICE_SHED)
    assert stats["service_sessions_opened"] == recorder.count(
        tracing.SERVICE_SESSION_OPEN
    )
    assert stats["service_sessions_closed"] == recorder.count(
        tracing.SERVICE_SESSION_CLOSE
    )
    from repro.obs import metrics as M

    depth = graph.registry.histogram(M.SERVICE_QUEUE_DEPTH)
    assert depth.count == recorder.count(tracing.SERVICE_QUEUED)


def assert_analytics_counters_match_events(graph, recorder):
    """The bulk-analytics counters keep the 1:1 invariant — one
    ``analytics.step`` event per step counter increment, one
    ``analytics.converged`` event per natural convergence, and the
    ``frontier.size`` histogram mirrored observation-for-event (the
    same shape as ``service.queue_depth``).  Outside analytics runs
    every pair is identically zero."""
    stats = graph.stats()
    assert stats["analytics_steps"] == recorder.count(tracing.ANALYTICS_STEP)
    assert stats["analytics_converged"] == recorder.count(
        tracing.ANALYTICS_CONVERGED
    )
    from repro.obs import metrics as M

    frontier = graph.registry.histogram(M.FRONTIER_SIZE)
    assert frontier.count == recorder.count(tracing.FRONTIER_SIZE)
    sizes = [e.get("size") for e in recorder.named(tracing.FRONTIER_SIZE)]
    if sizes:
        assert frontier.max == max(sizes)


def assert_replication_counters_match_events(graph, recorder):
    """The replication / failover counters keep the 1:1 invariant —
    one ``repl.ship`` event per shipped-batch counter increment, one
    ``repl.apply``/``repl.ack``/``repl.fenced``/``repl.retransmit``/
    ``repl.read.fallthrough``/``failover.promote`` event per counter,
    and the ``repl.lag`` histogram mirrored observation-for-event.
    Outside a replicated cluster every pair is identically zero."""
    stats = graph.stats()
    assert stats["repl_shipped"] == recorder.count(tracing.REPL_SHIP)
    assert stats["repl_applied"] == recorder.count(tracing.REPL_APPLY)
    assert stats["repl_acked"] == recorder.count(tracing.REPL_ACK)
    assert stats["repl_fenced"] == recorder.count(tracing.REPL_FENCED)
    assert stats["repl_retransmits"] == recorder.count(tracing.REPL_RETRANSMIT)
    assert stats["repl_read_fallthrough"] == recorder.count(
        tracing.REPL_READ_FALLTHROUGH
    )
    assert stats["failover_promotions"] == recorder.count(
        tracing.FAILOVER_PROMOTE
    )
    assert stats["repl_lag_samples"] == recorder.count(tracing.REPL_LAG)


def test_analytics_counters_match_events(traced):
    graph, recorder = traced
    an = graph.analytics()
    an.bfs("patient::1", direction="both")
    an.wcc()
    an.pagerank(max_iterations=3)
    stats = graph.stats()
    assert stats["analytics_steps"] > 0
    assert stats["analytics_converged"] == 2  # bfs + wcc; pagerank was cut off
    assert stats["frontier_samples"] == stats["analytics_steps"]
    assert_counters_match_events(graph, recorder)


def test_fixed_label_elimination_counters_match_events(traced):
    graph, recorder = traced
    g = graph.traversal()
    patients = g.V().hasLabel("patient").toList()
    assert patients
    # hasLabel('patient') prunes Disease via its fixed label — the
    # rule-tagged event and the per-rule counter must agree.
    by_rule = recorder.count(tracing.TABLE_ELIMINATED, rule="label_values")
    assert by_rule > 0
    assert graph.metrics()["structure.eliminated.label_values"] == by_rule
    assert_counters_match_events(graph, recorder)


def test_prefixed_id_pinning_counters_match_events(traced):
    graph, recorder = traced
    g = graph.traversal()
    # 'patient::1' decodes to the Patient table only — every other
    # vertex table is eliminated by the prefixed-id rule before any SQL.
    assert [v.id for v in g.V("patient::1").toList()] == ["patient::1"]
    assert recorder.count(tracing.TABLE_ELIMINATED, rule="prefixed_ids") > 0
    assert recorder.count(tracing.TABLE_QUERIED, kind="vertex") == 1
    assert_counters_match_events(graph, recorder)


def test_vertex_from_edge_counters_match_events(traced):
    graph, recorder = traced
    g = graph.traversal()
    diseases = g.V().hasLabel("patient").out("hasDisease").toList()
    assert diseases
    stats = graph.stats()
    assert stats["vertices_from_edges"] + stats["lazy_vertices"] > 0
    assert_counters_match_events(graph, recorder)


def test_every_event_rule_has_a_matching_counter(traced):
    graph, recorder = traced
    g = graph.traversal()
    g.V().hasLabel("patient").out("hasDisease").values("conceptName").toList()
    g.E().toList()
    metrics = graph.metrics()
    rules = {e.get("rule") for e in recorder.named(tracing.TABLE_ELIMINATED)}
    for rule in rules:
        assert metrics[f"structure.eliminated.{rule}"] == recorder.count(
            tracing.TABLE_ELIMINATED, rule=rule
        ), rule
    assert_counters_match_events(graph, recorder)


def test_sql_error_counters_match_events(traced):
    graph, recorder = traced
    from repro.relational import CatalogError

    with pytest.raises(CatalogError):
        graph.connection.execute("INSERT INTO NoSuchTable VALUES (1)")
    assert graph.stats()["sql_errors"] == 1
    event = recorder.named(tracing.SQL_ERROR)[0]
    assert event.get("error") == "CatalogError"
    assert event.get("statement") == "insert"
    assert_counters_match_events(graph, recorder)


def test_retry_and_fault_counters_match_events(paper_db):
    import random

    from repro.core import Db2Graph
    from repro.resilience import FaultInjector, RetryPolicy
    from tests.conftest import HEALTHCARE_TINY_OVERLAY

    graph = Db2Graph.open(
        paper_db,
        HEALTHCARE_TINY_OVERLAY,
        retry_policy=RetryPolicy(
            max_attempts=3, sleep=lambda _s: None, rng=random.Random(0)
        ),
    )
    graph.reset_stats()
    recorder = graph.enable_tracing()
    injector = FaultInjector(seed=9)
    injector.add("lock_timeout", table="HasDisease", times=2)
    paper_db.fault_injector = injector
    try:
        graph.traversal().V().hasLabel("patient").out("hasDisease").toList()
    finally:
        paper_db.fault_injector = None
    stats = graph.stats()
    assert stats["faults_injected"] == 2
    assert stats["retry_attempts"] == 2
    assert stats["sql_errors"] == 2  # each injected fault surfaced once
    assert_counters_match_events(graph, recorder)
    graph.disable_tracing()


def test_deadlock_counters_match_events(paper_graph):
    """Lock waits and deadlocks flow through the graph's registry too —
    one registry spans the graph layer and the engine under it."""
    import threading
    import time as _time

    graph = paper_graph
    database = graph.connection.database
    graph.reset_stats()
    recorder = graph.enable_tracing()

    c1, c2 = database.connect(), database.connect()
    c1.execute("BEGIN")
    c2.execute("BEGIN")
    c1.execute("INSERT INTO Patient VALUES (90, 'x', 'a', 1)")
    c2.execute("INSERT INTO Disease VALUES (90, 'X90', 'x')")
    txn1_id = c1.current_txn.txn_id

    thread = threading.Thread(
        target=lambda: c1.execute("INSERT INTO Disease VALUES (91, 'X91', 'y')")
    )
    thread.start()
    deadline = _time.monotonic() + 5.0
    while txn1_id not in database.lock_manager.waiting_owners():
        assert _time.monotonic() < deadline
        _time.sleep(0.001)
    from repro.relational import DeadlockError

    with pytest.raises(DeadlockError):
        c2.execute("INSERT INTO Patient VALUES (91, 'y', 'b', 2)")
    c2.rollback()
    thread.join(timeout=5.0)
    c1.rollback()

    stats = graph.stats()
    assert stats["deadlocks"] == 1
    assert stats["lock_waits"] >= 2
    assert_resilience_counters_match_events(graph, recorder)
    graph.disable_tracing()


def test_cache_counters_match_events(paper_db):
    """With the read cache on, hits/misses/invalidations/bypasses all
    reconcile 1:1 with their trace events across repeated traversals,
    DML-driven invalidation, and an explicit-transaction bypass."""
    from repro.core import Db2Graph
    from tests.conftest import HEALTHCARE_TINY_OVERLAY

    graph = Db2Graph.open(paper_db, HEALTHCARE_TINY_OVERLAY, cache=True)
    graph.reset_stats()
    recorder = graph.enable_tracing()
    try:
        g = graph.traversal()
        g.V().hasLabel("patient").out("hasDisease").toList()
        g.V().hasLabel("patient").out("hasDisease").toList()  # hits
        stats = graph.stats()
        assert stats["cache_hits"] > 0
        assert stats["cache_misses"] > 0

        # DML commit bumps epochs: one invalidation counter increment
        # and one cache.invalidate event per written table.
        paper_db.execute("INSERT INTO Patient VALUES (80, 'new', 'addr', 1)")
        assert graph.stats()["cache_invalidations"] == 1

        # An explicit transaction bypasses lookup and fill.
        conn = graph.connection
        conn.begin()
        try:
            graph.traversal().V().hasLabel("patient").toList()
            assert graph.stats()["cache_bypass_txn"] > 0
        finally:
            conn.rollback()

        assert_counters_match_events(graph, recorder)
    finally:
        graph.disable_tracing()
        graph.close()


def test_durability_counters_match_events(tmp_path):
    """A WAL-backed graph keeps the 1:1 invariant across DML commits
    (appends + flushes) and an explicit checkpoint.  Recovery counters
    are exercised at the Database level in tests/durability — Db2Graph
    binds a fresh registry at open, after recovery already ran."""
    from repro.core import Db2Graph
    from repro.durability import SimulatedCrash
    from tests.conftest import HEALTHCARE_TINY_OVERLAY

    sim = SimulatedCrash(dir=str(tmp_path / "wal"))
    database = sim.open()
    database.execute(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, "
        "address VARCHAR, subscriptionID BIGINT)"
    )
    database.execute(
        "CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, "
        "conceptName VARCHAR)"
    )
    database.execute(
        "CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR)"
    )
    database.execute(
        "CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR)"
    )
    graph = Db2Graph.open(database, HEALTHCARE_TINY_OVERLAY)
    graph.reset_stats()
    recorder = graph.enable_tracing()
    try:
        g = graph.traversal()
        g.addV("patient").property("patientID", 1).property("name", "ada").property(
            "address", "x"
        ).property("subscriptionID", 100).toList()
        database.execute("INSERT INTO Disease VALUES (1, 'A00', 'cholera')")
        database.execute("INSERT INTO HasDisease VALUES (1, 1, 'acute')")
        database.checkpoint()
        database.execute("DELETE FROM HasDisease WHERE diseaseID = 1")

        stats = graph.stats()
        assert stats["wal_appends"] > 0
        assert stats["wal_flushes"] > 0
        assert stats["checkpoints_written"] == 1
        assert_counters_match_events(graph, recorder)
    finally:
        graph.disable_tracing()
        graph.close()
        database.close()


def test_reset_stats_zeroes_everything(paper_graph):
    graph = paper_graph
    recorder = graph.enable_tracing()
    g = graph.traversal()
    g.V().hasLabel("patient").out("hasDisease").toList()
    g.V("patient::1").values("name").toList()
    before = graph.stats()
    assert before["sql_queries"] > 0
    assert len(recorder) > 0

    graph.reset_stats()
    after = graph.stats()
    # Every int counter reads zero; the structured sub-reports
    # (recovery_report, replication topology) are state, not counters,
    # and are None here (unreplicated in-memory graph).
    ints = {k: v for k, v in after.items() if isinstance(v, int)}
    assert ints == {k: 0 for k in ints}, after
    assert after["recovery_report"] is None
    assert after["replication"] is None
    assert len(recorder) == 0
    # the per-rule breakdown resets too
    assert all(v == 0 for v in graph.metrics().values() if isinstance(v, int))
    graph.disable_tracing()


def test_counters_still_count_after_reset(paper_graph):
    graph = paper_graph
    graph.reset_stats()
    recorder = graph.enable_tracing()
    graph.traversal().V().hasLabel("patient").toList()
    assert graph.stats()["sql_queries"] > 0
    assert_counters_match_events(graph, recorder)
    graph.disable_tracing()


def test_parallel_fanout_counters_match_events(paper_db):
    """A parallel graph's pool dispatches and batched statements keep
    the 1:1 counter/event invariant, and every batched statement event
    carries a stable statement id that also appears on ``sql.issued``
    (so explain()/profile() can stitch interleaved worker events)."""
    from repro.core import Db2Graph
    from tests.conftest import HEALTHCARE_TINY_OVERLAY

    graph = Db2Graph.open(paper_db, HEALTHCARE_TINY_OVERLAY, parallelism=4, batch_size=2)
    recorder = graph.enable_tracing()
    try:
        g = graph.traversal()
        g.V().hasLabel("patient").out("hasDisease").toList()
        g.V().both().toList()
        stats = graph.stats()
        assert stats["parallel_fanouts"] > 0
        assert stats["batched_statements"] > 0
        assert_counters_match_events(graph, recorder)
        issued_ids = {e.get("statement_id") for e in recorder.named(tracing.SQL_ISSUED)}
        for event in recorder.named(tracing.SQL_BATCHED):
            assert event.get("statement_id") in issued_ids
    finally:
        graph.disable_tracing()
        graph.close()


# ---------------------------------------------------------------------------
# Concurrency stress: mixed traversals + writers against one Database
# ---------------------------------------------------------------------------


@pytest.mark.stress
@pytest.mark.timeout(120)
def test_concurrent_traversals_and_writers_reconcile(paper_db):
    """N reader threads run parallel fan-out traversals while M writer
    threads increment a tally and insert rows on the same Database.
    Afterwards: no lost updates, a clean lock table, no dropped trace
    events, and every counter still reconciles 1:1 with its events."""
    import threading

    from repro.core import Db2Graph
    from repro.relational import DeadlockError, LockTimeoutError
    from tests.conftest import HEALTHCARE_TINY_OVERLAY

    database = paper_db
    database.execute("CREATE TABLE tally (id INT PRIMARY KEY, n INT)")
    database.execute("INSERT INTO tally VALUES (1, 0)")
    initial_patients = database.execute("SELECT COUNT(*) FROM Patient").rows[0][0]

    graph = Db2Graph.open(database, HEALTHCARE_TINY_OVERLAY, parallelism=4, batch_size=4)
    recorder = graph.enable_tracing()

    n_readers, n_writers, rounds = 4, 3, 20
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_readers + n_writers)

    def reader():
        try:
            barrier.wait()
            for _ in range(rounds):
                g = graph.traversal()
                names = g.V().hasLabel("patient").out("hasDisease").values("conceptName").toList()
                assert names
                assert g.V().hasLabel("patient").outE().count().next() >= 3
                # both() fans out over every edge table in both
                # directions — the step that actually hits the pool.
                assert g.V().both().count().next() > 0
        except BaseException as exc:  # noqa: BLE001 — surfaced after join
            errors.append(exc)

    def writer(offset):
        try:
            conn = database.connect()
            barrier.wait()
            for i in range(rounds):
                for _attempt in range(50):
                    try:
                        conn.execute("BEGIN")
                        conn.execute("UPDATE tally SET n = n + 1 WHERE id = 1")
                        conn.execute(
                            "INSERT INTO Patient VALUES (?, 'p', 'addr', 1)",
                            [1000 + offset * rounds + i],
                        )
                        conn.commit()
                        break
                    except (DeadlockError, LockTimeoutError):
                        conn.rollback()
                else:
                    raise AssertionError("writer starved after 50 retries")
        except BaseException as exc:  # noqa: BLE001 — surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(n_readers)]
    threads += [threading.Thread(target=writer, args=(k,)) for k in range(n_writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90.0)
        assert not thread.is_alive(), "stress thread wedged"
    try:
        assert not errors, errors[:3]

        # No lost updates: every increment and every insert landed.
        assert database.execute("SELECT n FROM tally").rows[0][0] == n_writers * rounds
        patients = database.execute("SELECT COUNT(*) FROM Patient").rows[0][0]
        assert patients == initial_patients + n_writers * rounds

        # Clean lock table: nothing waiting, nothing held.
        assert database.lock_manager.is_clean()

        # Counter/event reconciliation survives the interleaving.
        assert recorder.dropped == 0
        assert graph.stats()["parallel_fanouts"] > 0
        assert_counters_match_events(graph, recorder)
    finally:
        graph.disable_tracing()
        graph.close()


@pytest.mark.stress
@pytest.mark.timeout(60)
def test_prepared_cache_counters_exact_under_hammer(paper_db):
    """Regression for the racy prepared-hit check: hammer one query
    from many threads; hits must equal executions minus the single
    compile, and the statement-cache hit/miss tally must equal the
    number of lookups — no increments lost to races."""
    import threading

    from repro.core import Db2Graph
    from tests.conftest import HEALTHCARE_TINY_OVERLAY

    # cache=False: the hammer arithmetic requires every round to issue
    # SQL; read-cache hits would serve rounds without a statement.
    graph = Db2Graph.open(
        paper_db, HEALTHCARE_TINY_OVERLAY, parallelism=4, batch_size=8, cache=False
    )
    # Prewarm so the hammer sees a fully-populated cache: every lookup
    # after this is a hit and the arithmetic below is exact.
    graph.traversal().V().hasLabel("patient").toList()
    graph.reset_stats()
    recorder = graph.enable_tracing()

    n_threads, rounds = 8, 25
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def hammer():
        try:
            barrier.wait()
            for _ in range(rounds):
                assert graph.traversal().V().hasLabel("patient").toList()
        except BaseException as exc:  # noqa: BLE001 — surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=45.0)
        assert not thread.is_alive(), "hammer thread wedged"
    try:
        assert not errors, errors[:3]
        stats = graph.stats()
        issued = recorder.count(tracing.SQL_ISSUED, kind="select")
        assert issued == n_threads * rounds
        # Prewarmed: every execution reuses the compiled plan.
        assert stats["prepared_hits"] == issued
        assert stats["statement_cache_hits"] == issued
        assert stats["statement_cache_misses"] == 0
        assert_counters_match_events(graph, recorder)
    finally:
        graph.disable_tracing()
        graph.close()


@pytest.mark.service
@pytest.mark.stress
@pytest.mark.timeout(120)
def test_service_counters_reconcile_under_multiplexing(paper_db):
    """The service.* counters keep the 1:1 invariant under real
    multiplexing: several sessions submitting concurrently, forced
    rejections (tiny queue), and deliberate failures, all reconciled
    through a session's graph handle (the registry and recorder are
    shared service-wide, so any handle sees the service totals)."""
    import threading

    from repro.service import (
        AdmissionRejectedError,
        GraphService,
        ServiceConfig,
    )
    from tests.conftest import HEALTHCARE_TINY_OVERLAY

    service = GraphService(
        paper_db, HEALTHCARE_TINY_OVERLAY, ServiceConfig(workers=2, queue_depth=4)
    )
    try:
        recorder = service.enable_tracing()
        sessions = [service.open_session() for _ in range(4)]
        errors: list[BaseException] = []
        rejections = [0]
        lock = threading.Lock()

        def client(session, rounds=25):
            try:
                for i in range(rounds):
                    try:
                        assert session.run(
                            lambda s: s.g.V().hasLabel("patient").count().next(),
                            timeout=30,
                        ) >= 3
                    except AdmissionRejectedError:
                        with lock:
                            rejections[0] += 1
            except BaseException as exc:  # noqa: BLE001 — surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(s,)) for s in sessions
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "client thread wedged"
        assert not errors, errors[:3]
        for session in sessions[:2]:
            session.close(timeout=10)
        graph = sessions[2].graph
        stats = graph.stats()
        assert stats["service_sessions_opened"] == 4
        assert stats["service_sessions_closed"] == 2
        assert stats["service_admitted"] + rejections[0] == 4 * 25
        assert stats["service_rejected"] == rejections[0]
        assert_counters_match_events(graph, recorder)
    finally:
        service.shutdown(timeout=15)
