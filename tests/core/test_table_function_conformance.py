"""graphQuery table-function conformance (paper §4 meets §5).

The engine's ``graphQuery`` runs Gremlin through the overlay (SQL
translation); a shadow database registers a ``graphQuery`` backed by
the independent in-memory oracle instead.  Running the *same* SQL —
projections, aggregates, GROUP BY, joins back against base tables —
on both connections must return identical row multisets for every
generated schema/overlay.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Db2Graph
from repro.core.table_function import make_graph_query_function
from repro.graph import GraphTraversalSource
from repro.graph.errors import GraphError
from repro.graph.gremlin_parser import evaluate_gremlin
from repro.testing import ScenarioInvalid, generate_scenario
from repro.testing.generate import random_graph_sql
from repro.testing.oracle import OracleError, materialize_oracle, scenario_vocab
from repro.testing.scenario import build_database, resolve_overlay


class OracleRunner:
    """Duck-typed Db2Graph: executes Gremlin on the oracle graph."""

    def __init__(self, g: GraphTraversalSource):
        self._g = g

    def execute(self, script: str):
        return evaluate_gremlin(self._g, script)


def open_pair(seed: int):
    """(engine connection, oracle-backed shadow connection) over the
    same generated scenario, both with graphQuery registered."""
    scenario = generate_scenario(seed, workload_size=0)
    db = build_database(scenario)
    overlay = resolve_overlay(scenario, db)
    oracle = materialize_oracle(db, overlay)
    shadow_db = build_database(scenario)
    shadow_db.register_table_function(
        "graphQuery", make_graph_query_function(OracleRunner(GraphTraversalSource(oracle)))
    )
    graph = Db2Graph.open(db, overlay)
    graph.register_table_function("graphQuery")
    return scenario, oracle, graph, shadow_db.connect("admin")


def rows(connection, sql):
    return sorted(connection.execute(sql).rows, key=repr)


SEEDS = [1, 3, 7, 12, 23]


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_graph_sql_matches_oracle(seed):
    try:
        scenario, oracle, graph, shadow = open_pair(seed)
    except (OracleError, ScenarioInvalid):
        pytest.skip("seed unrepresentable")
    try:
        vocab = scenario_vocab(oracle)
        rng = random.Random(seed)
        for _ in range(6):
            _tag, sql = random_graph_sql(rng, vocab)
            assert rows(graph.connection, sql) == rows(shadow, sql), sql
    finally:
        graph.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_count_round_trip(seed):
    """graphQuery('g.V().count().next()') equals the oracle's size."""
    try:
        scenario, oracle, graph, shadow = open_pair(seed)
    except (OracleError, ScenarioInvalid):
        pytest.skip("seed unrepresentable")
    try:
        sql = (
            "SELECT c0 FROM TABLE(graphQuery('gremlin', "
            "'g.V().count().next()')) AS t (c0 BIGINT)"
        )
        (engine_count,) = graph.connection.execute(sql).rows[0]
        assert engine_count == len(list(GraphTraversalSource(oracle).V().toList()))
        assert rows(graph.connection, sql) == rows(shadow, sql)
    finally:
        graph.close()


def test_graph_query_joins_base_table():
    """The paper's synergy pattern: graph results joined back against a
    relational table in one statement."""
    scenario, oracle, graph, shadow = open_pair(1)
    try:
        table = scenario.tables[0].name
        sql = (
            f"SELECT COUNT(*) FROM {table} AS b, "
            "TABLE(graphQuery('gremlin', 'g.V().id()')) AS t (c0 VARCHAR)"
        )
        assert rows(graph.connection, sql) == rows(shadow, sql)
    finally:
        graph.close()


def test_rejects_unknown_language():
    scenario, oracle, graph, shadow = open_pair(1)
    try:
        sql = "SELECT c0 FROM TABLE(graphQuery('cypher', 'g.V()')) AS t (c0 VARCHAR)"
        with pytest.raises(Exception) as excinfo:
            graph.connection.execute(sql)
        assert "gremlin" in str(excinfo.value)
    finally:
        graph.close()


def test_reregistration_is_overwrite_safe():
    scenario, oracle, graph, shadow = open_pair(1)
    try:
        graph.register_table_function("graphQuery")
        graph.register_table_function("graphQuery")
        sql = (
            "SELECT COUNT(*) FROM TABLE(graphQuery('gremlin', 'g.V()')) "
            "AS t (c0 VARCHAR, c1 VARCHAR)"
        )
        assert rows(graph.connection, sql) == rows(shadow, sql)
    finally:
        graph.close()
