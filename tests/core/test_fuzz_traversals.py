"""Randomized differential testing: hypothesis composes random (but
type-correct) traversal chains and runs them against both the overlay
engine (Gremlin -> SQL) and the in-memory reference graph over
identical data.  Any divergence is a bug in the translation layer.

Two generators feed this file:

* the local chain composer below runs long random chains over one
  fixed two-label schema (deep chains, shallow schema);
* ``repro.testing`` draws the *schema and overlay* themselves from the
  full §5 config space — prefixed/composite ids, column labels,
  implicit edge ids, dual and star tables, views, AutoOverlay — and
  replays a whole generated workload per seed (shallow chains, deep
  schema space).

Order-sensitive steps (limit, range) are excluded: Gremlin guarantees
no iteration order, so backends may legitimately differ there.  Both
the fully optimized overlay engine and the strategy-free /
runtime-optimizations-off one are checked.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import Db2Graph, RuntimeOptimizations
from repro.graph import GraphTraversalSource, InMemoryGraph, P, TextP, __
from repro.relational import Database
from repro.testing import ScenarioInvalid, generate_scenario, run_scenario

LABELS = ["La", "Lb"]
EDGE_LABELS = ["Ea", "Eb"]


def build_engines():
    """A fixed, moderately tangled graph in both backends."""
    memory = InMemoryGraph()
    db = Database(enforce_foreign_keys=False)
    for label in LABELS:
        db.execute(f"CREATE TABLE v_{label} (id INT PRIMARY KEY, score INT, word VARCHAR)")
    for label in EDGE_LABELS:
        db.execute(f"CREATE TABLE e_{label} (src INT, dst INT, w INT)")

    n = 14
    for i in range(n):
        label = LABELS[i % 2]
        word = f"w{i % 5}x" if i % 3 else f"q{i}"
        score = i % 6 if i % 4 else None
        memory.add_vertex(i, label, {"score": score, "word": word})
        db.execute(f"INSERT INTO v_{label} VALUES (?, ?, ?)", [i, score, word])
    edges = [(i, (i * 5 + 2) % n, EDGE_LABELS[i % 2], i % 4) for i in range(n)]
    edges += [
        (i, (i * 3 + 7) % n, EDGE_LABELS[(i + 1) % 2], (i + 2) % 4)
        for i in range(0, n, 2)
    ]
    for src, dst, label, w in edges:
        memory.add_edge(label, src, dst, {"w": w})
        db.execute(f"INSERT INTO e_{label} VALUES (?, ?, ?)", [src, dst, w])

    overlay = {
        "v_tables": [
            {"table_name": f"v_{label}", "id": "id", "fix_label": True,
             "label": f"'{label}'", "properties": ["score", "word"]}
            for label in LABELS
        ],
        "e_tables": [
            {"table_name": f"e_{label}", "src_v": "src", "dst_v": "dst",
             "implicit_edge_id": True, "fix_label": True, "label": f"'{label}'",
             "properties": ["w"]}
            for label in EDGE_LABELS
        ],
    }
    return (
        GraphTraversalSource(memory),
        Db2Graph.open(db, overlay),
        Db2Graph.open(db, overlay, optimized=False,
                      runtime_opts=RuntimeOptimizations.all_off()),
    )


_ENGINES = None


def engines():
    global _ENGINES
    if _ENGINES is None:
        _ENGINES = build_engines()
    return _ENGINES


# ---------------------------------------------------------------------------
# Moves: (result_type, builder(traversal, operand), operand_strategy | None)
# ---------------------------------------------------------------------------

VERTEX_MOVES = [
    ("vertex", lambda t, v: t.out(v), st.sampled_from(EDGE_LABELS)),
    ("vertex", lambda t, v: t.in_(v), st.sampled_from(EDGE_LABELS)),
    ("vertex", lambda t, v: t.out(), None),
    ("vertex", lambda t, v: t.both(), None),
    ("edge", lambda t, v: t.outE(v), st.sampled_from(EDGE_LABELS)),
    ("edge", lambda t, v: t.inE(), None),
    ("vertex", lambda t, v: t.hasLabel(v), st.sampled_from(LABELS)),
    ("vertex", lambda t, v: t.has("score", P.gte(v)), st.integers(0, 6)),
    ("vertex", lambda t, v: t.has("score", P.within(v, v + 2)), st.integers(0, 5)),
    ("vertex", lambda t, v: t.has("word", TextP.startingWith(v)),
     st.sampled_from(["w", "q", "w1"])),
    ("vertex", lambda t, v: t.has("word", TextP.containing(v)),
     st.sampled_from(["x", "1", "zz"])),
    ("vertex", lambda t, v: t.hasNot("score"), None),
    ("vertex", lambda t, v: t.dedup(), None),
    ("vertex", lambda t, v: t.filter_(__.out()), None),
    ("vertex", lambda t, v: t.not_(__.outE(v)), st.sampled_from(EDGE_LABELS)),
    ("value", lambda t, v: t.values(v), st.sampled_from(["score", "word"])),
    ("value", lambda t, v: t.id_(), None),
    ("value", lambda t, v: t.label(), None),
    ("vertex", lambda t, v: t.union(__.out(), __.in_()), None),
    ("vertex", lambda t, v: t.repeat(__.out().dedup()).times(v), st.integers(1, 2)),
    ("vertex", lambda t, v: t.optional(__.out(v)), st.sampled_from(EDGE_LABELS)),
]

EDGE_MOVES = [
    ("vertex", lambda t, v: t.inV(), None),
    ("vertex", lambda t, v: t.outV(), None),
    ("edge", lambda t, v: t.has("w", P.lt(v)), st.integers(0, 4)),
    ("edge", lambda t, v: t.hasLabel(v), st.sampled_from(EDGE_LABELS)),
    ("edge", lambda t, v: t.dedup(), None),
    ("value", lambda t, v: t.values("w"), None),
    ("value", lambda t, v: t.label(), None),
    ("edge", lambda t, v: t.filter_(__.inV().has("score", P.gte(v))), st.integers(0, 5)),
]

VALUE_MOVES = [
    ("value", lambda t, v: t.dedup(), None),
]

TERMINALS = {
    "vertex": [lambda t: t.count(), lambda t: t.id_(), None],
    "edge": [lambda t: t.count(), None],
    "value": [lambda t: t.count(), None],
}

POOLS = {"vertex": VERTEX_MOVES, "edge": EDGE_MOVES, "value": VALUE_MOVES}


@st.composite
def chains(draw):
    """A recipe: start ids + [(type, move index, operand)] + terminal."""
    start_ids = draw(
        st.one_of(st.just(None), st.lists(st.integers(0, 15), min_size=1, max_size=3))
    )
    moves = []
    current = "vertex"
    for _ in range(draw(st.integers(0, 5))):
        pool = POOLS[current]
        index = draw(st.integers(0, len(pool) - 1))
        operand_strategy = pool[index][2]
        operand = draw(operand_strategy) if operand_strategy is not None else None
        moves.append((current, index, operand))
        current = pool[index][0]
    terminal_index = draw(st.integers(0, len(TERMINALS[current]) - 1))
    return start_ids, moves, current, terminal_index


def apply_chain(g, recipe):
    start_ids, moves, final_type, terminal_index = recipe
    traversal = g.V() if start_ids is None else g.V(*start_ids)
    for current, index, operand in moves:
        traversal = POOLS[current][index][1](traversal, operand)
    terminal = TERMINALS[final_type][terminal_index]
    if terminal is not None:
        traversal = terminal(traversal)
    return traversal.toList()


def normalize(results):
    from repro.graph import Edge, Vertex

    out = []
    for item in results:
        if isinstance(item, Edge):
            out.append(("edge", item.label, str(item.out_v_id), str(item.in_v_id)))
        elif isinstance(item, Vertex):
            out.append(("vertex", str(item.id)))
        else:
            out.append(item)
    return sorted(out, key=repr)


@given(chains())
@settings(max_examples=150, deadline=None)
def test_fuzz_overlay_matches_memory(recipe):
    g_memory, optimized, stripped = engines()
    expected = normalize(apply_chain(g_memory, recipe))
    for engine in (optimized, stripped):
        actual = normalize(apply_chain(engine.traversal(), recipe))
        assert actual == expected, (
            f"divergence for chain {recipe}: overlay={actual} memory={expected}"
        )


# ---------------------------------------------------------------------------
# Generated schemas/overlays: hypothesis picks the seed, repro.testing
# generates schema + overlay + data + workload and replays it across
# the engine matrix against the independent §5 oracle.
# ---------------------------------------------------------------------------


@given(st.integers(0, 20_000))
@settings(max_examples=40, deadline=None)
def test_fuzz_generated_overlays(seed):
    try:
        scenario = generate_scenario(seed)
        divergence = run_scenario(scenario)
    except ScenarioInvalid:
        assume(False)
        return
    assert divergence is None, divergence.summary()
