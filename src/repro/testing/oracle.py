"""The conformance oracle: overlay semantics in pure Python.

:func:`materialize_oracle` reads the *committed* rows of every overlay
member (base tables and views alike, via plain ``SELECT *``) and builds
an :class:`~repro.graph.memory.InMemoryGraph` by applying the paper's
§5 mapping rules directly — id specs, fixed/column labels, implicit
``src::label::dst`` edge ids, and the "all remaining columns" property
default.  It deliberately does NOT reuse :mod:`repro.core.topology` or
:mod:`repro.core.ids`: the oracle is an independent reading of the
spec, so a bug in the engine's interpretation shows up as a divergence
instead of being shared by both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..graph.memory import InMemoryGraph
from ..relational.database import Database

SEP = "::"


class OracleError(Exception):
    """The oracle cannot represent this scenario (e.g. NULL id column,
    duplicate element ids, dangling edge endpoint)."""


def _parse_spec(spec: str) -> list[tuple[str, str]]:
    """``'patient'::patientID`` -> [("const", "patient"), ("col", "patientid")]."""
    parts: list[tuple[str, str]] = []
    for raw in spec.split(SEP):
        token = raw.strip()
        if token.startswith("'") and token.endswith("'") and len(token) >= 2:
            parts.append(("const", token[1:-1]))
        else:
            parts.append(("col", token.lower()))
    return parts


def _render(parts: list[tuple[str, str]], row: dict[str, Any]) -> Any:
    if len(parts) == 1 and parts[0][0] == "col":
        value = row[parts[0][1]]
        if value is None:
            raise OracleError(f"NULL id column {parts[0][1]!r}")
        return value
    rendered: list[str] = []
    for kind, token in parts:
        if kind == "const":
            rendered.append(token)
        else:
            value = row[token]
            if value is None:
                raise OracleError(f"NULL id column {token!r}")
            rendered.append(str(value))
    return SEP.join(rendered)


def _spec_columns(parts: list[tuple[str, str]]) -> list[str]:
    return [token for kind, token in parts if kind == "col"]


def _label_of(entry: dict[str, Any], row: dict[str, Any]) -> str:
    spec = str(entry["label"]).strip()
    if spec.startswith("'") and spec.endswith("'"):
        return spec[1:-1]
    if entry.get("fix_label"):
        return spec
    value = row[spec.lower()]
    return str(value)


def _label_column(entry: dict[str, Any]) -> str | None:
    spec = str(entry["label"]).strip()
    if spec.startswith("'") and spec.endswith("'") or entry.get("fix_label"):
        return None
    return spec.lower()


def _property_columns(
    entry: dict[str, Any], all_columns: list[str], used: set[str]
) -> list[str]:
    if "properties" in entry:
        return [p.lower() for p in entry["properties"]]
    return [c for c in all_columns if c not in used]


def _table_rows(db: Database, name: str) -> tuple[list[str], list[dict[str, Any]]]:
    result = db.execute(f"SELECT * FROM {name}")
    columns = [c.lower() for c in result.columns]
    return columns, [dict(zip(columns, row)) for row in result.rows]


def materialize_oracle(db: Database, overlay: dict[str, Any]) -> InMemoryGraph:
    """Build the reference graph from the committed relational state."""
    graph = InMemoryGraph()
    for entry in overlay.get("v_tables", []):
        columns, rows = _table_rows(db, entry["table_name"])
        id_parts = _parse_spec(entry["id"])
        used = set(_spec_columns(id_parts))
        label_col = _label_column(entry)
        if label_col is not None:
            used.add(label_col)
        props = _property_columns(entry, columns, used)
        for row in rows:
            vertex_id = _render(id_parts, row)
            if graph.load_vertex(vertex_id) is not None:
                raise OracleError(f"duplicate vertex id {vertex_id!r}")
            graph.add_vertex(
                vertex_id, _label_of(entry, row), {p: row.get(p) for p in props}
            )
    for entry in overlay.get("e_tables", []):
        columns, rows = _table_rows(db, entry["table_name"])
        src_parts = _parse_spec(entry["src_v"])
        dst_parts = _parse_spec(entry["dst_v"])
        used = set(_spec_columns(src_parts)) | set(_spec_columns(dst_parts))
        id_parts = None
        if not entry.get("implicit_edge_id"):
            id_parts = _parse_spec(entry["id"])
            used.update(_spec_columns(id_parts))
        label_col = _label_column(entry)
        if label_col is not None:
            used.add(label_col)
        props = _property_columns(entry, columns, used)
        for row in rows:
            src = _render(src_parts, row)
            dst = _render(dst_parts, row)
            label = _label_of(entry, row)
            if id_parts is None:
                edge_id: Any = SEP.join([str(src), label, str(dst)])
            else:
                edge_id = _render(id_parts, row)
            if graph.load_edge(edge_id) is not None:
                raise OracleError(f"duplicate edge id {edge_id!r}")
            if graph.load_vertex(src) is None or graph.load_vertex(dst) is None:
                raise OracleError(
                    f"edge {edge_id!r} has dangling endpoint {src!r} -> {dst!r}"
                )
            graph.add_edge(label, src, dst, {p: row.get(p) for p in props}, edge_id=edge_id)
    return graph


def graphs_equal(a: InMemoryGraph, b: InMemoryGraph) -> bool:
    """Structural equality: same vertices, edges, labels, properties."""
    return _signature(a) == _signature(b)


def _signature(graph: InMemoryGraph) -> tuple:
    vertices = {
        v.id: (v.label, tuple(sorted(v.properties.items(), key=repr)))
        for v in graph.graph_step("vertex", None, _EMPTY)
    }
    edges = {
        e.id: (
            e.label,
            e.out_v_id,
            e.in_v_id,
            tuple(sorted(e.properties.items(), key=repr)),
        )
        for e in graph.graph_step("edge", None, _EMPTY)
    }
    return (
        tuple(sorted(vertices.items(), key=repr)),
        tuple(sorted(edges.items(), key=repr)),
    )


from ..graph.model import Pushdown as _Pushdown  # noqa: E402

_EMPTY = _Pushdown()


# ---------------------------------------------------------------------------
# Scenario vocabulary (what a workload can reference)
# ---------------------------------------------------------------------------


@dataclass
class Vocab:
    """Everything a chain/workload generator may mention: derived by
    scanning the materialized oracle, so it is valid for any overlay —
    explicit or AutoOverlay-derived."""

    vertex_labels: list[str]
    edge_labels: list[str]
    int_keys: list[str]
    str_keys: list[str]
    vertex_ids: list[Any]
    edge_ids: list[Any]
    str_values: list[str]
    int_values: list[int]

    def has_chains(self) -> bool:
        return bool(self.vertex_labels)


def scenario_vocab(graph: InMemoryGraph) -> Vocab:
    vertex_labels: list[str] = []
    edge_labels: list[str] = []
    int_keys: list[str] = []
    str_keys: list[str] = []
    str_values: list[str] = []
    int_values: list[int] = []
    vertex_ids = []
    edge_ids = []

    def note(seen: list, value: Any) -> None:
        if value not in seen:
            seen.append(value)

    for vertex in graph.graph_step("vertex", None, _EMPTY):
        note(vertex_labels, vertex.label)
        note(vertex_ids, vertex.id)
        for key, value in vertex.properties.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                note(int_keys, key)
                note(int_values, value)
            elif isinstance(value, str):
                note(str_keys, key)
                note(str_values, value)
    for edge in graph.graph_step("edge", None, _EMPTY):
        note(edge_labels, edge.label)
        note(edge_ids, edge.id)
        for key, value in edge.properties.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                note(int_keys, key)
                note(int_values, value)
            elif isinstance(value, str):
                note(str_keys, key)
                note(str_values, value)
    return Vocab(
        vertex_labels=vertex_labels,
        edge_labels=edge_labels,
        int_keys=int_keys,
        str_keys=str_keys,
        vertex_ids=vertex_ids,
        edge_ids=edge_ids,
        str_values=str_values or ["w"],
        int_values=int_values or [0],
    )


# ---------------------------------------------------------------------------
# reference analytics (the differential battery's ground truth)
# ---------------------------------------------------------------------------
#
# Pure-Python reference implementations of the four bulk algorithms,
# walking the InMemoryGraph adjacency lists directly.  Like the overlay
# oracle above, these are an independent reading of the spec: they do
# NOT import repro.analytics.  Determinism contract shared with the
# engine (so BFS/SSSP/WCC compare exactly): per-level iteration in
# (str(id), repr(id)) order, strict-improvement-only updates, ties to
# the sorted-first candidate.  PageRank accumulation order differs from
# the engine's SQL row order, so callers compare within an L1 tolerance.


def _a_key(vertex_id: Any) -> tuple[str, str]:
    return (str(vertex_id), repr(vertex_id))


def _a_incident(
    graph: InMemoryGraph,
    vertex_id: Any,
    direction: str,
    edge_labels: "tuple[str, ...] | None",
):
    """(edge, neighbor_id) pairs from ``vertex_id`` in ``direction``."""
    directions = ("out", "in") if direction == "both" else (direction,)
    for d in directions:
        adjacency = graph._out if d == "out" else graph._in
        for edge_id in adjacency.get(vertex_id, ()):
            edge = graph._edges[edge_id]
            if edge_labels and edge.label not in edge_labels:
                continue
            yield edge, (edge.in_v_id if d == "out" else edge.out_v_id)


def _a_weight(value: Any, default: float) -> float:
    """Independent statement of the weight-coercion rule: real numbers
    (bools excluded) pass through, everything else takes the default."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return default
    if value < 0:
        raise OracleError(f"negative edge weight {value!r}")
    return float(value)


def reference_bfs(
    graph: InMemoryGraph,
    source: Any,
    *,
    direction: str = "out",
    edge_labels: "tuple[str, ...] | None" = None,
    max_depth: "int | None" = None,
) -> dict[str, dict]:
    """Level-synchronous BFS; returns ``{"depth": ..., "parent": ...}``."""
    if source not in graph._vertices:
        raise OracleError(f"source vertex {source!r} not found")
    depth: dict[Any, int] = {source: 0}
    parent: dict[Any, Any] = {source: None}
    frontier = [source]
    level = 0
    while frontier:
        if max_depth is not None and level >= max_depth:
            break
        next_frontier: list[Any] = []
        for u in sorted(set(frontier), key=_a_key):
            for _edge, v in _a_incident(graph, u, direction, edge_labels):
                if v not in depth:
                    depth[v] = level + 1
                    parent[v] = u
                    next_frontier.append(v)
        frontier = next_frontier
        level += 1
    return {"depth": depth, "parent": parent}


def reference_sssp(
    graph: InMemoryGraph,
    source: Any,
    *,
    weight: str,
    direction: str = "out",
    edge_labels: "tuple[str, ...] | None" = None,
    default_weight: float = 1.0,
) -> dict[str, dict]:
    """Level-synchronous Bellman-Ford relaxation; returns
    ``{"distance": ..., "parent": ...}``."""
    if source not in graph._vertices:
        raise OracleError(f"source vertex {source!r} not found")
    distance: dict[Any, float] = {source: 0.0}
    parent: dict[Any, Any] = {source: None}
    frontier: set[Any] = {source}
    while frontier:
        improved: set[Any] = set()
        for u in sorted(frontier, key=_a_key):
            base = distance[u]
            for edge, v in _a_incident(graph, u, direction, edge_labels):
                w = _a_weight(edge.properties.get(weight), default_weight)
                candidate = base + w
                if v not in distance or candidate < distance[v]:
                    distance[v] = candidate
                    parent[v] = u
                    improved.add(v)
        frontier = improved
    return {"distance": distance, "parent": parent}


def reference_wcc(
    graph: InMemoryGraph,
    *,
    edge_labels: "tuple[str, ...] | None" = None,
) -> dict[Any, Any]:
    """Weakly-connected components by union-find (a deliberately
    different algorithm than the engine's label propagation — the
    fixpoint is unique, so any correct implementation agrees).  Each
    vertex maps to the sorted-min member id of its component."""
    root: dict[Any, Any] = {v: v for v in graph._vertices}

    def find(x: Any) -> Any:
        while root[x] != x:
            root[x] = root[root[x]]
            x = root[x]
        return x

    for edge in graph._edges.values():
        if edge_labels and edge.label not in edge_labels:
            continue
        a, b = find(edge.out_v_id), find(edge.in_v_id)
        if a != b:
            root[b] = a
    minima: dict[Any, Any] = {}
    for v in graph._vertices:
        r = find(v)
        if r not in minima or _a_key(v) < _a_key(minima[r]):
            minima[r] = v
    return {v: minima[find(v)] for v in graph._vertices}


def reference_pagerank(
    graph: InMemoryGraph,
    *,
    damping: float = 0.85,
    max_iterations: int = 20,
    tolerance: "float | None" = None,
    edge_labels: "tuple[str, ...] | None" = None,
) -> dict[Any, float]:
    """PageRank by power iteration with uniform dangling redistribution."""
    vertices = sorted(graph._vertices, key=_a_key)
    if not vertices:
        return {}
    successors: dict[Any, list[Any]] = {}
    for u in vertices:
        successors[u] = [
            v for _edge, v in _a_incident(graph, u, "out", edge_labels)
        ]
    n = len(vertices)
    base = (1.0 - damping) / n
    rank = {v: 1.0 / n for v in vertices}
    for _ in range(max_iterations):
        dangling = sum(rank[u] for u in vertices if not successors[u])
        contribution = {v: 0.0 for v in vertices}
        for u in vertices:
            succ = successors[u]
            if not succ:
                continue
            share = rank[u] / len(succ)
            for v in succ:
                contribution[v] += share
        spread = damping * dangling / n
        new_rank = {v: base + spread + damping * contribution[v] for v in vertices}
        delta = sum(abs(new_rank[v] - rank[v]) for v in vertices)
        rank = new_rank
        if tolerance is not None and delta < tolerance:
            break
    return rank
