"""Unit tests for the SQL tokenizer and parser."""

import pytest

from repro.relational import sql_ast as A
from repro.relational.errors import SqlSyntaxError
from repro.relational.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Param,
    UnaryOp,
)
from repro.relational.sql_lexer import IDENT, NUMBER, OP, PARAM, STRING, tokenize
from repro.relational.sql_parser import parse_script, parse_statement


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize("SELECT foo FROM bar")
        assert [t.kind for t in tokens[:-1]] == [IDENT] * 4
        assert tokens[0].value == "SELECT"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5E-2")
        values = [t.value for t in tokens if t.kind == NUMBER]
        assert values == ["1", "2.5", "1e3", "2.5E-2"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"My Table"')
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "My Table"

    def test_two_char_operators(self):
        tokens = tokenize("a <= b <> c || d")
        ops = [t.value for t in tokens if t.kind == OP]
        assert ops == ["<=", "<>", "||"]

    def test_params(self):
        tokens = tokenize("a = ? AND b = ?")
        assert sum(1 for t in tokens if t.kind == PARAM) == 2

    def test_line_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- a comment\n, 2")
        values = [t.value for t in tokens if t.kind == NUMBER]
        assert values == ["1", "2"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @foo")


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, A.SelectStmt)
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_first, A.FromTable)
        assert stmt.from_first.name == "t"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0], A.StarItem)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert isinstance(stmt.items[0], A.StarItem)
        assert stmt.items[0].qualifier == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_first.alias == "u"

    def test_where_precedence(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "OR"  # AND binds tighter
        assert stmt.where.right.op == "AND"

    def test_comparison_operators(self):
        for op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            stmt = parse_statement(f"SELECT * FROM t WHERE a {op} 1")
            assert stmt.where.op == op

    def test_in_list(self):
        stmt = parse_statement("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        stmt = parse_statement("SELECT * FROM t WHERE a NOT IN (1)")
        assert stmt.where.negated is True

    def test_between(self):
        stmt = parse_statement("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, Between)

    def test_like_and_not_like(self):
        stmt = parse_statement("SELECT * FROM t WHERE a LIKE 'x%'")
        assert stmt.where.op == "LIKE"
        stmt = parse_statement("SELECT * FROM t WHERE a NOT LIKE 'x%'")
        assert isinstance(stmt.where, UnaryOp)

    def test_is_null(self):
        stmt = parse_statement("SELECT * FROM t WHERE a IS NULL")
        assert isinstance(stmt.where, IsNull)
        stmt = parse_statement("SELECT * FROM t WHERE a IS NOT NULL")
        assert stmt.where.negated is True

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_limit(self):
        stmt = parse_statement("SELECT * FROM t ORDER BY a DESC, b LIMIT 10")
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == 10

    def test_fetch_first(self):
        stmt = parse_statement("SELECT * FROM t FETCH FIRST 5 ROWS ONLY")
        assert stmt.limit == 5

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct is True

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]

    def test_comma_join(self):
        stmt = parse_statement("SELECT * FROM a, b WHERE a.x = b.x")
        assert stmt.joins[0].kind == "CROSS"

    def test_subquery_in_from(self):
        stmt = parse_statement("SELECT * FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.from_first, A.FromSubquery)

    def test_table_function(self):
        stmt = parse_statement(
            "SELECT * FROM TABLE(fn('x', 1)) AS f (a INT, b VARCHAR)"
        )
        item = stmt.from_first
        assert isinstance(item, A.FromTableFunction)
        assert item.func_name == "fn"
        assert len(item.args) == 2
        assert [name for name, _t in item.columns] == ["a", "b"]

    def test_as_of(self):
        stmt = parse_statement(
            "SELECT * FROM t FOR SYSTEM_TIME AS OF 123.0"
        )
        assert stmt.from_first.as_of is not None

    def test_cast(self):
        stmt = parse_statement("SELECT CAST(a AS VARCHAR) FROM t")
        assert "CAST" in stmt.items[0].expr.sql()

    def test_params_numbered_in_order(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?")
        conjuncts = [stmt.where.left.right, stmt.where.right.right]
        assert [p.index for p in conjuncts] == [0, 1]

    def test_functions_and_arithmetic(self):
        stmt = parse_statement("SELECT UPPER(name), a * 2 + 1 FROM t")
        assert isinstance(stmt.items[0].expr, FunctionCall)
        assert stmt.items[1].expr.op == "+"

    def test_unary_minus(self):
        stmt = parse_statement("SELECT -a FROM t")
        assert isinstance(stmt.items[0].expr, UnaryOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t WHERE")

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 1")
        assert stmt.from_first is None


class TestOtherStatements:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, A.InsertStmt)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(stmt, A.UpdateStmt)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, A.DeleteStmt)

    def test_create_table_full(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20) NOT NULL, "
            "ref INT, FOREIGN KEY (ref) REFERENCES u (id), UNIQUE (name))"
        )
        assert isinstance(stmt, A.CreateTableStmt)
        assert stmt.primary_key == ["id"]
        assert stmt.columns[1].nullable is False
        assert stmt.foreign_keys[0].ref_table == "u"
        assert stmt.unique == [["name"]]

    def test_create_table_table_level_pk(self):
        stmt = parse_statement("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_duplicate_pk_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("CREATE TABLE t (a INT PRIMARY KEY, PRIMARY KEY (a))")

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(stmt, A.CreateViewStmt)
        stmt = parse_statement("CREATE OR REPLACE VIEW v AS SELECT a FROM t")
        assert stmt.or_replace is True

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX i ON t (a, b)")
        assert stmt.kind == "hash"
        stmt = parse_statement("CREATE UNIQUE SORTED INDEX i ON t (a)")
        assert stmt.kind == "sorted"
        assert stmt.unique is True

    def test_drop(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.if_exists is True
        assert parse_statement("DROP VIEW v").kind == "VIEW"
        assert parse_statement("DROP INDEX i").kind == "INDEX"

    def test_grant_revoke(self):
        stmt = parse_statement("GRANT SELECT, INSERT ON t TO bob")
        assert isinstance(stmt, A.GrantStmt)
        assert stmt.privileges == ["SELECT", "INSERT"]
        stmt = parse_statement("REVOKE ALL ON t FROM bob")
        assert isinstance(stmt, A.RevokeStmt)

    def test_transactions(self):
        for word in ("BEGIN", "COMMIT", "ROLLBACK"):
            stmt = parse_statement(word)
            assert isinstance(stmt, A.TransactionStmt)
            assert stmt.action == word

    def test_script(self):
        statements = parse_script("SELECT 1; SELECT 2;; SELECT 3")
        assert len(statements) == 3

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("MERGE INTO t")
