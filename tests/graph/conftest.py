"""Fixtures for graph engine tests: the TinkerPop 'modern' graph."""

import pytest

from repro.graph import GraphTraversalSource, InMemoryGraph


@pytest.fixture
def modern():
    """TinkerPop's canonical 'modern' toy graph (6 vertices, 6 edges)."""
    graph = InMemoryGraph()
    graph.add_vertex(1, "person", {"name": "marko", "age": 29})
    graph.add_vertex(2, "person", {"name": "vadas", "age": 27})
    graph.add_vertex(3, "software", {"name": "lop", "lang": "java"})
    graph.add_vertex(4, "person", {"name": "josh", "age": 32})
    graph.add_vertex(5, "software", {"name": "ripple", "lang": "java"})
    graph.add_vertex(6, "person", {"name": "peter", "age": 35})
    graph.add_edge("knows", 1, 2, {"weight": 0.5}, edge_id=7)
    graph.add_edge("knows", 1, 4, {"weight": 1.0}, edge_id=8)
    graph.add_edge("created", 1, 3, {"weight": 0.4}, edge_id=9)
    graph.add_edge("created", 4, 5, {"weight": 1.0}, edge_id=10)
    graph.add_edge("created", 4, 3, {"weight": 0.4}, edge_id=11)
    graph.add_edge("created", 6, 3, {"weight": 0.2}, edge_id=12)
    return graph


@pytest.fixture
def g(modern):
    return GraphTraversalSource(modern)
