"""Transactional graph read cache (epoch-invalidated, two levels).

See :mod:`repro.cache.graph_cache` for the design and
:mod:`repro.cache.epochs` for the invalidation protocol.
"""

from .config import (
    ENABLED_ENV,
    ROWS_ENV,
    STATEMENTS_ENV,
    STRIPES_ENV,
    CacheConfig,
    config_from_env,
    env_enabled,
    resolve_cache_config,
)
from .epochs import EpochRegistry
from .graph_cache import NEGATIVE, CacheTicket, GraphCache

__all__ = [
    "CacheConfig",
    "CacheTicket",
    "EpochRegistry",
    "GraphCache",
    "NEGATIVE",
    "ENABLED_ENV",
    "STATEMENTS_ENV",
    "ROWS_ENV",
    "STRIPES_ENV",
    "config_from_env",
    "env_enabled",
    "resolve_cache_config",
]
