"""Statement-level AST produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from .expressions import Expression
from .types import SqlType


class Statement:
    """Base class for all SQL statements."""


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expression
    alias: str | None = None


@dataclass
class StarItem:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass
class FromItem:
    alias: str


@dataclass
class FromTable(FromItem):
    """A base table or view reference, optionally time-travelled."""

    name: str = ""
    as_of: Expression | None = None


@dataclass
class FromTableFunction(FromItem):
    """``TABLE(func(args)) AS alias (col type, ...)`` — the polymorphic
    table function syntax the paper uses for ``graphQuery`` (§4)."""

    func_name: str = ""
    args: list[Expression] = field(default_factory=list)
    columns: list[tuple[str, SqlType]] = field(default_factory=list)


@dataclass
class FromSubquery(FromItem):
    select: "SelectStmt" = None  # type: ignore[assignment]


@dataclass
class JoinClause:
    kind: str  # "INNER" | "LEFT" | "CROSS"
    right: FromItem
    on: Expression | None


@dataclass
class OrderItem:
    expr: Expression
    descending: bool = False


@dataclass
class SelectStmt(Statement):
    items: list[SelectItem | StarItem]
    from_first: FromItem | None
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False


@dataclass
class UnionStmt(Statement):
    """``select UNION [ALL] select [...]`` with trailing ORDER BY/LIMIT
    applying to the combined result."""

    selects: list[SelectStmt]
    all_flags: list[bool] = field(default_factory=list)  # len = len(selects) - 1
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class InsertStmt(Statement):
    table: str
    columns: list[str] | None
    rows: list[list[Expression]] | None = None
    select: SelectStmt | None = None


@dataclass
class UpdateStmt(Statement):
    table: str
    assignments: list[tuple[str, Expression]]
    where: Expression | None = None


@dataclass
class DeleteStmt(Statement):
    table: str
    where: Expression | None = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    sql_type: SqlType
    nullable: bool = True
    primary_key: bool = False


@dataclass
class ForeignKeyDef:
    columns: list[str]
    ref_table: str
    ref_columns: list[str]


@dataclass
class CreateTableStmt(Statement):
    name: str
    columns: list[ColumnDef]
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[ForeignKeyDef] = field(default_factory=list)
    unique: list[list[str]] = field(default_factory=list)


@dataclass
class CreateViewStmt(Statement):
    name: str
    select: SelectStmt
    or_replace: bool = False


@dataclass
class CreateIndexStmt(Statement):
    name: str
    table: str
    columns: list[str]
    kind: str = "hash"  # "hash" | "sorted"
    unique: bool = False


@dataclass
class AlterTableAddColumnStmt(Statement):
    table: str
    column: ColumnDef


@dataclass
class DropStmt(Statement):
    kind: str  # "TABLE" | "VIEW" | "INDEX"
    name: str
    if_exists: bool = False


# ---------------------------------------------------------------------------
# Access control / transactions
# ---------------------------------------------------------------------------


@dataclass
class GrantStmt(Statement):
    privileges: list[str]  # e.g. ["SELECT", "INSERT"] or ["ALL"]
    table: str
    user: str


@dataclass
class RevokeStmt(Statement):
    privileges: list[str]
    table: str
    user: str


@dataclass
class TransactionStmt(Statement):
    action: str  # "BEGIN" | "COMMIT" | "ROLLBACK"
