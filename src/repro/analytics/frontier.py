"""The level-synchronous frontier executor (set-at-a-time traversal).

GRAPHITE-style bulk execution over the relational overlay: instead of
expanding one traverser at a time, :class:`FrontierExecutor` hands a
whole vertex frontier to ``provider.adjacent(...)`` in one call.  The
overlay provider chunks the ids into batched ``WHERE id IN (...)``
statements per edge table and dispatches them on the shared fan-out
pool, so one analytics step costs O(edge tables) statements instead of
O(frontier vertices).

Every expansion emits the 1:1 counter/event pair ``analytics.step`` and
one ``frontier.size`` histogram observation mirrored by a
``frontier.size`` trace event — the same invariant every other
subsystem's counters obey (see :mod:`repro.obs.tracing`).  Budget
checkpoints run per frontier vertex (``note_traverser``) plus a
deadline check per level, so runaway expansions trip the same
first-wins :class:`~repro.resilience.budget.BudgetTracker` machinery
as Gremlin traversals.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..graph.model import Direction, GraphProvider, Pushdown, Vertex
from ..obs import metrics as M
from ..obs import tracing
from ..obs.tracing import NULL_RECORDER

_EMPTY_PUSHDOWN = Pushdown()


def sort_key(vertex_id: Any) -> tuple[str, str]:
    """Total order over heterogeneous vertex ids (ints and strings mix
    freely across tables): compare by string form, tie-break by repr so
    ``1`` and ``'1'`` stay distinct and deterministic."""
    return (str(vertex_id), repr(vertex_id))


def resolve_direction(direction: "Direction | str") -> Direction:
    if isinstance(direction, Direction):
        return direction
    try:
        return Direction(str(direction).lower())
    except ValueError:
        raise ValueError(
            f"invalid direction {direction!r}; expected 'out', 'in', or 'both'"
        ) from None


def note_step(
    registry: Any,
    trace: Any,
    *,
    algorithm: str,
    step: int,
    size: int,
) -> None:
    """Emit one analytics step: counter + event, histogram + event.

    Shared by :class:`FrontierExecutor` and the bulk ``repeat()`` step
    so both tiers feed the same ``analytics.*`` observability surface.
    """
    if registry is not None:
        registry.counter(M.ANALYTICS_STEPS).increment()
        registry.histogram(M.FRONTIER_SIZE).observe(size)
    if trace is not None:
        trace.emit(tracing.ANALYTICS_STEP, algorithm=algorithm, step=step, size=size)
        trace.emit(tracing.FRONTIER_SIZE, algorithm=algorithm, step=step, size=size)


def note_converged(registry: Any, trace: Any, *, algorithm: str, steps: int) -> None:
    """Emit natural convergence (never emitted on depth/iteration cutoffs)."""
    if registry is not None:
        registry.counter(M.ANALYTICS_CONVERGED).increment()
    if trace is not None:
        trace.emit(tracing.ANALYTICS_CONVERGED, algorithm=algorithm, steps=steps)


class FrontierExecutor:
    """Expands whole vertex frontiers through a :class:`GraphProvider`.

    Works against any provider (``OverlayGraph`` for SQL execution,
    ``InMemoryGraph`` for tests); the observability hooks are picked up
    from the provider when it has them and skipped otherwise.
    """

    def __init__(
        self,
        provider: GraphProvider,
        *,
        tracker: Any = None,
    ):
        self.provider = provider
        self.registry = getattr(provider, "registry", None)
        self.trace = getattr(provider, "trace", NULL_RECORDER)
        # BudgetTracker (or None): per-vertex/deadline checkpoints.
        self.tracker = tracker
        self.steps_taken = 0

    # -- vertex enumeration --------------------------------------------------

    def all_vertex_ids(self) -> list[Any]:
        """Every vertex id in the graph, in canonical sort order."""
        ids = [
            v.id
            for v in self.provider.graph_step("vertex", None, _EMPTY_PUSHDOWN)
        ]
        ids.sort(key=sort_key)
        return ids

    # -- frontier expansion --------------------------------------------------

    def expand(
        self,
        frontier: Iterable[Any],
        direction: Direction,
        edge_labels: tuple[str, ...] | None = None,
        return_type: str = "vertex",
        *,
        algorithm: str = "frontier",
    ) -> tuple[list[Any], dict[Any, list[Any]]]:
        """Expand one frontier level set-at-a-time.

        Returns ``(ordered_frontier, adjacency)`` where
        ``ordered_frontier`` is the frontier in canonical sort order
        (the iteration order every algorithm uses, so engine and oracle
        perform identical operation sequences) and ``adjacency`` maps
        each frontier vertex id to its neighboring elements.
        """
        ordered = sorted(set(frontier), key=sort_key)
        tracker = self.tracker
        if tracker is not None:
            tracker.check_deadline()
            for _ in ordered:
                tracker.note_traverser()
        note_step(
            self.registry,
            self.trace,
            algorithm=algorithm,
            step=self.steps_taken,
            size=len(ordered),
        )
        self.steps_taken += 1
        vertices = [self._as_vertex(v) for v in ordered]
        adjacency = self.provider.adjacent(
            vertices, direction, edge_labels or None, return_type, _EMPTY_PUSHDOWN
        )
        return ordered, adjacency

    def note_iteration(self, algorithm: str, size: int) -> None:
        """Record an in-memory iteration (e.g. one PageRank power step)
        as an analytics step without expanding a frontier through SQL."""
        note_step(
            self.registry,
            self.trace,
            algorithm=algorithm,
            step=self.steps_taken,
            size=size,
        )
        self.steps_taken += 1

    def converged(self, algorithm: str) -> None:
        note_converged(
            self.registry, self.trace, algorithm=algorithm, steps=self.steps_taken
        )

    # -- helpers -------------------------------------------------------------

    def _as_vertex(self, vertex_id: Any) -> Vertex:
        if isinstance(vertex_id, Vertex):
            return vertex_id
        return Vertex(vertex_id, provider=self.provider)


def neighbor_id(edge: Any, vertex_id: Any, direction: Direction) -> Any:
    """The id of the endpoint reached from ``vertex_id`` over ``edge``
    expanded in ``direction`` (handles BOTH and self-loops)."""
    if direction is Direction.OUT:
        return edge.in_v_id
    if direction is Direction.IN:
        return edge.out_v_id
    return edge.in_v_id if edge.out_v_id == vertex_id else edge.out_v_id
