"""The seeded crash battery: ≥100 distinct deterministic crash points.

One scripted workload — DDL, autocommit DML, explicit transactions, a
rollback, explicit checkpoints, and ``checkpoint_every`` auto
checkpoints — is run to completion once per case with exactly one
crash point armed: ``(point, occurrence)`` sweeping every WAL flush
and checkpoint write the workload performs, including the torn-tail
(``wal.mid_record``) and half-written-checkpoint variants.

A *shadow* in-memory database mirrors every step whose effect must be
durable at the crash instant:

* ``wal.before_flush`` / ``wal.mid_record`` — the flush did not
  complete, so the step that triggered it is lost (an open shadow
  transaction rolls back: no committed-work loss, no uncommitted leak).
* ``wal.after_flush`` / ``checkpoint.mid_write`` — the WAL flush (and
  for auto-checkpoints, the commit stamping before it) completed, so
  the step's effect must survive even though the process died before
  acknowledging it.

After crash+recovery the battery asserts the recovered store is
row-identical to the shadow on every table, the lock table is clean,
the §5 graph mapped over the recovered tables equals the shadow's
graph, and that the recovered instance accepts new writes that survive
a second crash (recovery-of-recovery).
"""

from __future__ import annotations

import pytest

from repro.durability import SimulatedCrash
from repro.relational import Database
from repro.testing import graphs_equal, materialize_oracle

pytestmark = [pytest.mark.crash, pytest.mark.timeout(600)]

CHECKPOINT_EVERY = 3

# (kind, payload).  Only steps that flush — autocommit DML commits, DDL,
# explicit COMMITs, checkpoints — can host a crash; in-transaction DML
# buffers and BEGIN/ROLLBACK never touch the log file.
WORKLOAD = (
    ("sql", "CREATE TABLE person (id INT PRIMARY KEY, name VARCHAR, age INT)"),
    ("sql", "CREATE TABLE knows (src INT, dst INT, since INT)"),
    ("sql", "INSERT INTO person VALUES (1, 'ada', 36)"),
    ("sql", "INSERT INTO person VALUES (2, 'grace', 29)"),
    ("sql", "INSERT INTO person VALUES (3, 'alan', 41)"),
    ("sql", "INSERT INTO person VALUES (4, 'edsger', 72)"),
    ("sql", "INSERT INTO person VALUES (5, 'barbara', 71)"),
    ("sql", "INSERT INTO person VALUES (6, 'loner', 18)"),
    ("sql", "INSERT INTO knows VALUES (1, 2, 2001)"),
    ("sql", "INSERT INTO knows VALUES (2, 3, 2002)"),
    ("sql", "INSERT INTO knows VALUES (3, 4, 2003)"),
    ("sql", "CREATE INDEX idx_person_age ON person (age)"),
    ("sql", "UPDATE person SET age = 30 WHERE id = 2"),
    ("sql", "DELETE FROM person WHERE id = 6"),
    ("begin", None),
    ("sql", "INSERT INTO person VALUES (7, 'tony', 44)"),
    ("sql", "INSERT INTO knows VALUES (7, 1, 2004)"),
    ("sql", "UPDATE person SET name = 'sir tony' WHERE id = 7"),
    ("commit", None),
    ("begin", None),
    ("sql", "INSERT INTO person VALUES (8, 'ghost', 1)"),
    ("sql", "DELETE FROM knows WHERE src = 1"),
    ("rollback", None),
    ("checkpoint", None),
    ("sql", "ALTER TABLE person ADD COLUMN city VARCHAR"),
    ("sql", "UPDATE person SET city = 'york' WHERE id = 1"),
    ("sql", "CREATE VIEW adults AS SELECT id, name FROM person WHERE age >= 30"),
    ("sql", "GRANT SELECT ON person TO carol"),
    ("sql", "INSERT INTO person VALUES (9, 'lynn', 67, 'boston')"),
    ("sql", "INSERT INTO knows VALUES (9, 5, 2005)"),
    ("sql", "UPDATE person SET age = age + 1 WHERE id = 3"),
    ("begin", None),
    ("sql", "DELETE FROM knows WHERE since = 2002"),
    ("sql", "INSERT INTO knows VALUES (2, 5, 2006)"),
    ("commit", None),
    ("checkpoint", None),
    ("sql", "INSERT INTO person VALUES (10, 'leslie', 83, NULL)"),
    ("sql", "UPDATE person SET city = 'clarkson' WHERE id = 10"),
    # Edge-first: the §5 oracle check runs at every crash point, so no
    # step may open a dangling-edge window.
    ("sql", "DELETE FROM knows WHERE dst = 5"),
    ("sql", "DELETE FROM person WHERE id = 5"),
    ("sql", "INSERT INTO knows VALUES (10, 7, 2007)"),
    ("sql", "CREATE INDEX idx_knows_since ON knows (since)"),
    ("sql", "INSERT INTO person VALUES (11, 'donald', 86, NULL)"),
    ("sql", "INSERT INTO knows VALUES (11, 10, 2008)"),
    ("sql", "UPDATE person SET age = 87 WHERE id = 11"),
    ("begin", None),
    ("sql", "INSERT INTO person VALUES (12, 'frances', 92, 'phila')"),
    ("sql", "INSERT INTO knows VALUES (12, 11, 2009)"),
    ("commit", None),
    ("checkpoint", None),
    ("sql", "DELETE FROM knows WHERE since = 2008"),
    ("sql", "UPDATE person SET city = 'navy' WHERE id = 12"),
)

# Sweep bounds come from the dry run (the meta-test below re-derives
# them and fails if the workload ever stops reaching an occurrence).
CASES = (
    [("wal.before_flush", k) for k in range(1, 33)]
    + [("wal.mid_record", k) for k in range(1, 33)]
    + [("wal.after_flush", k) for k in range(1, 33)]
    + [("checkpoint.mid_write", k) for k in range(1, 11)]
)

# The flush did not complete at these points: the triggering step is lost.
LOSSY_POINTS = frozenset({"wal.before_flush", "wal.mid_record"})

OVERLAY = {
    "v_tables": [
        {"table_name": "person", "id": "id", "fix_label": True,
         "label": "'person'", "properties": ["id", "name", "age"]},
    ],
    "e_tables": [
        {"table_name": "knows", "src_v_table": "person", "src_v": "src",
         "dst_v_table": "person", "dst_v": "dst", "implicit_edge_id": True,
         "fix_label": True, "label": "'knows'"},
    ],
}


def _run_workload(sim, shadow):
    """Replay WORKLOAD against the durable db, mirroring durable effects
    into ``shadow``.  Returns the armed point that fired, or None if the
    workload ran to completion."""
    db = sim.open()
    conn = db.connect("admin")
    mirror = shadow.connect("admin")
    in_txn = False
    for kind, payload in WORKLOAD:

        def step(d, kind=kind, payload=payload):
            if kind == "sql":
                conn.execute(payload)
            elif kind == "begin":
                conn.execute("BEGIN")
            elif kind == "commit":
                conn.execute("COMMIT")
            elif kind == "rollback":
                conn.execute("ROLLBACK")
            else:  # checkpoint
                d.checkpoint()

        if sim.run_to_crash(step):
            rule = sim.injector.crash_points[0]
            assert rule.fired, "workload crashed at an unarmed point"
            if rule.point in LOSSY_POINTS:
                # The step never became durable; an open shadow txn
                # must vanish with it.
                if in_txn:
                    mirror.execute("ROLLBACK")
            else:
                # Durable crash: the effect survives the process death.
                _mirror(mirror, kind, payload)
            return rule.point
        _mirror(mirror, kind, payload)
        if kind == "begin":
            in_txn = True
        elif kind in ("commit", "rollback"):
            in_txn = False
    return None


def _mirror(mirror, kind, payload):
    if kind == "sql":
        mirror.execute(payload)
    elif kind == "begin":
        mirror.execute("BEGIN")
    elif kind == "commit":
        mirror.execute("COMMIT")
    elif kind == "rollback":
        mirror.execute("ROLLBACK")
    # checkpoint: no logical effect to mirror


def _assert_matches_shadow(recovered, shadow):
    assert recovered.lock_manager.is_clean()
    tables = set(shadow.catalog.table_names())
    assert tables == set(recovered.catalog.table_names())
    for table in tables:
        got = sorted(
            recovered.execute(f"SELECT * FROM {table}").rows, key=repr
        )
        want = sorted(shadow.execute(f"SELECT * FROM {table}").rows, key=repr)
        assert got == want, f"table {table!r} diverged after crash recovery"
    # The §5 overlay maps the recovered tables to the same graph.  An
    # early crash may predate CREATE TABLE: only map what exists.
    overlay = dict(OVERLAY)
    if "knows" not in tables:
        overlay["e_tables"] = []
    if "person" in tables:
        assert graphs_equal(
            materialize_oracle(recovered, overlay),
            materialize_oracle(shadow, overlay),
        )


@pytest.mark.parametrize(
    "point,occurrence", CASES, ids=[f"{p.split('.')[1]}-{o}" for p, o in CASES]
)
def test_crash_point(tmp_path, point, occurrence):
    sim = SimulatedCrash(dir=str(tmp_path / "wal"), checkpoint_every=CHECKPOINT_EVERY)
    shadow = Database(name="shadow", durability=False)
    try:
        fired = _run_with_armed_point(sim, shadow, point, occurrence)
        assert fired == point, (
            f"case ({point}, {occurrence}) never fired — workload too short"
        )

        recovered = sim.reopen()
        _assert_matches_shadow(recovered, shadow)
        assert recovered.recovery_report is not None

        # Recovery-of-recovery: the recovered instance accepts writes
        # that survive a further (clean) crash.  The earliest crash
        # points predate CREATE TABLE — recreate it on both sides.
        if "person" not in {t.lower() for t in recovered.catalog.table_names()}:
            ddl = "CREATE TABLE person (id INT PRIMARY KEY, name VARCHAR, age INT)"
            recovered.execute(ddl)
            shadow.execute(ddl)
        post = "INSERT INTO person (id, name, age) VALUES (99, 'post', 1)"
        recovered.execute(post)
        shadow.execute(post)
        final = sim.reopen()
        _assert_matches_shadow(final, shadow)
    finally:
        if sim.db is not None:
            sim.db.close()
        shadow.close()


def _run_with_armed_point(sim, shadow, point, occurrence):
    """Open, arm (point, occurrence), then replay the workload."""
    original_open = sim.open

    def open_and_arm(**kwargs):
        db = original_open(**kwargs)
        sim.arm_crash(point, occurrence=occurrence)
        return db

    sim.open = open_and_arm
    try:
        return _run_workload(sim, shadow)
    finally:
        sim.open = original_open


def test_case_list_covers_at_least_100_firing_points(tmp_path):
    """Meta-check for the acceptance bar: the parametrized sweep holds
    ≥100 *distinct* cases and every one of them actually fires (its
    occurrence is within the dry-run hit count for its point)."""
    sim = SimulatedCrash(dir=str(tmp_path / "dry"), checkpoint_every=CHECKPOINT_EVERY)
    shadow = Database(name="dry-shadow", durability=False)
    try:
        assert _run_workload(sim, shadow) is None  # nothing armed: completes
        hits = dict(sim.injector.point_hits)
    finally:
        sim.db.close()
        shadow.close()

    assert len(CASES) == len(set(CASES)) >= 100
    by_point = {}
    for point, occurrence in CASES:
        by_point.setdefault(point, []).append(occurrence)
    assert set(by_point) == {
        "wal.before_flush",
        "wal.mid_record",
        "wal.after_flush",
        "checkpoint.mid_write",
    }
    for point, occurrences in by_point.items():
        assert hits.get(point, 0) >= max(occurrences), (
            f"{point}: workload only reaches {hits.get(point, 0)} hits, "
            f"sweep asks for {max(occurrences)}"
        )


def test_workload_completes_cleanly_without_armed_points(tmp_path):
    """Baseline: with no crash armed, the durable replay matches the
    shadow exactly (the mirror itself introduces no skew)."""
    sim = SimulatedCrash(dir=str(tmp_path / "clean"), checkpoint_every=CHECKPOINT_EVERY)
    shadow = Database(name="clean-shadow", durability=False)
    try:
        assert _run_workload(sim, shadow) is None
        _assert_matches_shadow(sim.db, shadow)
        recovered = sim.reopen()
        _assert_matches_shadow(recovered, shadow)
    finally:
        sim.db.close()
        shadow.close()
