"""The Traversal Strategy module (paper §6.2): Db2 Graph's four
compile-time, data-independent provider strategies.

Each strategy pattern-matches the step plan and mutates it so that GSA
steps carry more pushdown work (turning into fewer / cheaper SQL
queries at runtime):

1. **GraphStep::VertexStep mutation** (runs first): ``g.V(ids).outE()``
   loses the pointless vertex-table scan — the edge table already
   stores the vertex ids as src/dst.
2. **Predicate pushdown**: filter steps after a GSA step fold into its
   SQL WHERE clause.  This includes the ``filter(inV().id() == x)``
   shape, which becomes a predicate on the edge's endpoint columns.
3. **Projection pushdown**: ``values(...)/valueMap(...)`` after a GSA
   step narrows the SQL SELECT list.
4. **Aggregate pushdown**: ``count()/sum()/mean()/min()/max()`` after a
   GSA step becomes SQL ``COUNT(*)/SUM(..)/...``.

All four compose; the paper's
``g.V(ids).outE().has('metIn','US').count()`` ends up as a single
``SELECT COUNT(*) FROM EdgeTable WHERE src_v IN (...) AND metIn='US'``.
"""

from __future__ import annotations

from ..graph.model import Direction, Pushdown
from ..graph.predicates import P
from ..graph.steps import (
    CountStep,
    EdgeVertexStep,
    FilterTraversalStep,
    GraphStep,
    HasStep,
    IdStep,
    IsStep,
    MaxStep,
    MeanStep,
    MinStep,
    PropertiesStep,
    Step,
    SumStep,
    ValueMapStep,
    ValueTupleStep,
    VertexStep,
)
from ..graph.strategy import TraversalStrategy
from ..graph.traversal import Traversal


class GraphStepVertexStepMutation(TraversalStrategy):
    priority = 10
    name = "GraphStepVertexStepMutation"

    def apply(self, traversal: Traversal) -> None:
        steps = traversal.steps
        i = 0
        while i < len(steps) - 1:
            graph_step = steps[i]
            vertex_step = steps[i + 1]
            if (
                isinstance(graph_step, GraphStep)
                and graph_step.return_type == "vertex"
                and graph_step.ids
                and graph_step.endpoint_filter is None
                and not graph_step.pushdown.predicates
                and isinstance(vertex_step, VertexStep)
                and self._mutable_direction(vertex_step)
            ):
                new_step = GraphStep(
                    "edge",
                    ids=None,
                    pushdown=Pushdown(labels=vertex_step.edge_labels),
                    endpoint_filter=(vertex_step.direction, tuple(graph_step.ids)),
                )
                replacement: list[Step] = [new_step]
                if vertex_step.return_type == "vertex":
                    # out() -> edges by src, then their IN endpoints
                    other = (
                        Direction.IN
                        if vertex_step.direction is Direction.OUT
                        else Direction.OUT
                    )
                    replacement.append(EdgeVertexStep(other))
                steps[i : i + 2] = replacement
            i += 1

    @staticmethod
    def _mutable_direction(vertex_step: VertexStep) -> bool:
        if vertex_step.direction in (Direction.OUT, Direction.IN):
            return True
        # BOTH is safe for edges (each edge attributed per matching
        # side) but not for vertices (the 'other' endpoint depends on
        # which side matched, which the mutation discards).
        return vertex_step.return_type == "edge"


class PredicatePushdown(TraversalStrategy):
    priority = 20
    name = "PredicatePushdown"

    def apply(self, traversal: Traversal) -> None:
        steps = traversal.steps
        i = 0
        while i < len(steps):
            step = steps[i]
            if not step.is_gsa:
                i += 1
                continue
            pushdown = step.pushdown  # type: ignore[attr-defined]
            j = i + 1
            while j < len(steps):
                candidate = steps[j]
                if isinstance(candidate, HasStep):
                    pushdown.predicates.extend(candidate.conditions)
                    del steps[j]
                    continue
                folded = self._endpoint_predicate(step, candidate)
                if folded is not None:
                    pushdown.predicates.append(folded)
                    del steps[j]
                    continue
                break
            i += 1

    @staticmethod
    def _endpoint_predicate(gsa_step: Step, candidate: Step) -> tuple[str, P] | None:
        """Recognize ``filter(outV().id() == x)`` / ``filter(inV().id()
        == x)`` after an edge-returning GSA step."""
        returns_edges = getattr(gsa_step, "return_type", None) == "edge"
        if not returns_edges or not isinstance(candidate, FilterTraversalStep):
            return None
        if candidate.negated:
            return None
        sub = candidate.sub.steps
        if len(sub) != 3:
            return None
        ev, id_step, is_step = sub
        if not (
            isinstance(ev, EdgeVertexStep)
            and ev.direction in (Direction.OUT, Direction.IN)
            and isinstance(id_step, IdStep)
            and isinstance(is_step, IsStep)
            and is_step.predicate.op in ("eq", "within")
        ):
            return None
        key = "~src_v" if ev.direction is Direction.OUT else "~dst_v"
        return (key, is_step.predicate)


class ProjectionPushdown(TraversalStrategy):
    priority = 30
    name = "ProjectionPushdown"

    def apply(self, traversal: Traversal) -> None:
        steps = traversal.steps
        for i, step in enumerate(steps):
            if not step.is_gsa or i + 1 >= len(steps):
                continue
            nxt = steps[i + 1]
            keys: tuple[str, ...] | None = None
            if isinstance(nxt, (PropertiesStep, ValueMapStep)) and nxt.keys:
                keys = nxt.keys
            elif isinstance(nxt, ValueTupleStep):
                keys = nxt.keys
            if keys:
                step.pushdown.projection = keys  # type: ignore[attr-defined]


_AGG_BY_STEP = {
    CountStep: "count",
    SumStep: "sum",
    MeanStep: "mean",
    MinStep: "min",
    MaxStep: "max",
}


class AggregatePushdown(TraversalStrategy):
    priority = 40
    name = "AggregatePushdown"

    def apply(self, traversal: Traversal) -> None:
        steps = traversal.steps
        i = 0
        while i < len(steps):
            step = steps[i]
            # only GraphStep: VertexStep's per-vertex grouping cannot
            # express a single scalar
            if not isinstance(step, GraphStep):
                i += 1
                continue
            if i + 1 < len(steps) and isinstance(steps[i + 1], CountStep):
                step.pushdown.aggregate = "count"
                del steps[i + 1]
                i += 1
                continue
            if (
                i + 2 < len(steps)
                and isinstance(steps[i + 1], PropertiesStep)
                and len(steps[i + 1].keys) == 1
                and type(steps[i + 2]) in _AGG_BY_STEP
                and not isinstance(steps[i + 2], CountStep)
            ):
                step.pushdown.aggregate = _AGG_BY_STEP[type(steps[i + 2])]
                step.pushdown.aggregate_key = steps[i + 1].keys[0]
                del steps[i + 1 : i + 3]
            i += 1


def optimized_strategies() -> list[TraversalStrategy]:
    """The full Db2 Graph strategy set, in application order."""
    return [
        GraphStepVertexStepMutation(),
        PredicatePushdown(),
        ProjectionPushdown(),
        AggregatePushdown(),
    ]
