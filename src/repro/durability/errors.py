"""Durability-layer error types."""

from __future__ import annotations

from ..relational.errors import DatabaseError


class DurabilityError(DatabaseError):
    """Base class for WAL / checkpoint / recovery failures."""


class CodecError(DurabilityError):
    """A value or record cannot be encoded (unsupported type) or a
    payload cannot be decoded (corruption that passed the checksum,
    which should never happen for frames the WAL itself wrote)."""


class TornLogError(DurabilityError):
    """A frame header or payload is incomplete or fails its checksum.

    Raised by the strict decode paths; the recovery reader treats the
    condition as the expected end-of-log (crash mid-append) and
    truncates instead of raising.
    """


class RecoveryError(DurabilityError):
    """The on-disk state cannot be recovered (no valid checkpoint where
    one is required, or a replay step contradicts the checkpoint)."""
