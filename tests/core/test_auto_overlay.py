"""Tests for AutoOverlay (paper §5.1, Algorithms 1 and 2)."""

import pytest

from repro.core import Db2Graph, generate_overlay, identify_tables
from repro.core.auto_overlay import _prefixed_id
from repro.relational import Column, ForeignKey, INTEGER, TableSchema, VARCHAR
from repro.workloads.police import PoliceDataset


def make_schema(name, columns, pk=None, fks=()):
    return TableSchema(
        name, [Column(c, INTEGER) for c in columns], primary_key=pk, foreign_keys=fks
    )


class TestAlgorithm1:
    def test_pk_table_is_vertex_table(self):
        schema = make_schema("t", ["id", "x"], pk=["id"])
        vertices, edges = identify_tables([schema])
        assert vertices == [schema]
        assert edges == []

    def test_pk_plus_fk_is_both(self):
        ref = make_schema("ref", ["id"], pk=["id"])
        schema = make_schema(
            "t", ["id", "r"], pk=["id"], fks=[ForeignKey(("r",), "ref", ("id",))]
        )
        vertices, edges = identify_tables([ref, schema])
        assert schema in vertices and schema in edges

    def test_two_fks_no_pk_is_edge_table(self):
        a = make_schema("a", ["id"], pk=["id"])
        b = make_schema("b", ["id"], pk=["id"])
        link = make_schema(
            "link",
            ["a_id", "b_id"],
            fks=[ForeignKey(("a_id",), "a", ("id",)), ForeignKey(("b_id",), "b", ("id",))],
        )
        vertices, edges = identify_tables([a, b, link])
        assert link not in vertices
        assert link in edges

    def test_one_fk_no_pk_is_nothing(self):
        a = make_schema("a", ["id"], pk=["id"])
        dangling = make_schema("d", ["a_id"], fks=[ForeignKey(("a_id",), "a", ("id",))])
        vertices, edges = identify_tables([a, dangling])
        assert dangling not in vertices and dangling not in edges


class TestAlgorithm2:
    @pytest.fixture
    def police_db(self, db):
        dataset = PoliceDataset()
        dataset.install_relational(db)
        return db, dataset

    def test_vertex_configs(self, police_db):
        db, _dataset = police_db
        config = generate_overlay(db)
        names = {v.table_name for v in config.v_tables}
        assert names == {"Person", "Organization", "Arrest", "Vehicle", "Phone"}
        person = config.vertex_table("Person")
        assert person.prefixed_id is True
        assert person.id_spec == "'Person'::personID"
        assert person.label.constant == "Person"
        # properties exclude the primary key
        assert "personID" not in person.properties

    def test_pk_fk_edge_config(self, police_db):
        db, _dataset = police_db
        config = generate_overlay(db)
        arrest_edge = config.edge_table("Arrest_Person")
        assert arrest_edge.table_name == "Arrest"
        assert arrest_edge.src_v_table == "Arrest"
        assert arrest_edge.src_v_spec == "'Arrest'::arrestID"
        assert arrest_edge.dst_v_table == "Person"
        assert arrest_edge.dst_v_spec == "'Person'::personID"
        assert arrest_edge.implicit_edge_id is True
        # edge properties exclude pk and fk columns
        assert set(arrest_edge.properties or []) == {"arrestDate", "charge"}

    def test_many_to_many_edge_config(self, police_db):
        db, _dataset = police_db
        config = generate_overlay(db)
        membership = config.edge_table("Person_Membership_Organization")
        assert membership.table_name == "Membership"
        assert membership.src_v_table == "Person"
        assert membership.dst_v_table == "Organization"
        assert membership.properties == ["role"]

    def test_restricting_to_table_subset(self, police_db):
        db, _dataset = police_db
        config = generate_overlay(db, ["Person", "Organization", "Membership"])
        assert {v.table_name for v in config.v_tables} == {"Person", "Organization"}
        assert [e.table_name for e in config.e_tables] == ["Membership"]

    def test_fk_to_excluded_table_skipped(self, police_db):
        db, _dataset = police_db
        config = generate_overlay(db, ["Arrest"])  # Person excluded
        assert config.e_tables == []

    def test_generated_overlay_is_queryable(self, police_db):
        db, dataset = police_db
        graph = Db2Graph.open(db, generate_overlay(db))
        g = graph.traversal()
        assert g.V().hasLabel("Person").count().next() == len(dataset.persons)
        assert g.V().hasLabel("Organization").count().next() == len(dataset.organizations)
        # traverse memberships
        orgs = g.V("Person::1").out("Person_Membership_Organization").toList()
        expected = [o for p, o, _r in dataset.memberships if p == 1]
        assert sorted(v.value("orgID") for v in orgs) == sorted(expected)

    def test_generated_edges_match_rows(self, police_db):
        db, dataset = police_db
        graph = Db2Graph.open(db, generate_overlay(db))
        g = graph.traversal()
        assert g.E().hasLabel("Arrest_Person").count().next() == len(dataset.arrests)
        assert g.E().hasLabel("Person_Membership_Organization").count().next() == len(
            dataset.memberships
        )

    def test_duplicate_labels_uniquified(self, db):
        # two FKs from the same table to the same ref table
        db.execute("CREATE TABLE node (id INT PRIMARY KEY)")
        db.execute(
            "CREATE TABLE pair (a INT, b INT, "
            "FOREIGN KEY (a) REFERENCES node (id), "
            "FOREIGN KEY (b) REFERENCES node (id), "
            "FOREIGN KEY (a) REFERENCES node (id))"
        )
        config = generate_overlay(db)
        names = [e.name for e in config.e_tables]
        assert len(names) == len(set(names))

    def test_prefixed_id_helper(self):
        assert _prefixed_id("T", ("a", "b")) == "'T'::a::b"


class TestRoundtrip:
    def test_config_survives_json(self, db):
        dataset = PoliceDataset()
        dataset.install_relational(db)
        config = generate_overlay(db)
        from repro.core import OverlayConfig

        again = OverlayConfig.from_json(config.to_json())
        assert again.to_dict() == config.to_dict()
