"""Divergence detection: CRC chains plus deterministic state digests.

Two independent fingerprints prove a primary and its replicas are
identical after any fault schedule:

* **The frame chain** — the primary folds every shipped frame into a
  rolling CRC32; each replica folds every *applied* frame the same way.
  Equal chains mean the replica applied exactly the shipped byte
  sequence, in order, with nothing skipped, duplicated, or torn — even
  if a wrong application happened to produce the right rows.
* **The state digest** — a SHA-256 over the full logical durable state
  (schemas, every committed row version with its CSN/wallclock stamps,
  secondary indexes, views, grants, and the AS OF commit history),
  serialized with the WAL codec so the bytes are deterministic.  Equal
  digests mean the *states* are identical — even if the chains were
  computed over different stream positions (e.g. comparing a promoted
  survivor against a recovered image of the old primary).

Deliberately excluded from the digest: ``next_rowid`` (a rolled-back
insert consumes a rowid on the primary that a replica never sees — an
allocator position, not state), ``next_txn_id`` (same argument), and
``ddl_generation`` (a cache-coherence clock, bumped extra on promotion
and recovery by design).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any

from ..durability.checkpoint import serialize_schema
from ..durability.codec import encode_value
from .errors import DivergenceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.database import Database
    from .cluster import ReplicationCluster


def state_digest(database: "Database") -> str:
    """Deterministic hex digest of the database's committed state."""
    tables: list[Any] = []
    for table in sorted(database.catalog.tables(), key=lambda t: t.name.lower()):
        storage = table.storage
        with storage._mutate_lock:
            versions: list[Any] = []
            for rowid in sorted(storage._rows):
                for version in storage._rows[rowid]:
                    if version.begin_csn is None:
                        continue  # uncommitted — not state yet
                    versions.append(
                        [
                            rowid,
                            tuple(version.values),
                            version.begin_csn,
                            version.begin_time,
                            version.end_csn,
                            version.end_time,
                        ]
                    )
            indexes = sorted(
                [
                    [ix.name, ix.table_name, list(ix.columns), ix.kind, ix.unique]
                    for ix in storage.indexes.values()
                ]
            )
        tables.append(
            [serialize_schema(storage.schema), table.owner, versions, indexes]
        )
    views = sorted(
        [view.name, view.sql_text or "", view.owner]
        for view in database.catalog.views_in_creation_order()
    )
    grants = sorted(
        [user, table, sorted(privs)]
        for user, table, privs in database.access.dump_grants()
    )
    history = database.txn_manager.commit_history()
    payload = encode_value(
        {
            "tables": tables,
            "views": views,
            "grants": grants,
            "history": [[t, c] for t, c in history],
        }
    )
    return hashlib.sha256(payload).hexdigest()


def check_divergence(
    cluster: "ReplicationCluster", catchup_rounds: int = 500
) -> dict[str, Any]:
    """Pump until every live replica is at the head of the stream, then
    prove bit-identical states: frame chains must equal the primary's
    shipped chain and state digests must equal the primary's digest.

    Raises :class:`DivergenceError` on any mismatch (including failure
    to catch up within ``catchup_rounds`` — an unconverged schedule is
    indistinguishable from divergence and must fail loudly, not pass
    vacuously).  Callers running under network chaos should ``heal()``
    the fault injector first.
    """
    with cluster._lock:
        live = cluster.live_replicas()
        for _ in range(catchup_rounds):
            if all(r.next_seq == len(cluster.log) for r in live):
                break
            cluster.pump(1)
        else:
            lagging = {
                r.replica_id: r.next_seq for r in live if r.next_seq != len(cluster.log)
            }
            raise DivergenceError(
                f"replicas failed to reach stream head {len(cluster.log)} "
                f"within {catchup_rounds} rounds: {lagging}"
            )
        primary_digest = state_digest(cluster.database)
        report: dict[str, Any] = {
            "digest": primary_digest,
            "chain": cluster.ship_chain,
            "frames": len(cluster.log),
            "replicas": [],
        }
        for replica in live:
            if replica.chain != cluster.ship_chain:
                raise DivergenceError(
                    f"{replica.replica_id} frame chain {replica.chain:#010x} != "
                    f"primary {cluster.ship_chain:#010x}"
                )
            digest = state_digest(replica.database)
            if digest != primary_digest:
                raise DivergenceError(
                    f"{replica.replica_id} state digest {digest[:16]}… != "
                    f"primary {primary_digest[:16]}…"
                )
            report["replicas"].append(replica.replica_id)
        return report
