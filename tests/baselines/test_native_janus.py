"""Tests for the two baseline graph stores: behaviour, caching,
serialization costs, and provider-interface conformance."""

import pytest

from repro.baselines.janus import JanusLikeStore
from repro.baselines.kvstore import DiskModel
from repro.baselines.native import NativeGraphStore
from repro.graph import GraphError, GraphTraversalSource, P, __


def tiny_dataset(store):
    store.add_vertex(1, "person", {"name": "ada", "age": 36})
    store.add_vertex(2, "person", {"name": "bob", "age": 41})
    store.add_vertex(3, "thing", {"name": "lamp"})
    store.add_edge("knows", 1, 2, {"since": 1990}, edge_id="e1")
    store.add_edge("owns", 2, 3, {}, edge_id="e2")
    store.finalize()
    return store


@pytest.fixture(params=["native", "janus"])
def store(request):
    if request.param == "native":
        instance = NativeGraphStore(cache_records=100, disk_model=DiskModel(0.0))
    else:
        instance = JanusLikeStore(cache_blobs=100, disk_model=DiskModel(0.0))
    yield tiny_dataset(instance)
    instance.close()


class TestProviderConformance:
    """Both baselines serve the same Gremlin engine correctly."""

    def test_counts(self, store):
        g = GraphTraversalSource(store)
        assert g.V().count().next() == 3
        assert g.E().count().next() == 2

    def test_label_scan(self, store):
        g = GraphTraversalSource(store)
        assert g.V().hasLabel("person").count().next() == 2

    def test_lookup_by_id(self, store):
        g = GraphTraversalSource(store)
        assert g.V(1).values("name").next() == "ada"
        assert g.E("e1").values("since").next() == 1990

    def test_adjacency(self, store):
        g = GraphTraversalSource(store)
        assert [v.id for v in g.V(1).out("knows")] == [2]
        assert [v.id for v in g.V(2).in_("knows")] == [1]
        assert sorted(v.id for v in g.V(2).both()) == [1, 3]

    def test_edge_vertices(self, store):
        g = GraphTraversalSource(store)
        assert g.E("e1").inV().values("name").next() == "bob"
        assert g.E("e1").outV().values("name").next() == "ada"

    def test_predicates(self, store):
        g = GraphTraversalSource(store)
        assert g.V().has("age", P.gt(40)).count().next() == 1

    def test_aggregate_pushdown_path(self, store):
        from repro.core.strategies import optimized_strategies
        from repro.graph import StrategyRegistry

        g = GraphTraversalSource(store, StrategyRegistry(optimized_strategies()))
        assert g.V(1).outE("knows").count().next() == 1
        assert g.V().values("age").sum_().next() == 77

    def test_missing_ids(self, store):
        g = GraphTraversalSource(store)
        assert g.V(99).toList() == []
        assert g.E("nope").toList() == []

    def test_counts_api(self, store):
        assert store.vertex_count() == 3
        assert store.edge_count() == 2

    def test_disk_usage_positive(self, store):
        assert store.disk_usage_bytes() > 0

    def test_loading_after_finalize_rejected(self, store):
        with pytest.raises(GraphError):
            store.add_vertex(99, "x")


class TestNativeSpecifics:
    def test_cache_bounded_and_misses_counted(self):
        store = NativeGraphStore(cache_records=4, disk_model=DiskModel(0.0))
        for i in range(20):
            store.add_vertex(i, "n", {"i": i})
        store.finalize()
        store.open_graph(prefetch=True)
        g = GraphTraversalSource(store)
        for i in range(20):
            g.V(i).toList()
        stats = store.cache.stats()
        assert stats["entries"] <= 4
        assert stats["misses"] > 0

    def test_prefetch_warms_cache(self):
        store = NativeGraphStore(cache_records=100, disk_model=DiskModel(0.0))
        for i in range(10):
            store.add_vertex(i, "n", {})
        store.finalize()
        store.open_graph(prefetch=True)
        assert len(store.cache) == 10

    def test_property_index_used_for_scans(self):
        store = NativeGraphStore(cache_records=100, disk_model=DiskModel(0.0))
        tiny_dataset(store)
        store.create_property_index("v", "name")
        g = GraphTraversalSource(store)
        assert g.V().has("name", "ada").count().next() == 1

    def test_engine_latch_time_accumulates(self):
        store = NativeGraphStore(cache_records=100, disk_model=DiskModel(0.0))
        tiny_dataset(store)
        g = GraphTraversalSource(store)
        g.V().toList()
        assert store.serialization_lock_seconds() > 0

    def test_duplicate_vertex_rejected(self):
        store = NativeGraphStore()
        store.add_vertex(1, "n")
        with pytest.raises(GraphError):
            store.add_vertex(1, "n")
        store.close()

    def test_index_free_adjacency_no_edge_scan(self):
        """out() must not touch unrelated edge records (adjacency is
        embedded in the vertex record)."""
        store = NativeGraphStore(cache_records=1000, disk_model=DiskModel(0.0))
        tiny_dataset(store)
        store.open_graph(prefetch=False)
        store.cache.clear()
        store.cache.reset_stats()
        g = GraphTraversalSource(store)
        g.V(1).out("knows").toList()
        # touched: v1 record + v2 record, not e2
        touched = set(store.cache.keys())
        assert ("e", "e2") not in touched


class TestJanusSpecifics:
    def test_whole_blob_deserialized_per_access(self):
        store = JanusLikeStore(cache_blobs=1, disk_model=DiskModel(0.0))
        tiny_dataset(store)
        reads_before = store._store.reads
        g = GraphTraversalSource(store)
        g.V(1).toList()
        g.V(2).toList()
        g.V(1).toList()  # evicted by v2 with cache size 1 -> re-read
        assert store._store.reads >= reads_before + 3

    def test_edges_duplicated_on_both_endpoints(self):
        """Each edge lives in both endpoint blobs (disk blow-up source)."""
        store = JanusLikeStore(disk_model=DiskModel(0.0))
        tiny_dataset(store)
        blob1 = store._store.get(1)
        blob2 = store._store.get(2)
        edge_ids_1 = {e["edge_id"] for e in blob1["adjacency"]}
        edge_ids_2 = {e["edge_id"] for e in blob2["adjacency"]}
        assert "e1" in edge_ids_1 and "e1" in edge_ids_2

    def test_store_lock_time_accumulates(self):
        store = JanusLikeStore(cache_blobs=1, disk_model=DiskModel(0.0))
        tiny_dataset(store)
        g = GraphTraversalSource(store)
        g.V().toList()
        assert store.serialization_lock_seconds() > 0


class TestDiskBlowup:
    def test_denormalized_storage_is_larger_than_csv(self):
        """Table 3's disk-usage story: baseline stores use a multiple of
        the relational (CSV-equivalent) footprint."""
        import csv
        import io

        native = NativeGraphStore(disk_model=DiskModel(0.0))
        janus = JanusLikeStore(disk_model=DiskModel(0.0))
        rows = [(i, f"name-{i}", i % 7) for i in range(500)]
        edges = [(i, (i * 3) % 500) for i in range(500)]
        for store in (native, janus):
            for i, name, group in rows:
                store.add_vertex(i, "n", {"name": name, "group": group})
            for src, dst in edges:
                store.add_edge("e", src, dst, {"w": 1})
            store.finalize()
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerows(rows)
        writer.writerows(edges)
        csv_bytes = len(buffer.getvalue())
        assert native.disk_usage_bytes() > 2 * csv_bytes
        assert janus.disk_usage_bytes() > 2 * csv_bytes
        native.close()
        janus.close()
