"""Unit backfill for commit-hook ordering and the isolation-level
plumbing in :mod:`repro.relational.transactions`.

The cache layer's coherence proof leans on three ordering facts the
integration suites only exercise indirectly:

1. hooks fire *after* version stamping (committed data is visible
   before its epoch moves),
2. hooks fire *before* the transaction's write locks release (a waiter
   acquiring the lock observes the bumped epoch),
3. rollback never fires hooks.
"""

from __future__ import annotations

import pytest

from repro.relational import Database
from repro.relational.errors import TransactionError
from repro.relational.transactions import Transaction


@pytest.fixture
def reg_db(db):
    db.execute("CREATE TABLE reg (id INT PRIMARY KEY, val INT)")
    db.execute("INSERT INTO reg VALUES (1, 0)")
    return db


def test_hook_receives_written_tables_once_per_commit(reg_db):
    calls: list[list[str]] = []
    reg_db.txn_manager.commit_hooks.append(lambda tables: calls.append(tables))
    conn = reg_db.connect()
    conn.begin()
    conn.execute("UPDATE reg SET val = 1 WHERE id = 1")
    assert calls == []  # nothing fires before commit
    conn.commit()
    assert calls == [["reg"]]


def test_hook_fires_after_stamping(reg_db):
    """At hook time the committed row must already be visible to a new
    snapshot — the cache's capture-before-SQL rule depends on it."""
    seen: list[int] = []

    def hook(_tables):
        other = reg_db.connect()
        seen.append(other.execute("SELECT val FROM reg WHERE id = 1").scalar())

    reg_db.txn_manager.commit_hooks.append(hook)
    conn = reg_db.connect()
    conn.begin()
    conn.execute("UPDATE reg SET val = 7 WHERE id = 1")
    conn.commit()
    assert seen == [7]


def test_hook_fires_before_write_locks_release(reg_db):
    """A waiter that acquires the released write lock must find the
    hooks already run; the lock is still exclusively held at hook
    time."""
    states: list[tuple[object, bool]] = []

    def hook(_tables):
        lock = reg_db.catalog.get_table("reg").lock
        states.append((lock.writer_owner, lock.is_idle))

    reg_db.txn_manager.commit_hooks.append(hook)
    conn = reg_db.connect()
    conn.begin()
    conn.execute("UPDATE reg SET val = 2 WHERE id = 1")
    txn_id = conn.current_txn.txn_id
    conn.commit()
    assert states == [(txn_id, False)]
    assert reg_db.catalog.get_table("reg").lock.is_idle


def test_hooks_fire_in_registration_order(reg_db):
    order: list[str] = []
    reg_db.txn_manager.commit_hooks.append(lambda _t: order.append("first"))
    reg_db.txn_manager.commit_hooks.append(lambda _t: order.append("second"))
    conn = reg_db.connect()
    conn.begin()
    conn.execute("UPDATE reg SET val = 3 WHERE id = 1")
    conn.commit()
    assert order == ["first", "second"]


def test_read_only_commit_skips_hooks(reg_db):
    calls: list[list[str]] = []
    reg_db.txn_manager.commit_hooks.append(lambda tables: calls.append(tables))
    conn = reg_db.connect()
    conn.begin()
    assert conn.execute("SELECT val FROM reg").rows == [(0,)]
    conn.commit()
    assert calls == []  # no written tables, nothing to invalidate


def test_rollback_never_fires_hooks(reg_db):
    calls: list[list[str]] = []
    reg_db.txn_manager.commit_hooks.append(lambda tables: calls.append(tables))
    conn = reg_db.connect()
    conn.begin()
    conn.execute("UPDATE reg SET val = 9 WHERE id = 1")
    conn.rollback()
    assert calls == []
    assert reg_db.execute("SELECT val FROM reg WHERE id = 1").scalar() == 0
    assert reg_db.catalog.get_table("reg").lock.is_idle


def test_multi_table_commit_reports_every_written_table(reg_db):
    reg_db.execute("CREATE TABLE other (id INT PRIMARY KEY)")
    calls: list[list[str]] = []
    reg_db.txn_manager.commit_hooks.append(lambda tables: calls.append(sorted(tables)))
    conn = reg_db.connect()
    conn.begin()
    conn.execute("UPDATE reg SET val = 4 WHERE id = 1")
    conn.execute("INSERT INTO other VALUES (1)")
    conn.commit()
    assert calls == [["other", "reg"]]


# -- isolation-level plumbing -------------------------------------------------


def test_commit_returns_monotonic_csns(reg_db):
    conn = reg_db.connect()
    conn.begin()
    conn.execute("UPDATE reg SET val = 1 WHERE id = 1")
    first = conn.commit()
    conn.begin()
    conn.execute("UPDATE reg SET val = 2 WHERE id = 1")
    second = conn.commit()
    assert isinstance(first, int) and isinstance(second, int)
    assert second > first


def test_read_committed_refreshes_snapshot_per_statement(reg_db):
    reader = reg_db.connect()
    writer = reg_db.connect()
    reader.begin(isolation=Transaction.READ_COMMITTED)
    assert reader.execute("SELECT val FROM reg WHERE id = 1").scalar() == 0
    writer.execute("UPDATE reg SET val = 5 WHERE id = 1")  # autocommit
    # the next statement's refreshed snapshot sees the new commit
    assert reader.execute("SELECT val FROM reg WHERE id = 1").scalar() == 5
    reader.commit()


def test_snapshot_isolation_pins_begin_snapshot(reg_db):
    reader = reg_db.connect()
    writer = reg_db.connect()
    reader.begin(isolation=Transaction.SNAPSHOT)
    assert reader.execute("SELECT val FROM reg WHERE id = 1").scalar() == 0
    writer.execute("UPDATE reg SET val = 5 WHERE id = 1")
    # the BEGIN-time snapshot holds: no read skew within the txn
    assert reader.execute("SELECT val FROM reg WHERE id = 1").scalar() == 0
    reader.commit()
    # a fresh statement afterwards sees the committed value
    assert reader.execute("SELECT val FROM reg WHERE id = 1").scalar() == 5


def test_unknown_isolation_level_rejected(reg_db):
    conn = reg_db.connect()
    with pytest.raises(TransactionError):
        conn.begin(isolation="chaos")
