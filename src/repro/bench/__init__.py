"""``repro.bench`` — measurement harness for the paper's evaluation:
latency timing, concurrent-client throughput (measured + modelled),
engine setup fixtures shared by the benchmark modules, and paper-style
table/series reporting."""

from .harness import EngineUnderTest, LatencyResult, measure_latency, build_engines
from .concurrency import ThroughputResult, measure_throughput, modelled_throughput
from .load import LoadResult, percentile, run_closed_loop, run_open_loop
from .reporting import format_table, format_bytes, format_seconds, format_phase_breakdown

__all__ = [
    "EngineUnderTest",
    "LatencyResult",
    "measure_latency",
    "build_engines",
    "ThroughputResult",
    "measure_throughput",
    "modelled_throughput",
    "LoadResult",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
    "format_table",
    "format_bytes",
    "format_seconds",
    "format_phase_breakdown",
]
