"""The SQL Dialect module (paper §6, Figure 3).

Generates every SQL statement the Graph Structure module needs,
parameterized so that repeated query *shapes* hit the relational
engine's prepared-statement cache ("pre-compiled SQL templates for
these frequent patterns", §6.1).  It also tracks which (table,
predicate-columns) patterns occur frequently and suggests — or creates
— indexes for them, playing the role of the paper's hints to the Db2
index advisor.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Iterator, Sequence

from ..graph.predicates import P
from ..obs import metrics as M
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_RECORDER, TraceRecorder
from ..relational.database import Connection
from ..relational.errors import CatalogError
from ..resilience.budget import BudgetTracker
from ..resilience.retry import RetryPolicy


@dataclass(frozen=True)
class SqlPredicate:
    """One WHERE conjunct: ``column op values``.

    ``batch=True`` marks an id conjunct that coalesces multiple
    traversers into one ``IN (...)`` probe — the dialect uses it to
    account batched statements (``sql.batched`` / ``batch.size``)
    without guessing from the SQL text.
    """

    column: str
    op: str  # '=', '<>', '<', '<=', '>', '>=', 'IN', 'NOT IN', 'IS NULL', 'IS NOT NULL'
    values: tuple[Any, ...] = ()
    batch: bool = False

    def render(self) -> tuple[str, list[Any]]:
        if self.op in ("IS NULL", "IS NOT NULL"):
            return f"{self.column} {self.op}", []
        if self.op in ("IN", "NOT IN"):
            holes = ", ".join("?" for _ in self.values)
            return f"{self.column} {self.op} ({holes})", list(self.values)
        return f"{self.column} {self.op} ?", [self.values[0]]

    def shape(self) -> str:
        """Value-free fingerprint for pattern tracking."""
        if self.op in ("IN", "NOT IN"):
            return f"{self.column.lower()} {self.op}[{len(self.values)}]"
        return f"{self.column.lower()} {self.op}"


def predicate_to_sql(column: str, predicate: P) -> list[SqlPredicate] | None:
    """Translate a Gremlin predicate to SQL conjuncts; ``None`` when the
    predicate has no clean SQL form (caller falls back to in-memory)."""
    from ..graph.predicates import TextP

    if isinstance(predicate, TextP):
        return _text_predicate_to_sql(column, predicate)
    op = predicate.op
    if op == "eq":
        if predicate.value is None:
            return [SqlPredicate(column, "IS NULL")]
        return [SqlPredicate(column, "=", (predicate.value,))]
    if op == "neq":
        if predicate.value is None:
            return [SqlPredicate(column, "IS NOT NULL")]
        return [SqlPredicate(column, "<>", (predicate.value,))]
    if op == "gt":
        return [SqlPredicate(column, ">", (predicate.value,))]
    if op == "gte":
        return [SqlPredicate(column, ">=", (predicate.value,))]
    if op == "lt":
        return [SqlPredicate(column, "<", (predicate.value,))]
    if op == "lte":
        return [SqlPredicate(column, "<=", (predicate.value,))]
    if op == "within":
        if not predicate.value:
            return None
        return [SqlPredicate(column, "IN", tuple(predicate.value))]
    if op == "without":
        if not predicate.value:
            return None
        return [SqlPredicate(column, "NOT IN", tuple(predicate.value))]
    if op == "between":
        return [
            SqlPredicate(column, ">=", (predicate.value,)),
            SqlPredicate(column, "<", (predicate.other,)),
        ]
    if op == "inside":
        return [
            SqlPredicate(column, ">", (predicate.value,)),
            SqlPredicate(column, "<", (predicate.other,)),
        ]
    return None  # 'outside' needs OR — evaluated in memory


def _text_predicate_to_sql(column: str, predicate: "P") -> list[SqlPredicate] | None:
    """TextP -> LIKE.  Operands containing LIKE wildcards fall back to
    in-memory evaluation (our LIKE has no ESCAPE clause)."""
    operand = predicate.value
    if not isinstance(operand, str) or "%" in operand or "_" in operand:
        return None
    patterns = {
        "startingWith": (f"{operand}%", "LIKE"),
        "endingWith": (f"%{operand}", "LIKE"),
        "containing": (f"%{operand}%", "LIKE"),
        "notStartingWith": (f"{operand}%", "NOT LIKE"),
        "notEndingWith": (f"%{operand}", "NOT LIKE"),
        "notContaining": (f"%{operand}%", "NOT LIKE"),
    }
    entry = patterns.get(predicate.op)
    if entry is None:
        return None
    pattern, op = entry
    return [SqlPredicate(column, op, (pattern,))]


class DialectStats:
    """Facade over the shared :class:`MetricsRegistry` keeping the old
    ``stats.queries_issued += 1`` call sites (and test reads) working
    while the values live in named registry counters."""

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def queries_issued(self) -> int:
        return self.registry.counter(M.SQL_QUERIES).value

    @queries_issued.setter
    def queries_issued(self, value: int) -> None:
        self.registry.counter(M.SQL_QUERIES).value = value

    @property
    def rows_fetched(self) -> int:
        return self.registry.counter(M.SQL_ROWS).value

    @rows_fetched.setter
    def rows_fetched(self, value: int) -> None:
        self.registry.counter(M.SQL_ROWS).value = value

    @property
    def prepared_hits(self) -> int:
        return self.registry.counter(M.SQL_PREPARED_HITS).value

    @prepared_hits.setter
    def prepared_hits(self, value: int) -> None:
        self.registry.counter(M.SQL_PREPARED_HITS).value = value

    def reset(self) -> None:
        for counter in list(self.registry.counters()):
            if counter.name.startswith("sql."):
                counter.reset()

    def __repr__(self) -> str:
        return (
            f"DialectStats(queries_issued={self.queries_issued}, "
            f"rows_fetched={self.rows_fetched}, prepared_hits={self.prepared_hits})"
        )


class FrequentPatternTracker:
    """Counts query shapes; shapes above a threshold are *frequent*
    (paper §6.1) and drive index suggestions."""

    def __init__(self, threshold: int = 16):
        self.threshold = threshold
        self._counts: dict[tuple[str, tuple[str, ...]], int] = {}
        self._lock = threading.Lock()

    def record(self, table: str, predicates: Sequence[SqlPredicate]) -> None:
        equality_columns = tuple(
            sorted(p.column.lower() for p in predicates if p.op in ("=", "IN"))
        )
        if not equality_columns:
            return
        key = (table.lower(), equality_columns)
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1

    def frequent_patterns(self) -> list[tuple[str, tuple[str, ...], int]]:
        with self._lock:
            return sorted(
                (
                    (table, columns, count)
                    for (table, columns), count in self._counts.items()
                    if count >= self.threshold
                ),
                key=lambda item: -item[2],
            )

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()


class SqlDialect:
    def __init__(
        self,
        connection: Connection,
        track_patterns: bool = True,
        pattern_threshold: int = 16,
        use_prepared: bool = True,
        registry: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
        retry_policy: RetryPolicy | None = None,
        cache: Any = None,
    ):
        self.connection = connection
        # Optional GraphCache (repro.cache): consulted by select() before
        # issuing SQL, filled only after a successful statement.
        self.cache = cache
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = recorder if recorder is not None else NULL_RECORDER
        self.stats = DialectStats(self.registry)
        # Pre-bound counter cells: one locked increment per event, no
        # registry lookup (and no racy read-modify-write through the
        # DialectStats property facade) on the hot path.
        self._queries_counter = self.registry.counter(M.SQL_QUERIES)
        self._rows_counter = self.registry.counter(M.SQL_ROWS)
        self._prepared_counter = self.registry.counter(M.SQL_PREPARED_HITS)
        self._batched_counter = self.registry.counter(M.SQL_BATCHED)
        self._batch_ids_counter = self.registry.counter(M.BATCH_IDS)
        # Stable per-dialect statement ids: worker threads interleave
        # trace events, so every sql.* event carries the id assigned at
        # build time (itertools.count is atomic under the GIL).
        self._statement_ids = itertools.count(1)
        self.tracker = FrequentPatternTracker(pattern_threshold) if track_patterns else None
        self.log: list[str] | None = None  # set to [] to capture generated SQL
        # use_prepared=False re-parses/re-plans every statement — the
        # ablation of the paper's pre-compiled SQL templates (§6.1)
        self.use_prepared = use_prepared
        # Per-statement retry of transient engine errors (None = fail fast).
        self.retry_policy = retry_policy
        # Budget checkpoints: the active BudgetTracker is thread-local
        # because one dialect serves every concurrent traversal on this
        # graph, each with its own budget (activated around execution).
        self._budget = threading.local()

    # -- budgets -----------------------------------------------------------------

    @contextmanager
    def budget_scope(self, tracker: BudgetTracker | None) -> Iterator[None]:
        """Make ``tracker`` the budget for SQL issued on this thread."""
        previous = getattr(self._budget, "tracker", None)
        self._budget.tracker = tracker
        try:
            yield
        finally:
            self._budget.tracker = previous

    @property
    def active_budget(self) -> BudgetTracker | None:
        return getattr(self._budget, "tracker", None)

    # -- statement building ------------------------------------------------------

    @staticmethod
    def build_select(
        table: str,
        columns: Sequence[str] | None,
        predicates: Sequence[SqlPredicate] = (),
        aggregate: tuple[str, str | None] | None = None,
    ) -> tuple[str, list[Any]]:
        """Return (sql, params) for one table query.

        ``aggregate`` is ``(kind, column)`` with kinds ``count``,
        ``sum``, ``min``, ``max``, or ``sum_count`` (for distributed
        means across tables).
        """
        if aggregate is not None:
            kind, agg_column = aggregate
            if kind == "count":
                select_list = "COUNT(*)"
            elif kind == "sum_count":
                select_list = f"SUM({agg_column}), COUNT({agg_column})"
            elif kind in ("sum", "min", "max"):
                select_list = f"{kind.upper()}({agg_column})"
            else:
                raise CatalogError(f"unknown aggregate kind {kind!r}")
        elif columns:
            select_list = ", ".join(columns)
        else:
            select_list = "*"
        sql = f"SELECT {select_list} FROM {table}"
        params: list[Any] = []
        if predicates:
            fragments = []
            for predicate in predicates:
                fragment, values = predicate.render()
                fragments.append(fragment)
                params.extend(values)
            sql += " WHERE " + " AND ".join(fragments)
        return sql, params

    # -- execution -----------------------------------------------------------------

    def select(
        self,
        table: str,
        columns: Sequence[str] | None,
        predicates: Sequence[SqlPredicate] = (),
        aggregate: tuple[str, str | None] | None = None,
    ) -> list[dict[str, Any]]:
        """Run a generated query; rows come back as lowercase-keyed dicts."""
        timing = self.registry.timing_enabled
        timed = timing or self.trace.enabled
        started = perf_counter() if timed else 0.0
        sql, params = self.build_select(table, columns, predicates, aggregate)
        ticket = None
        if self.cache is not None:
            status, payload = self.cache.lookup_statement(
                self.connection, table, sql, tuple(params)
            )
            if status == "hit":
                keys, row_tuples = payload
                budget = self.active_budget
                if budget is not None:
                    # A hit skips the statement checkpoint (no SQL was
                    # issued) but still counts rows and honors the
                    # deadline — materialized data is materialized data.
                    budget.note_rows(len(row_tuples))
                    budget.check_deadline()
                # Fresh dicts per hit: cached tuples are never aliased
                # into mutable traversal state.
                return [dict(zip(keys, row)) for row in row_tuples]
            if status == "miss":
                ticket = payload
        statement_id = next(self._statement_ids)
        if self.log is not None:
            self.log.append(sql)
        if self.tracker is not None and aggregate is None:
            self.tracker.record(table, predicates)
        if timing:
            self.registry.histogram(M.PHASE_TRANSLATE).observe(perf_counter() - started)
        # Traverser batching: an id conjunct carrying >1 coalesced ids
        # means this one statement does the work of `size` per-traverser
        # probes — count it and record how many ids it carried.
        batch_size = max(
            (len(p.values) for p in predicates if p.batch and p.op == "IN"),
            default=0,
        )
        if batch_size > 1:
            self._batched_counter.increment()
            self._batch_ids_counter.increment(batch_size)
            self.trace.emit(
                tracing.SQL_BATCHED,
                statement_id=statement_id,
                table=table,
                size=batch_size,
            )
        budget = self.active_budget
        if budget is not None:
            budget.note_sql()  # cancellation checkpoint at every SQL issue
        executed = perf_counter() if timed else 0.0
        result = self._run_statement(sql, params)
        elapsed = perf_counter() - executed if timed else None
        if timing:
            self.registry.histogram(M.PHASE_EXECUTE).observe(elapsed)
        self._queries_counter.increment()
        self._rows_counter.increment(len(result.rows))
        if budget is not None:
            budget.note_rows(len(result.rows))
        if self.trace.enabled:
            self.trace.emit(
                tracing.SQL_ISSUED,
                seconds=elapsed,
                sql=sql,
                params=list(params),
                rows=len(result.rows),
                kind="select",
                statement_id=statement_id,
            )
        materialized = perf_counter() if timing else 0.0
        keys = [c.lower() for c in result.columns]
        rows = [dict(zip(keys, row)) for row in result.rows]
        if ticket is not None:
            # Fill only after the statement (and any retries) succeeded:
            # injected faults and exhausted retries never poison an entry.
            self.cache.store(
                ticket,
                (tuple(keys), tuple(tuple(row) for row in result.rows)),
            )
        if timing:
            self.registry.histogram(M.PHASE_MATERIALIZE).observe(
                perf_counter() - materialized
            )
        return rows

    def _run_statement(self, sql: str, params: Sequence[Any], count_hits: bool = True):
        """Execute one statement, retrying transient engine errors under
        the configured policy.  Prepared-cache hits are recorded only on
        the successful attempt so retries don't inflate the counter."""

        def attempt():
            if self.use_prepared:
                prepared = self.connection.prepare(sql)
                # nth is claimed atomically with the execution: exactly
                # one concurrent caller sees 0 (the compile), everyone
                # else is a genuine cache hit.
                result, nth = prepared.execute_counted(self.connection, params)
                return result, nth >= 1
            return self.connection.execute(sql, params), False

        policy = self.retry_policy
        if policy is None:
            result, hit = attempt()
        else:
            result, hit = policy.run(attempt, registry=self.registry, trace=self.trace)
        if count_hits and hit:
            self._prepared_counter.increment()
        return result

    def aggregate_value(
        self,
        table: str,
        kind: str,
        column: str | None,
        predicates: Sequence[SqlPredicate] = (),
    ) -> Any:
        rows = self.select(table, None, predicates, aggregate=(kind, column))
        if not rows:
            return None
        return next(iter(rows[0].values()))

    def sum_and_count(
        self, table: str, column: str, predicates: Sequence[SqlPredicate] = ()
    ) -> tuple[float, int]:
        rows = self.select(table, None, predicates, aggregate=("sum_count", column))
        values = list(rows[0].values())
        return (values[0] or 0, values[1] or 0)

    def insert(self, table: str, columns: Sequence[str], values: Sequence[Any]) -> None:
        """Parameterized INSERT (used by graph mutation steps: addV/addE
        translate straight to SQL, so they ride the same transaction as
        any other statement on the connection)."""
        column_list = ", ".join(columns)
        holes = ", ".join("?" for _ in columns)
        sql = f"INSERT INTO {table} ({column_list}) VALUES ({holes})"
        statement_id = next(self._statement_ids)
        if self.log is not None:
            self.log.append(sql)
        timed = self.trace.enabled
        budget = self.active_budget
        if budget is not None:
            budget.note_sql()
        started = perf_counter() if timed else 0.0
        self._run_statement(sql, list(values), count_hits=False)
        self._queries_counter.increment()
        if timed:
            self.trace.emit(
                tracing.SQL_ISSUED,
                seconds=perf_counter() - started,
                sql=sql,
                params=list(values),
                rows=0,
                kind="insert",
                statement_id=statement_id,
            )

    # -- index advisor -----------------------------------------------------------------

    def suggest_indexes(self) -> list[tuple[str, tuple[str, ...]]]:
        """Frequent patterns whose equality columns have no index yet."""
        if self.tracker is None:
            return []
        suggestions: list[tuple[str, tuple[str, ...]]] = []
        catalog = self.connection.database.catalog
        for table, columns, _count in self.tracker.frequent_patterns():
            if not catalog.has_table(table):
                continue  # views cannot be indexed
            storage = catalog.get_table(table).storage
            if storage.index_on(columns) is None:
                suggestions.append((table, columns))
        return suggestions

    def create_suggested_indexes(self) -> list[str]:
        """Act on the advisor's suggestions; returns created index names."""
        created: list[str] = []
        for table, columns in self.suggest_indexes():
            name = f"advisor_{table}_{'_'.join(columns)}".lower()
            if self.connection.database.catalog.has_index(name):
                continue
            column_list = ", ".join(columns)
            self.connection.execute(f"CREATE INDEX {name} ON {table} ({column_list})")
            created.append(name)
        return created
