"""Tests for the customer-scenario workloads: healthcare (§4),
finance/mule-fraud (§7), and police (§7)."""

import pytest

from repro.core import Db2Graph, generate_overlay
from repro.graph import __
from repro.relational import Database
from repro.workloads.finance import FinanceConfig, FinanceDataset, find_mule_chains
from repro.workloads.healthcare import (
    HealthcareConfig,
    HealthcareDataset,
    similar_diseases_script,
    synergy_sql,
)
from repro.workloads.police import PoliceConfig, PoliceDataset


class TestHealthcare:
    @pytest.fixture(scope="class")
    def setup(self):
        dataset = HealthcareDataset(HealthcareConfig(n_patients=30, seed=5))
        db = Database()
        dataset.install_relational(db)
        graph = Db2Graph.open(db, dataset.overlay_config())
        return dataset, db, graph

    def test_counts(self, setup):
        dataset, _db, graph = setup
        g = graph.traversal()
        assert g.V().hasLabel("patient").count().next() == 30
        assert g.V().hasLabel("disease").count().next() == len(dataset.diseases)
        assert g.E().hasLabel("hasDisease").count().next() == len(dataset.has_disease)

    def test_ontology_is_a_tree(self, setup):
        dataset, _db, graph = setup
        g = graph.traversal()
        # every non-root disease has exactly one parent
        n_edges = g.E().hasLabel("isa").count().next()
        assert n_edges == len(dataset.diseases) - 1

    def test_leaves_reach_root(self, setup):
        dataset, _db, graph = setup
        g = graph.traversal()
        leaf = dataset.leaf_diseases[0]
        root = (
            g.V(leaf)
            .repeat(__.out("isa"))
            .times(dataset.config.ontology_depth - 1)
            .values("conceptName")
            .toList()
        )
        assert root == ["disease (root)"]

    def test_similar_diseases_script_runs(self, setup):
        _dataset, _db, graph = setup
        result = graph.execute(similar_diseases_script(1))
        assert isinstance(result, list)
        assert all(len(row) == 2 for row in result)

    def test_synergy_sql_end_to_end(self, setup):
        _dataset, db, graph = setup
        graph.register_table_function()
        result = db.execute(synergy_sql(1))
        assert result.columns == ["patientID", "AVG(steps)", "AVG(exerciseMinutes)"]
        assert len(result.rows) >= 1

    def test_device_data_joins_by_subscription(self, setup):
        dataset, db, _graph = setup
        rows = db.execute(
            "SELECT COUNT(*) FROM Patient p JOIN DeviceData d "
            "ON p.subscriptionID = d.subscriptionID"
        ).scalar()
        assert rows == 30 * dataset.config.device_days


class TestFinance:
    @pytest.fixture(scope="class")
    def setup(self):
        dataset = FinanceDataset(FinanceConfig(n_accounts=200, n_rings=3, seed=13))
        db = Database()
        dataset.install_relational(db)
        graph = Db2Graph.open(db, dataset.overlay_config())
        return dataset, db, graph

    def test_account_kinds(self, setup):
        dataset, _db, graph = setup
        g = graph.traversal()
        assert g.V().has("kind", "fraudster").count().next() == 3
        assert g.V().has("kind", "beneficiary").count().next() == 3

    def test_rings_are_disjoint(self, setup):
        dataset, _db, _graph = setup
        members = [a for ring in dataset.rings for a in ring.chain]
        assert len(members) == len(set(members))

    def test_planted_rings_recovered(self, setup):
        dataset, _db, graph = setup
        chains = find_mule_chains(graph, max_hops=6)
        found = {tuple(c) for c in chains}
        for ring in dataset.rings:
            assert tuple(ring.chain) in found, f"ring {ring.chain} not detected"

    def test_chains_end_at_beneficiaries(self, setup):
        dataset, _db, graph = setup
        beneficiaries = set(dataset.beneficiary_ids())
        for chain in find_mule_chains(graph, max_hops=6):
            assert chain[-1] in beneficiaries
            assert chain[0] in set(dataset.fraudster_ids())

    def test_live_insert_changes_detection(self, setup):
        dataset, db, graph = setup
        ring = dataset.rings[0]
        db.execute(
            "INSERT INTO Txn VALUES (888001, ?, ?, 1.0, 1.0)",
            [ring.fraudster, ring.beneficiary],
        )
        direct = (
            graph.traversal()
            .V(f"acct::{ring.fraudster}")
            .out("transfer")
            .has("kind", "beneficiary")
            .dedup()
            .count()
            .next()
        )
        assert direct >= 1


class TestPolice:
    @pytest.fixture(scope="class")
    def setup(self):
        dataset = PoliceDataset(PoliceConfig(seed=17))
        db = Database()
        dataset.install_relational(db)
        graph = Db2Graph.open(db, generate_overlay(db))
        return dataset, db, graph

    def test_autooverlay_covers_schema(self, setup):
        _dataset, _db, graph = setup
        vertex_tables = {v.table_name for v in graph.topology.vertex_tables}
        assert vertex_tables == {"Person", "Organization", "Arrest", "Vehicle", "Phone"}
        edge_names = {e.name for e in graph.topology.edge_tables}
        assert "Arrest_Person" in edge_names
        assert "Person_Membership_Organization" in edge_names

    def test_suspect_phone_vehicle_case_study(self, setup):
        dataset, _db, graph = setup
        g = graph.traversal()
        person_id = dataset.vehicles[0][2]
        plates = (
            g.V(f"Person::{person_id}").in_("Vehicle_Person").values("plate").toList()
        )
        expected = [p for (_vid, p, owner) in dataset.vehicles if owner == person_id]
        assert sorted(plates) == sorted(expected)

    def test_gang_membership_traversal(self, setup):
        dataset, _db, graph = setup
        g = graph.traversal()
        person, org, _role = dataset.memberships[0]
        orgs = g.V(f"Person::{person}").out("Person_Membership_Organization").toList()
        assert f"Organization::{org}" in [v.id for v in orgs]

    def test_arrest_counts(self, setup):
        dataset, _db, graph = setup
        g = graph.traversal()
        assert g.E().hasLabel("Arrest_Person").count().next() == len(dataset.arrests)
