"""Property-based tests (hypothesis) for the relational engine.

These check engine invariants against a Python-side oracle: whatever
rows go in must come out, filters must agree with in-Python predicate
evaluation, and indexes must never change query results.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Database

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
)
rows_strategy = st.lists(
    st.tuples(st.integers(-100, 100), names, st.one_of(st.none(), st.integers(0, 99))),
    max_size=40,
)


def fresh_table(rows):
    db = Database()
    db.execute("CREATE TABLE t (a INT, name VARCHAR, score INT)")
    if rows:
        conn = db.connect()
        conn.insert_rows("t", rows)
    return db


@given(rows_strategy)
@settings(max_examples=50, deadline=None)
def test_inserted_rows_come_back(rows):
    db = fresh_table(rows)
    result = db.execute("SELECT * FROM t").rows
    assert sorted(result, key=repr) == sorted(rows, key=repr)


@given(rows_strategy, st.integers(-100, 100))
@settings(max_examples=50, deadline=None)
def test_filter_matches_python_oracle(rows, threshold):
    db = fresh_table(rows)
    result = db.execute("SELECT * FROM t WHERE a > ?", [threshold]).rows
    expected = [r for r in rows if r[0] > threshold]
    assert sorted(result, key=repr) == sorted(expected, key=repr)


@given(rows_strategy)
@settings(max_examples=50, deadline=None)
def test_count_and_sum_match_oracle(rows):
    db = fresh_table(rows)
    count = db.execute("SELECT COUNT(*) FROM t").scalar()
    count_scores = db.execute("SELECT COUNT(score) FROM t").scalar()
    total = db.execute("SELECT SUM(a) FROM t").scalar()
    assert count == len(rows)
    assert count_scores == sum(1 for r in rows if r[2] is not None)
    assert total == (sum(r[0] for r in rows) if rows else None)


@given(rows_strategy, st.integers(-100, 100))
@settings(max_examples=40, deadline=None)
def test_index_never_changes_results(rows, probe):
    db = fresh_table(rows)
    before = sorted(db.execute("SELECT * FROM t WHERE a = ?", [probe]).rows, key=repr)
    db.execute("CREATE INDEX idx_a ON t (a)")
    after = sorted(db.execute("SELECT * FROM t WHERE a = ?", [probe]).rows, key=repr)
    assert before == after


@given(rows_strategy, st.integers(-100, 100), st.integers(-100, 100))
@settings(max_examples=40, deadline=None)
def test_sorted_index_range_matches_oracle(rows, low, high):
    db = fresh_table(rows)
    db.execute("CREATE SORTED INDEX idx_a ON t (a)")
    result = db.execute("SELECT a FROM t WHERE a >= ? AND a < ?", [low, high]).rows
    expected = [(r[0],) for r in rows if low <= r[0] < high]
    assert sorted(result) == sorted(expected)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_order_by_produces_sorted_output(rows):
    db = fresh_table(rows)
    result = db.execute("SELECT a FROM t ORDER BY a").rows
    values = [r[0] for r in result]
    assert values == sorted(values)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_group_by_partitions_rows(rows):
    db = fresh_table(rows)
    result = db.execute("SELECT a, COUNT(*) FROM t GROUP BY a").rows
    from collections import Counter

    expected = Counter(r[0] for r in rows)
    assert dict(result) == dict(expected)
    # groups partition the table
    assert sum(count for _a, count in result) == len(rows)


@given(rows_strategy, st.data())
@settings(max_examples=30, deadline=None)
def test_update_then_rollback_is_identity(rows, data):
    db = fresh_table(rows)
    before = sorted(db.execute("SELECT * FROM t").rows, key=repr)
    conn = db.connect()
    conn.begin()
    delta = data.draw(st.integers(-5, 5))
    conn.execute("UPDATE t SET a = a + ?", [delta])
    conn.execute("DELETE FROM t WHERE score IS NULL")
    conn.rollback()
    after = sorted(db.execute("SELECT * FROM t").rows, key=repr)
    assert before == after


@given(st.lists(st.integers(0, 30), min_size=1, max_size=30, unique=True))
@settings(max_examples=40, deadline=None)
def test_pk_table_roundtrip_by_key(keys):
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    conn = db.connect()
    conn.insert_rows("t", [(k, k * 2) for k in keys])
    for k in keys:
        assert db.execute("SELECT v FROM t WHERE id = ?", [k]).scalar() == k * 2


@given(
    st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=30),
    st.lists(st.integers(0, 10), max_size=12, unique=True),
)
@settings(max_examples=30, deadline=None)
def test_join_matches_oracle(pairs, left_keys):
    db = Database()
    db.execute("CREATE TABLE l (k INT)")
    db.execute("CREATE TABLE r (k INT, v INT)")
    conn = db.connect()
    conn.insert_rows("l", [(k,) for k in left_keys])
    conn.insert_rows("r", pairs)
    result = db.execute("SELECT l.k, r.v FROM l JOIN r ON l.k = r.k").rows
    expected = [(lk, v) for lk in left_keys for (rk, v) in pairs if lk == rk]
    assert sorted(result) == sorted(expected)
