"""A parser/interpreter for Gremlin query *strings*.

The paper's ``graphQuery`` polymorphic table function (§4) receives
Gremlin as a SQL string literal, and the Gremlin Console interface does
the same.  This module evaluates such scripts against a
:class:`~repro.graph.traversal.GraphTraversalSource` without ``eval``:
a small tokenizer + recursive-descent parser executes method chains
directly on the traversal API.

Supported surface (the subset the paper's queries use, plus headroom):

* ``g.V(...)`` / ``g.E(...)`` chains with all fluent steps;
* anonymous sub-traversals inside ``repeat``/``filter``/``union``/
  ``until``/``emit``/``where``/``not`` — written either bare
  (``repeat(out('isa'))``) or with ``__.`` prefix;
* predicates ``P.eq/neq/gt/gte/lt/lte/within/without/between/inside/outside``;
* literals: ints, floats, single/double-quoted strings, ``true``/
  ``false``/``null``, and ``[a, b, c]`` lists;
* variables: ``x = g.V()...next(); g.V(x)...`` — multi-statement
  scripts separated by ``;``;
* comparisons inside ``filter(...)``: ``filter(outV().id() == id2)``
  is rewritten to ``filter(__.outV().id_().is_(P.eq(id2)))``;
* terminal calls ``next()``, ``toList()``, ``toSet()``, ``iterate()``,
  ``tryNext()``, ``hasNext()``.

Python-keyword renames are transparent: ``in`` -> ``in_``, ``is`` ->
``is_``, ``not`` -> ``not_``, ``id`` -> ``id_``, ``as`` -> ``as_``,
``sum``/``min``/``max`` -> ``sum_``/``min_``/``max_``, ``filter`` ->
``filter_``, ``map`` -> ``map_``, ``range`` -> ``range_``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .errors import GremlinSyntaxError
from .predicates import P
from .traversal import GraphTraversalSource, Traversal, __

_NAME_MAP = {
    "in": "in_",
    "is": "is_",
    "not": "not_",
    "id": "id_",
    "as": "as_",
    "sum": "sum_",
    "min": "min_",
    "max": "max_",
    "filter": "filter_",
    "map": "map_",
    "range": "range_",
    "from": "from_",
}

_TERMINALS = {
    "next", "toList", "toSet", "iterate", "tryNext", "hasNext", "explain", "profile",
}

_STEP_STARTERS = {
    # step names that may open an anonymous traversal without "__."
    "out", "in", "both", "outE", "inE", "bothE", "outV", "inV", "bothV",
    "otherV", "has", "hasLabel", "hasId", "hasNot", "values", "valueMap",
    "id", "label", "count", "dedup", "store", "aggregate", "cap", "repeat",
    "union", "coalesce", "where", "not", "is", "filter", "order", "limit",
    "path", "select", "fold", "unfold", "simplePath", "constant", "loops",
    "valueTuple", "sum", "mean", "min", "max", "groupCount", "emit", "until",
    "times", "group", "project", "choose", "optional", "identity",
    "sideEffect", "addV", "addE",
}


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

IDENT, NUMBER, STRING, OP, EOF = "IDENT", "NUMBER", "STRING", "OP", "EOF"


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            parts: list[str] = []
            while j < n:
                if text[j] == "\\" and j + 1 < n:
                    parts.append(text[j + 1])
                    j += 2
                    continue
                if text[j] == quote:
                    break
                parts.append(text[j])
                j += 1
            else:
                raise GremlinSyntaxError("unterminated string", i)
            tokens.append(_Token(STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # don't swallow a method call like 1.out(...)
                    if j + 1 < n and not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            if j < n and text[j] in "lL":  # Gremlin long suffix: 42L
                tokens.append(_Token(NUMBER, text[i:j], i))
                i = j + 1
                continue
            tokens.append(_Token(NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(_Token(IDENT, text[i:j], i))
            i = j
            continue
        if text.startswith(("==", "!=", ">=", "<="), i):
            tokens.append(_Token(OP, text[i : i + 2], i))
            i += 2
            continue
        if ch in ".(),;=[]<>":
            tokens.append(_Token(OP, ch, i))
            i += 1
            continue
        raise GremlinSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(_Token(EOF, "", n))
    return tokens


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


class GremlinScriptEvaluator:
    """Evaluates a Gremlin script against a traversal source."""

    def __init__(self, g: GraphTraversalSource, variables: dict[str, Any] | None = None):
        self.g = g
        self.variables: dict[str, Any] = dict(variables or {})
        self._tokens: list[_Token] = []
        self._pos = 0

    # -- public API -------------------------------------------------------------

    def evaluate(self, script: str) -> Any:
        """Run a ``;``-separated script; return the last statement's value.

        A trailing traversal without a terminal call is materialized
        with ``toList()``.
        """
        self._tokens = _tokenize(script)
        self._pos = 0
        result: Any = None
        while not self._at(EOF):
            result = self._statement()
            while self._accept_op(";"):
                pass
        if isinstance(result, Traversal):
            result = result.toList()
        return result

    # -- token helpers --------------------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _at(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == OP and token.value == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if not self._accept_op(op):
            raise GremlinSyntaxError(f"expected {op!r}, found {token.value!r}", token.position)

    # -- grammar -----------------------------------------------------------------------

    def _statement(self) -> Any:
        # assignment: ident '=' expr   (but not '==')
        if (
            self._at(IDENT)
            and self._peek(1).kind == OP
            and self._peek(1).value == "="
            and not (self._peek(2).kind == OP and self._peek(2).value == "=")
        ):
            name = self._advance().value
            self._advance()  # '='
            value = self._expression()
            if isinstance(value, Traversal):
                value = value.toList()
            self.variables[name] = value
            return value
        return self._expression()

    def _expression(self) -> Any:
        value = self._chain_or_literal()
        token = self._peek()
        if token.kind == OP and token.value in ("==", "!=", ">", "<", ">=", "<="):
            self._advance()
            other = self._chain_or_literal()
            return _Comparison(token.value, value, other)
        return value

    def _chain_or_literal(self) -> Any:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == STRING:
            self._advance()
            return token.value
        if token.kind == OP and token.value == "[":
            self._advance()
            items: list[Any] = []
            if not (self._peek().kind == OP and self._peek().value == "]"):
                items.append(self._expression())
                while self._accept_op(","):
                    items.append(self._expression())
            self._expect_op("]")
            return items
        if token.kind == IDENT:
            return self._ident_expression()
        raise GremlinSyntaxError(f"unexpected token {token.value!r}", token.position)

    def _ident_expression(self) -> Any:
        token = self._advance()
        word = token.value
        if word in ("true", "false"):
            return word == "true"
        if word == "null":
            return None
        if word == "P":
            return self._predicate()
        if word == "TextP":
            return self._predicate(text=True)
        if word == "g":
            return self._chain(self.g)
        if word == "__":
            self._expect_op(".")
            return self._anonymous_chain()
        # step name opening an anonymous traversal: repeat(out('isa')...)
        if word in _STEP_STARTERS and self._peek().kind == OP and self._peek().value == "(":
            return self._anonymous_chain(first_name=word)
        # plain variable reference
        if word in self.variables:
            value = self.variables[word]
            # allow chains off a variable holding a traversal/list? keep simple
            return value
        raise GremlinSyntaxError(f"unknown identifier {word!r}", token.position)

    def _predicate(self, text: bool = False) -> P:
        from .predicates import TextP

        kind = TextP if text else P
        self._expect_op(".")
        name_token = self._advance()
        if name_token.kind != IDENT:
            raise GremlinSyntaxError("expected predicate name", name_token.position)
        factory = getattr(kind, name_token.value, None)
        if factory is None or name_token.value.startswith("_"):
            raise GremlinSyntaxError(
                f"unknown predicate {kind.__name__}.{name_token.value}",
                name_token.position,
            )
        args = self._arguments()
        return factory(*args)

    def _anonymous_chain(self, first_name: str | None = None) -> Traversal:
        traversal = __.start()
        if first_name is not None:
            traversal = self._apply_call(traversal, first_name)
        else:
            name = self._method_name()
            traversal = self._apply_call(traversal, name)
        return self._chain(traversal)

    def _chain(self, receiver: Any) -> Any:
        while self._peek().kind == OP and self._peek().value == ".":
            self._advance()
            name = self._method_name()
            if name in _TERMINALS and isinstance(receiver, Traversal):
                self._expect_op("(")
                self._expect_op(")")
                receiver = getattr(receiver, name)()
                continue
            receiver = self._apply_call(receiver, name)
        return receiver

    def _method_name(self) -> str:
        token = self._advance()
        if token.kind != IDENT:
            raise GremlinSyntaxError(f"expected method name, found {token.value!r}", token.position)
        return token.value

    def _apply_call(self, receiver: Any, name: str) -> Any:
        args = self._arguments()
        method_name = _NAME_MAP.get(name, name)
        method = getattr(receiver, method_name, None)
        if method is None:
            raise GremlinSyntaxError(f"unknown step {name!r}")
        converted = [self._convert_argument(name, a) for a in args]
        return method(*converted)

    def _convert_argument(self, step_name: str, arg: Any) -> Any:
        if isinstance(arg, _Comparison):
            return arg.to_filter()
        return arg

    def _arguments(self) -> list[Any]:
        self._expect_op("(")
        args: list[Any] = []
        if not (self._peek().kind == OP and self._peek().value == ")"):
            args.append(self._expression())
            while self._accept_op(","):
                args.append(self._expression())
        self._expect_op(")")
        return args


@dataclass
class _Comparison:
    """A comparison between a sub-traversal and a value, as appears in
    ``filter(outV().id() == id2)``.  Rewritten to a filter traversal."""

    op: str
    left: Any
    right: Any

    def to_filter(self) -> Traversal:
        traversal, value = self.left, self.right
        op = self.op
        if not isinstance(traversal, Traversal):
            traversal, value = self.right, self.left
            op = {">": "<", "<": ">", ">=": "<=", "<=": ">="}.get(op, op)
        if not isinstance(traversal, Traversal):
            raise GremlinSyntaxError("comparison requires a sub-traversal on one side")
        predicate = {
            "==": P.eq,
            "!=": P.neq,
            ">": P.gt,
            "<": P.lt,
            ">=": P.gte,
            "<=": P.lte,
        }[op](value)
        return traversal.is_(predicate)


def evaluate_gremlin(
    g: GraphTraversalSource, script: str, variables: dict[str, Any] | None = None
) -> Any:
    """Convenience wrapper: evaluate one script, return the final value."""
    return GremlinScriptEvaluator(g, variables).evaluate(script)
