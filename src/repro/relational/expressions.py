"""Expression AST and compilation.

Expressions appear in SELECT lists, WHERE/HAVING clauses, JOIN
conditions, and UPDATE assignments.  To keep the per-row cost low (the
graph layer funnels every traversal step through SQL, so this is the
hot path), expressions *compile* to Python closures against a
:class:`Scope` that maps column references to tuple positions once, at
plan time.  The compiled closure signature is ``fn(row, ctx)`` where
``row`` is the current input tuple and ``ctx`` is the statement's
:class:`~repro.relational.executor.ExecContext` (for parameter
markers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from . import values as V
from .errors import CatalogError, ExecutionError, SqlSyntaxError


class Scope:
    """Resolves column references to positions in a row tuple.

    ``columns`` is an ordered list of ``(qualifier, name)`` pairs; the
    qualifier is a table alias (lowercased) or ``None`` for computed
    columns.
    """

    def __init__(self, columns: Sequence[tuple[str | None, str]]):
        self.columns = [(q.lower() if q else None, n.lower()) for q, n in columns]

    def resolve(self, qualifier: str | None, name: str) -> int:
        name = name.lower()
        if qualifier is not None:
            qualifier = qualifier.lower()
            matches = [
                i for i, (q, n) in enumerate(self.columns) if q == qualifier and n == name
            ]
        else:
            matches = [i for i, (q, n) in enumerate(self.columns) if n == name]
        if not matches:
            target = f"{qualifier}.{name}" if qualifier else name
            raise CatalogError(f"unknown column {target!r}")
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column reference {name!r}")
        return matches[0]

    def __len__(self) -> int:
        return len(self.columns)


CompiledExpr = Callable[[tuple, Any], Any]


class Expression:
    """Base class for expression AST nodes."""

    def compile(self, scope: Scope) -> CompiledExpr:
        raise NotImplementedError

    def references(self) -> set[tuple[str | None, str]]:
        """All (qualifier, column) pairs this expression reads."""
        return set()

    def is_constant(self) -> bool:
        """True when the expression needs neither rows nor parameters."""
        return False

    def sql(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.sql()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.sql() == other.sql()

    def __hash__(self) -> int:
        return hash(self.sql())


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    value: Any

    def compile(self, scope: Scope) -> CompiledExpr:
        value = self.value
        return lambda row, ctx: value

    def is_constant(self) -> bool:
        return True

    def sql(self) -> str:
        return format_literal(self.value)


@dataclass(frozen=True, eq=False)
class ColumnRef(Expression):
    qualifier: str | None
    name: str

    def compile(self, scope: Scope) -> CompiledExpr:
        pos = scope.resolve(self.qualifier, self.name)
        return lambda row, ctx: row[pos]

    def references(self) -> set[tuple[str | None, str]]:
        return {(self.qualifier.lower() if self.qualifier else None, self.name.lower())}

    def sql(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True, eq=False)
class Param(Expression):
    """A positional parameter marker (``?``)."""

    index: int

    def compile(self, scope: Scope) -> CompiledExpr:
        index = self.index
        def run(row: tuple, ctx: Any) -> Any:
            try:
                return ctx.params[index]
            except IndexError:
                raise ExecutionError(
                    f"missing value for parameter {index + 1}"
                ) from None
        return run

    def is_constant(self) -> bool:
        return False

    def sql(self) -> str:
        return "?"


_BINARY_FUNCS: dict[str, Callable[[Any, Any], Any]] = {
    "=": V.sql_eq,
    "<>": V.sql_ne,
    "!=": V.sql_ne,
    "<": V.sql_lt,
    "<=": V.sql_le,
    ">": V.sql_gt,
    ">=": V.sql_ge,
    "+": V.sql_add,
    "-": V.sql_sub,
    "*": V.sql_mul,
    "/": V.sql_div,
    "||": V.sql_concat,
    "AND": V.sql_and,
    "OR": V.sql_or,
    "LIKE": V.sql_like,
}


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def compile(self, scope: Scope) -> CompiledExpr:
        func = _BINARY_FUNCS.get(self.op.upper())
        if func is None:
            raise SqlSyntaxError(f"unsupported operator {self.op!r}")
        lf = self.left.compile(scope)
        rf = self.right.compile(scope)
        if self.op.upper() == "AND":
            return lambda row, ctx: V.sql_and(lf(row, ctx), rf(row, ctx))
        if self.op.upper() == "OR":
            return lambda row, ctx: V.sql_or(lf(row, ctx), rf(row, ctx))
        return lambda row, ctx: func(lf(row, ctx), rf(row, ctx))

    def references(self) -> set[tuple[str | None, str]]:
        return self.left.references() | self.right.references()

    def is_constant(self) -> bool:
        return self.left.is_constant() and self.right.is_constant()

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op.upper()} {self.right.sql()})"


@dataclass(frozen=True, eq=False)
class UnaryOp(Expression):
    op: str  # "NOT" or "-"
    operand: Expression

    def compile(self, scope: Scope) -> CompiledExpr:
        inner = self.operand.compile(scope)
        op = self.op.upper()
        if op == "NOT":
            return lambda row, ctx: V.sql_not(inner(row, ctx))
        if op == "-":
            def negate(row: tuple, ctx: Any) -> Any:
                value = inner(row, ctx)
                if value is None:
                    return None
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ExecutionError(f"cannot negate {value!r}")
                return -value
            return negate
        raise SqlSyntaxError(f"unsupported unary operator {self.op!r}")

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def is_constant(self) -> bool:
        return self.operand.is_constant()

    def sql(self) -> str:
        return f"({self.op.upper()} {self.operand.sql()})"


@dataclass(frozen=True, eq=False)
class InList(Expression):
    expr: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def compile(self, scope: Scope) -> CompiledExpr:
        ef = self.expr.compile(scope)
        item_fns = [item.compile(scope) for item in self.items]
        negated = self.negated

        if all(not item.references() for item in self.items):
            # Row-independent items (literals, parameters, pure function
            # calls) evaluate to the same values for every row of one
            # execution.  Materialize them once per ExecContext into a
            # hash set so the batched ``id IN (?, ?, ...)`` probes the
            # graph layer emits cost O(1) per scanned row instead of
            # O(items).  Python ``==``/``hash`` agree with sql_eq for
            # every storable scalar (bool==int, int==float included);
            # unhashable values fall back to the sql_eq scan.
            memo_key = id(self)

            def run(row: tuple, ctx: Any) -> bool | None:
                value = ef(row, ctx)
                if value is None:
                    return None
                memo = getattr(ctx, "inlist_memo", None)
                if memo is None:
                    memo = {}
                    ctx.inlist_memo = memo
                entry = memo.get(memo_key)
                if entry is None:
                    hashable: set = set()
                    unhashable: list = []
                    seen_null = False
                    for fn in item_fns:
                        candidate = fn(row, ctx)
                        if candidate is None:
                            seen_null = True
                        else:
                            try:
                                hashable.add(candidate)
                            except TypeError:
                                unhashable.append(candidate)
                    entry = (hashable, unhashable, seen_null)
                    memo[memo_key] = entry
                hashable, unhashable, seen_null = entry
                try:
                    hit = value in hashable
                except TypeError:
                    hit = any(V.sql_eq(value, c) for c in hashable)
                if not hit:
                    hit = any(V.sql_eq(value, c) for c in unhashable)
                if hit:
                    return not negated
                if seen_null:
                    return None
                return negated

            return run

        def run(row: tuple, ctx: Any) -> bool | None:
            value = ef(row, ctx)
            if value is None:
                return None
            seen_null = False
            for fn in item_fns:
                candidate = fn(row, ctx)
                if candidate is None:
                    seen_null = True
                elif V.sql_eq(value, candidate):
                    return not negated
            if seen_null:
                return None
            return negated

        return run

    def references(self) -> set[tuple[str | None, str]]:
        refs = self.expr.references()
        for item in self.items:
            refs |= item.references()
        return refs

    def is_constant(self) -> bool:
        return self.expr.is_constant() and all(i.is_constant() for i in self.items)

    def sql(self) -> str:
        middle = ", ".join(i.sql() for i in self.items)
        word = "NOT IN" if self.negated else "IN"
        return f"({self.expr.sql()} {word} ({middle}))"


@dataclass(frozen=True, eq=False)
class Between(Expression):
    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def compile(self, scope: Scope) -> CompiledExpr:
        ef = self.expr.compile(scope)
        lf = self.low.compile(scope)
        hf = self.high.compile(scope)
        negated = self.negated

        def run(row: tuple, ctx: Any) -> bool | None:
            value = ef(row, ctx)
            result = V.sql_and(V.sql_ge(value, lf(row, ctx)), V.sql_le(value, hf(row, ctx)))
            return V.sql_not(result) if negated else result

        return run

    def references(self) -> set[tuple[str | None, str]]:
        return self.expr.references() | self.low.references() | self.high.references()

    def sql(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.expr.sql()} {word} {self.low.sql()} AND {self.high.sql()})"


@dataclass(frozen=True, eq=False)
class IsNull(Expression):
    expr: Expression
    negated: bool = False

    def compile(self, scope: Scope) -> CompiledExpr:
        inner = self.expr.compile(scope)
        if self.negated:
            return lambda row, ctx: inner(row, ctx) is not None
        return lambda row, ctx: inner(row, ctx) is None

    def references(self) -> set[tuple[str | None, str]]:
        return self.expr.references()

    def sql(self) -> str:
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.expr.sql()} {word})"


class SubqueryMixin:
    """Shared machinery for uncorrelated subquery expressions: the inner
    SELECT is planned lazily (first execution) and re-planned when DDL
    changes; its rows are evaluated once per statement execution and
    cached on the ExecContext."""

    select: Any  # sql_ast.SelectStmt

    def _rows(self, ctx: Any) -> list[tuple]:
        cache = getattr(ctx, "_subquery_cache", None)
        if cache is None:
            cache = {}
            ctx._subquery_cache = cache
        key = id(self)
        if key not in cache:
            from .planner import Planner

            planned = Planner(ctx.database).plan_select(self.select)
            if hasattr(ctx.database, "executor"):
                ctx.database.executor._check_access(planned.accessed, ctx.session)
            cache[key] = list(planned.root.rows(ctx))
        return cache[key]


@dataclass(frozen=True, eq=False)
class InSubquery(Expression, SubqueryMixin):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated subqueries only."""

    expr: Expression
    select: Any
    negated: bool = False

    def compile(self, scope: Scope) -> CompiledExpr:
        ef = self.expr.compile(scope)
        negated = self.negated

        def run(row: tuple, ctx: Any) -> bool | None:
            value = ef(row, ctx)
            if value is None:
                return None
            rows = self._rows(ctx)
            if rows and len(rows[0]) != 1:
                raise ExecutionError("IN subquery must return exactly one column")
            seen_null = False
            for (candidate,) in rows:
                if candidate is None:
                    seen_null = True
                elif V.sql_eq(value, candidate):
                    return not negated
            if seen_null:
                return None
            return negated

        return run

    def references(self) -> set[tuple[str | None, str]]:
        return self.expr.references()

    def sql(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.expr.sql()} {word} (<subquery:{id(self.select)}>))"


@dataclass(frozen=True, eq=False)
class Exists(Expression, SubqueryMixin):
    """``[NOT] EXISTS (SELECT ...)`` — uncorrelated subqueries only."""

    select: Any
    negated: bool = False

    def compile(self, scope: Scope) -> CompiledExpr:
        negated = self.negated

        def run(row: tuple, ctx: Any) -> bool:
            found = bool(self._rows(ctx))
            return (not found) if negated else found

        return run

    def sql(self) -> str:
        word = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({word} (<subquery:{id(self.select)}>))"


AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

_SCALAR_FUNCS: dict[str, Callable[..., Any]] = {
    "UPPER": lambda s: None if s is None else str(s).upper(),
    "LOWER": lambda s: None if s is None else str(s).lower(),
    "LENGTH": lambda s: None if s is None else len(str(s)),
    "ABS": lambda x: None if x is None else abs(x),
    "COALESCE": lambda *args: next((a for a in args if a is not None), None),
    "CONCAT": lambda *args: None if any(a is None for a in args) else "".join(map(str, args)),
}


@dataclass(frozen=True, eq=False)
class FunctionCall(Expression):
    name: str
    args: tuple[Expression, ...]
    star: bool = False  # COUNT(*)

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in AGGREGATE_NAMES

    def compile(self, scope: Scope) -> CompiledExpr:
        if self.is_aggregate:
            raise ExecutionError(
                f"aggregate {self.name.upper()} used outside of aggregation context"
            )
        func = _SCALAR_FUNCS.get(self.name.upper())
        if func is None:
            raise SqlSyntaxError(f"unknown function {self.name!r}")
        arg_fns = [a.compile(scope) for a in self.args]
        return lambda row, ctx: func(*(fn(row, ctx) for fn in arg_fns))

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def contains_aggregate(self) -> bool:
        return self.is_aggregate

    def sql(self) -> str:
        inner = "*" if self.star else ", ".join(a.sql() for a in self.args)
        return f"{self.name.upper()}({inner})"


def contains_aggregate(expr: Expression) -> bool:
    """Recursively detect aggregate function calls."""
    if isinstance(expr, FunctionCall):
        if expr.is_aggregate:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, (IsNull,)):
        return contains_aggregate(expr.expr)
    if isinstance(expr, Between):
        return any(contains_aggregate(e) for e in (expr.expr, expr.low, expr.high))
    if isinstance(expr, InList):
        return contains_aggregate(expr.expr) or any(contains_aggregate(i) for i in expr.items)
    return False


def split_conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expression]) -> Expression | None:
    """Rebuild a single predicate from conjuncts (inverse of split)."""
    result: Expression | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def format_literal(value: Any) -> str:
    """Render a Python value as a SQL literal (used by the SQL dialect
    module when generating queries)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
