"""The Graph Structure module (paper §6, Figure 3): the overlay-backed
implementation of the graph structure API.

Every GSA step of a traversal lands here and becomes one or more SQL
queries (via the SQL Dialect module).  The data-dependent runtime
optimizations of §6.3 are all implemented — and individually
toggleable through :class:`RuntimeOptimizations` so the ablation
benchmarks can quantify each:

* ``use_src_dst_tables``   — src_v_table/dst_v_table narrowing
* ``use_vertex_from_edge`` — build the vertex straight from the edge
  row when a table serves as both vertex and edge table
* ``use_property_names``   — eliminate tables lacking a pushed-down
  property
* ``use_label_values``     — eliminate fixed-label tables whose label
  doesn't match
* ``use_prefixed_ids``     — pin the table from a prefixed id and
  decompose composite ids into conjunctive predicates
* ``use_implicit_edge_ids``— use the label inside ``src::label::dst``
  edge ids for table elimination
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..cache.graph_cache import NEGATIVE
from ..graph.model import Direction, Edge, GraphProvider, Pushdown, Vertex
from ..graph.predicates import P
from ..obs import metrics as M
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceRecorder
from .fanout import FanoutPool, chunked, resolve_batch_size
from .sql_dialect import SqlDialect, SqlPredicate, predicate_to_sql
from .topology import EdgeTopology, Topology, VertexTopology


@dataclass
class RuntimeOptimizations:
    use_src_dst_tables: bool = True
    use_vertex_from_edge: bool = True
    use_property_names: bool = True
    use_label_values: bool = True
    use_prefixed_ids: bool = True
    use_implicit_edge_ids: bool = True

    @classmethod
    def all_on(cls) -> "RuntimeOptimizations":
        return cls()

    @classmethod
    def all_off(cls) -> "RuntimeOptimizations":
        return cls(False, False, False, False, False, False)


class StructureStats:
    """Observability for tests and ablation benches — a facade over the
    shared :class:`MetricsRegistry` that keeps the historical attribute
    names (and ``+= 1`` call sites) intact."""

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def vertex_table_queries(self) -> int:
        return self.registry.counter(M.VERTEX_TABLE_QUERIES).value

    @vertex_table_queries.setter
    def vertex_table_queries(self, value: int) -> None:
        self.registry.counter(M.VERTEX_TABLE_QUERIES).value = value

    @property
    def edge_table_queries(self) -> int:
        return self.registry.counter(M.EDGE_TABLE_QUERIES).value

    @edge_table_queries.setter
    def edge_table_queries(self, value: int) -> None:
        self.registry.counter(M.EDGE_TABLE_QUERIES).value = value

    @property
    def tables_eliminated(self) -> int:
        return self.registry.counter(M.TABLES_ELIMINATED).value

    @tables_eliminated.setter
    def tables_eliminated(self, value: int) -> None:
        self.registry.counter(M.TABLES_ELIMINATED).value = value

    @property
    def vertices_from_edges(self) -> int:
        return self.registry.counter(M.VERTICES_FROM_EDGES).value

    @vertices_from_edges.setter
    def vertices_from_edges(self, value: int) -> None:
        self.registry.counter(M.VERTICES_FROM_EDGES).value = value

    @property
    def lazy_vertices(self) -> int:
        return self.registry.counter(M.LAZY_VERTICES).value

    @lazy_vertices.setter
    def lazy_vertices(self, value: int) -> None:
        self.registry.counter(M.LAZY_VERTICES).value = value

    def reset(self) -> None:
        for counter in list(self.registry.counters()):
            if counter.name.startswith("structure."):
                counter.reset()

    def __repr__(self) -> str:
        return (
            f"StructureStats(vertex_table_queries={self.vertex_table_queries}, "
            f"edge_table_queries={self.edge_table_queries}, "
            f"tables_eliminated={self.tables_eliminated}, "
            f"vertices_from_edges={self.vertices_from_edges}, "
            f"lazy_vertices={self.lazy_vertices})"
        )


class OverlayVertex(Vertex):
    __slots__ = ("row",)

    def __init__(self, *args: Any, row: Mapping[str, Any] | None = None, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.row = row


class OverlayEdge(Edge):
    __slots__ = ("row",)

    def __init__(self, *args: Any, row: Mapping[str, Any] | None = None, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.row = row


class OverlayGraph(GraphProvider):
    """GraphProvider over relational tables through a graph overlay."""

    def __init__(
        self,
        topology: Topology,
        dialect: SqlDialect,
        opts: RuntimeOptimizations | None = None,
        registry: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
        *,
        pool: FanoutPool | None = None,
        batch_size: int | None = None,
        cache: Any = None,
    ):
        self.topology = topology
        self.dialect = dialect
        self.opts = opts or RuntimeOptimizations()
        # Optional GraphCache (repro.cache): level 2 memoizes endpoint
        # materialization (bulk_materialize groups, load_vertex point
        # lookups); level 1 lives inside the dialect.
        self.cache = cache
        # Share the dialect's registry/recorder by default so one
        # snapshot covers both modules.
        self.registry = registry if registry is not None else dialect.registry
        self.trace = recorder if recorder is not None else dialect.trace
        self.stats = StructureStats(self.registry)
        # Parallel fan-out pool (None/parallelism=1 = serial, today's
        # behavior) and the traverser-coalescing unit: at most this many
        # ids ride one IN (...) probe per table.  ``None`` falls back to
        # the REPRO_BATCH_SIZE env default, then 256.
        self.pool = pool
        self.batch_size = resolve_batch_size(batch_size)
        # The step layer reads this to size its traverser batches so the
        # two batching levels agree (see graph/steps.py).
        self.traverser_batch_size = self.batch_size

    def describe(self) -> str:
        return "Db2Graph(OverlayGraph)"

    # -- parallel fan-out ----------------------------------------------

    def _run_fanout(self, tasks: Sequence[Callable[[], list]]) -> list[list]:
        """Run a fan-out's per-(table, batch) tasks, returning each
        task's result list in submission order (deterministic demux).

        Serial unless a pool with parallelism > 1 is configured.  The
        caller's thread-local budget tracker is re-entered inside each
        worker so parallel sub-statements hit the same checkpoints —
        and a budget tripped by one worker cancels the outstanding
        tasks of the batch (see FanoutPool.run)."""
        if not tasks:
            return []
        pool = self.pool
        if pool is None or pool.parallelism <= 1 or len(tasks) == 1:
            return [task() for task in tasks]
        budget = self.dialect.active_budget
        scope = None
        if budget is not None:
            dialect = self.dialect

            def scope(task: Callable[[], list]) -> list:
                with dialect.budget_scope(budget):
                    return task()

        return pool.run(tasks, scope=scope)

    # -- observability -------------------------------------------------

    def _note_elimination(self, table: str, rule: str) -> None:
        """Count a table elimination under its §6.3 rule, mirrored 1:1
        by a ``table.eliminated`` trace event."""
        self.stats.tables_eliminated += 1
        self.registry.counter(M.eliminated_counter_name(rule)).increment()
        self.trace.emit(tracing.TABLE_ELIMINATED, table=table, rule=rule)

    def _note_table_query(self, table: str, kind: str) -> None:
        if kind == "vertex":
            self.stats.vertex_table_queries += 1
        else:
            self.stats.edge_table_queries += 1
        self.trace.emit(tracing.TABLE_QUERIED, table=table, kind=kind)

    # ------------------------------------------------------------------
    # GSA entry point: g.V(ids) / g.E(ids)
    # ------------------------------------------------------------------

    def graph_step(
        self, return_type: str, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> Iterator[Any]:
        if return_type == "vertex":
            yield from self._vertices(ids, pushdown)
        else:
            yield from self._edges(ids, pushdown, endpoint=None)

    # -- vertices ------------------------------------------------------------

    def _vertices(self, ids: Sequence[Any] | None, pushdown: Pushdown) -> Iterator[Any]:
        candidates, _ = self._candidate_vertex_tables(pushdown)
        if pushdown.aggregate is not None:
            if ids is not None and len({str(i) for i in ids}) != len(ids):
                # duplicate ids contribute multiply to aggregates
                # (g.V(1,1).count() == 2): aggregate in memory instead
                fetch = pushdown.copy()
                fetch.aggregate = None
                yield _memory_aggregate_final(list(self._vertices(ids, fetch)), pushdown)
                return
            yield self._aggregate_over_tables(candidates, ids, pushdown, kind="vertex")
            return
        if ids is not None:
            # Gremlin semantics: g.V(1, 1) yields the vertex twice and
            # preserves request order; the SQL IN-list dedups, so fetch
            # unique ids and re-emit per request.  The per-(table, batch)
            # statements are independent, so they fan out on the pool;
            # results demux positionally, keeping serial order.
            unique = list(dict.fromkeys(ids))
            tasks: list[Callable[[], list]] = []
            for vtop in candidates:
                tasks.extend(self._vertex_table_tasks(vtop, unique, pushdown))
            fetched: dict[str, Any] = {}
            for batch in self._run_fanout(tasks):
                for vertex in batch:
                    fetched.setdefault(str(vertex.id), vertex)
            for requested in ids:
                vertex = fetched.get(str(requested))
                if vertex is not None:
                    yield vertex
            return
        if self._parallel_active() and len(candidates) > 1:
            scan_tasks: list[Callable[[], list]] = []
            for vtop in candidates:
                scan_tasks.extend(self._vertex_table_tasks(vtop, ids, pushdown))
            for batch in self._run_fanout(scan_tasks):
                yield from batch
            return
        # Serial scans stay lazy: a downstream limit()/next() that stops
        # pulling must not issue SQL against the remaining tables.
        for vtop in candidates:
            yield from self._query_vertex_table(vtop, ids, pushdown)

    def _parallel_active(self) -> bool:
        return self.pool is not None and self.pool.parallelism > 1

    def _candidate_vertex_tables(
        self, pushdown: Pushdown, record: bool = True
    ) -> tuple[list[VertexTopology], list[tuple[str, str]]]:
        """Surviving vertex tables plus ``(table, rule)`` eliminations.

        ``record=False`` computes without touching counters/traces —
        used by ``explain()`` for side-effect-free previews.
        """
        candidates = list(self.topology.vertex_tables)
        eliminated: list[tuple[str, str]] = []
        labels = _label_values(pushdown)
        if self.opts.use_label_values and labels is not None:
            survivors = []
            for v in candidates:
                if v.fixed_label is None or v.fixed_label in labels:
                    survivors.append(v)
                else:
                    eliminated.append((v.table_name, "label_values"))
            candidates = survivors
        if self.opts.use_property_names:
            survivors = self._eliminate_by_properties(candidates, pushdown)
            kept = {id(t) for t in survivors}
            eliminated.extend(
                (t.table_name, "property_names") for t in candidates if id(t) not in kept
            )
            candidates = survivors
        if record:
            for table, rule in eliminated:
                self._note_elimination(table, rule)
        return candidates, eliminated

    def _eliminate_by_properties(self, candidates: list, pushdown: Pushdown) -> list:
        required = {
            key.lower() for key, _p in pushdown.predicates if not key.startswith("~")
        }
        if pushdown.aggregate_key is not None:
            required.add(pushdown.aggregate_key.lower())
        survivors = [
            t for t in candidates if all(t.has_property(name) for name in required)
        ]
        if pushdown.projection:
            wanted = {p.lower() for p in pushdown.projection}
            # a table lacking *every* projected property can emit nothing
            survivors = [
                t for t in survivors if any(t.has_property(name) for name in wanted)
            ]
        return survivors

    def _query_vertex_table(
        self, vtop: VertexTopology, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> Iterator[OverlayVertex]:
        for predicates in self._vertex_predicate_groups(vtop, ids, pushdown):
            if predicates is None:
                continue
            yield from self._run_vertex_select(vtop, predicates, pushdown)

    def _run_vertex_select(
        self, vtop: VertexTopology, predicates: list[SqlPredicate], pushdown: Pushdown
    ) -> list[OverlayVertex]:
        """One SQL statement against one vertex table — the fan-out
        unit.  Safe to run on a pool worker: counters/trace are locked
        and the MVCC read path takes no table locks."""
        columns = vtop.required_columns(self._effective_projection(pushdown))
        self._note_table_query(vtop.table_name, "vertex")
        out: list[OverlayVertex] = []
        for row in self.dialect.select(vtop.table_name, columns, predicates):
            vertex = self._make_vertex(vtop, row, pushdown)
            if vertex is not None:
                out.append(vertex)
        return out

    def _vertex_table_tasks(
        self, vtop: VertexTopology, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> list[Callable[[], list[OverlayVertex]]]:
        """The table's statements as schedulable thunks, one per
        predicate group (= per id batch).  Groups are materialized here,
        on the scheduling thread, so elimination events stay ordered."""
        return [
            lambda group=group: self._run_vertex_select(vtop, group, pushdown)
            for group in self._vertex_predicate_groups(vtop, ids, pushdown)
            if group is not None
        ]

    def _vertex_predicate_groups(
        self, vtop: VertexTopology, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> Iterator[list[SqlPredicate] | None]:
        """One (or more) SQL predicate lists for this table.

        Multiple groups arise for composite ids, where each id becomes
        its own conjunctive lookup.  A ``None`` group means "skip".
        """
        base = self._sql_predicates(vtop, pushdown)
        if ids is None:
            yield base
            return
        strict = self.opts.use_prefixed_ids
        decoded: list[dict[str, Any]] = []
        for vertex_id in ids:
            values = vtop.id_template.decode(vertex_id, strict=strict)
            if values is None:
                continue
            coerced = self._coerce_values(vtop, values)
            if coerced is not None:
                decoded.append(coerced)
        if not decoded:
            self._note_elimination(vtop.table_name, "prefixed_ids")
            return
        if len(vtop.id_template.columns) == 1:
            # one varying column (constants already verified by decode):
            # coalesce up to batch_size ids per probe (batch_size=1
            # degenerates to one `id = ?` statement per traverser)
            column = vtop.relation.canonical(vtop.id_template.columns[0])
            values = tuple(
                dict.fromkeys(d[vtop.id_template.columns[0]] for d in decoded)
            )
            for chunk in chunked(values, self.batch_size):
                if len(chunk) == 1:
                    yield [SqlPredicate(column, "=", (chunk[0],), batch=True)] + base
                else:
                    yield [SqlPredicate(column, "IN", tuple(chunk), batch=True)] + base
            return
        # multi-column composite id: conjunctive predicates per id (§6.3)
        for values_map in decoded:
            group = [
                SqlPredicate(vtop.relation.canonical(col), "=", (value,))
                for col, value in values_map.items()
            ]
            yield group + base

    def _coerce_values(self, top: Any, values: dict[str, Any]) -> dict[str, Any] | None:
        coerced: dict[str, Any] = {}
        for column, value in values.items():
            try:
                coerced[column] = top.relation.coerce(column, value)
            except Exception:
                return None  # value can't inhabit the column's type
        return coerced

    def _sql_predicates(self, top: Any, pushdown: Pushdown) -> list[SqlPredicate]:
        """Translate pushdown property/label predicates to SQL for one
        table; untranslatable ones are re-checked in memory anyway."""
        predicates: list[SqlPredicate] = []
        for key, p in pushdown.predicates:
            if key == "~label":
                if top.fixed_label is None and top.label.column:
                    converted = predicate_to_sql(top.relation.canonical(top.label.column), p)
                    if converted:
                        predicates.extend(converted)
                continue
            if key.startswith("~"):
                continue  # ~id handled via id groups; ~src_v/~dst_v by edges
            if not top.has_property(key):
                continue  # post-filter rejects rows from this table
            converted = predicate_to_sql(top.relation.canonical(key), p)
            if converted:
                predicates.extend(converted)
        return predicates

    def _make_vertex(
        self, vtop: VertexTopology, row: Mapping[str, Any], pushdown: Pushdown
    ) -> OverlayVertex | None:
        label = vtop.row_label(row)
        if not pushdown.matches_labels(label):
            return None
        properties = vtop.row_properties(row, self._effective_projection(pushdown))
        vertex_id = vtop.row_id(row)
        if not pushdown.matches_predicates(properties, label, vertex_id):
            return None
        return OverlayVertex(
            vertex_id,
            label,
            properties,
            provider=self,
            source_table=vtop.table_name,
            row=row,
        )

    @staticmethod
    def _effective_projection(pushdown: Pushdown) -> tuple[str, ...] | None:
        """Projection plus every property the predicates need to re-check."""
        if pushdown.projection is None:
            return None
        extra = [
            key for key, _p in pushdown.predicates if not key.startswith("~")
        ]
        if pushdown.aggregate_key:
            extra.append(pushdown.aggregate_key)
        return tuple(dict.fromkeys((*pushdown.projection, *extra)))

    # -- edges ------------------------------------------------------------------

    def _edges(
        self,
        ids: Sequence[Any] | None,
        pushdown: Pushdown,
        endpoint: tuple[Direction, Sequence[Any]] | None,
    ) -> Iterator[Any]:
        candidates, _ = self._candidate_edge_tables(pushdown, edge_labels=None)
        if pushdown.aggregate is not None and endpoint is None:
            if ids is not None and len({str(i) for i in ids}) != len(ids):
                fetch = pushdown.copy()
                fetch.aggregate = None
                yield _memory_aggregate_final(list(self._edges(ids, fetch, None)), pushdown)
                return
            yield self._aggregate_over_tables(candidates, ids, pushdown, kind="edge")
            return
        if ids is not None:
            unique = list(dict.fromkeys(ids))
            tasks: list[Callable[[], list]] = []
            for etop in candidates:
                tasks.extend(self._edge_table_tasks(etop, unique, pushdown))
            fetched: dict[str, Any] = {}
            for batch in self._run_fanout(tasks):
                for edge in batch:
                    fetched.setdefault(str(edge.id), edge)
            for requested in ids:
                edge = fetched.get(str(requested))
                if edge is not None:
                    yield edge
            return
        if self._parallel_active() and len(candidates) > 1:
            scan_tasks: list[Callable[[], list]] = []
            for etop in candidates:
                scan_tasks.extend(self._edge_table_tasks(etop, ids, pushdown))
            for batch in self._run_fanout(scan_tasks):
                yield from batch
            return
        for etop in candidates:
            yield from self._query_edge_table(etop, ids, pushdown)

    def _candidate_edge_tables(
        self,
        pushdown: Pushdown,
        edge_labels: tuple[str, ...] | None,
        record: bool = True,
    ) -> tuple[list[EdgeTopology], list[tuple[str, str]]]:
        candidates = list(self.topology.edge_tables)
        eliminated: list[tuple[str, str]] = []
        labels = _label_values(pushdown)
        if edge_labels is not None:
            labels = tuple(edge_labels) if labels is None else tuple(
                set(labels) & set(edge_labels)
            )
        if self.opts.use_label_values and labels is not None:
            survivors = []
            for e in candidates:
                if e.fixed_label is None or e.fixed_label in labels:
                    survivors.append(e)
                else:
                    eliminated.append((e.table_name, "label_values"))
            candidates = survivors
        if self.opts.use_property_names:
            survivors = self._eliminate_by_properties(candidates, pushdown)
            kept = {id(t) for t in survivors}
            eliminated.extend(
                (t.table_name, "property_names") for t in candidates if id(t) not in kept
            )
            candidates = survivors
        if record:
            for table, rule in eliminated:
                self._note_elimination(table, rule)
        return candidates, eliminated

    def _query_edge_table(
        self, etop: EdgeTopology, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> Iterator[OverlayEdge]:
        for predicates in self._edge_id_groups(etop, ids, pushdown):
            if predicates is None:
                continue
            yield from self._run_edge_select(etop, predicates, pushdown)

    def _run_edge_select(
        self, etop: EdgeTopology, predicates: list[SqlPredicate], pushdown: Pushdown
    ) -> list[OverlayEdge]:
        columns = etop.required_columns(self._effective_projection(pushdown))
        self._note_table_query(etop.table_name, "edge")
        out: list[OverlayEdge] = []
        for row in self.dialect.select(etop.table_name, columns, predicates):
            edge = self._make_edge(etop, row, pushdown)
            if edge is not None:
                out.append(edge)
        return out

    def _edge_table_tasks(
        self, etop: EdgeTopology, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> list[Callable[[], list[OverlayEdge]]]:
        return [
            lambda group=group: self._run_edge_select(etop, group, pushdown)
            for group in self._edge_id_groups(etop, ids, pushdown)
            if group is not None
        ]

    def _edge_id_groups(
        self, etop: EdgeTopology, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> Iterator[list[SqlPredicate] | None]:
        base = self._sql_predicates(etop, pushdown)
        base.extend(self._endpoint_predicates(etop, pushdown))
        if ids is None:
            yield base
            return
        strict_implicit = self.opts.use_implicit_edge_ids
        strict_prefix = self.opts.use_prefixed_ids
        matched_any = False
        for edge_id in ids:
            group: list[SqlPredicate] | None = None
            if etop.implicit_id is not None:
                decoded = etop.implicit_id.decode(edge_id, strict=strict_implicit)
                if decoded is None:
                    continue
                src_id, dst_id = decoded
                src_values = etop.src_template.decode(src_id, strict=strict_prefix)
                dst_values = etop.dst_template.decode(dst_id, strict=strict_prefix)
                if src_values is None or dst_values is None:
                    continue
                src_values = self._coerce_values(etop, src_values)
                dst_values = self._coerce_values(etop, dst_values)
                if src_values is None or dst_values is None:
                    continue
                group = [
                    SqlPredicate(etop.relation.canonical(col), "=", (value,))
                    for col, value in {**src_values, **dst_values}.items()
                ]
            elif etop.id_template is not None:
                values = etop.id_template.decode(edge_id, strict=strict_prefix)
                if values is None:
                    continue
                coerced = self._coerce_values(etop, values)
                if coerced is None:
                    continue
                group = [
                    SqlPredicate(etop.relation.canonical(col), "=", (value,))
                    for col, value in coerced.items()
                ]
            if group is not None:
                matched_any = True
                yield group + base
        if not matched_any:
            self._note_elimination(
                etop.table_name,
                "implicit_edge_ids" if etop.implicit_id is not None else "prefixed_ids",
            )

    def _endpoint_predicates(self, etop: EdgeTopology, pushdown: Pushdown) -> list[SqlPredicate]:
        """~src_v / ~dst_v pushdown predicates (from folded
        ``filter(inV().id() == x)`` patterns)."""
        predicates: list[SqlPredicate] = []
        for key, p in pushdown.predicates:
            if key not in ("~src_v", "~dst_v"):
                continue
            template = etop.src_template if key == "~src_v" else etop.dst_template
            targets = (
                list(p.value) if p.op == "within" else [p.value] if p.op == "eq" else None
            )
            if targets is None:
                continue  # verified in memory instead
            groups: list[dict[str, Any]] = []
            for target in targets:
                values = template.decode(target, strict=self.opts.use_prefixed_ids)
                if values is None:
                    continue
                coerced = self._coerce_values(etop, values)
                if coerced is not None:
                    groups.append(coerced)
            if not groups:
                # no target can live in this table: impossible predicate
                column = etop.relation.canonical(template.columns[0])
                predicates.append(SqlPredicate(column, "IS NULL"))
                continue
            if template.is_single_column:
                column = etop.relation.canonical(template.columns[0])
                values = tuple(g[template.columns[0]] for g in groups)
                op = "=" if len(values) == 1 else "IN"
                predicates.append(
                    SqlPredicate(column, op, values if op == "IN" else (values[0],))
                )
            elif len(groups) == 1:
                for col, value in groups[0].items():
                    predicates.append(
                        SqlPredicate(etop.relation.canonical(col), "=", (value,))
                    )
            # multiple composite targets: leave to in-memory verification
        return predicates

    def _make_edge(
        self, etop: EdgeTopology, row: Mapping[str, Any], pushdown: Pushdown
    ) -> OverlayEdge | None:
        label = etop.row_label(row)
        if not pushdown.matches_labels(label):
            return None
        properties = etop.row_properties(row, self._effective_projection(pushdown))
        edge_id = etop.row_id(row)
        if not self._edge_matches_predicates(etop, row, properties, label, edge_id, pushdown):
            return None
        return OverlayEdge(
            edge_id,
            label,
            out_v_id=etop.row_src(row),
            in_v_id=etop.row_dst(row),
            properties=properties,
            provider=self,
            source_table=etop.name,
            out_v_table=etop.src_v_table if self.opts.use_src_dst_tables else None,
            in_v_table=etop.dst_v_table if self.opts.use_src_dst_tables else None,
            row=row,
        )

    def _edge_matches_predicates(
        self,
        etop: EdgeTopology,
        row: Mapping[str, Any],
        properties: Mapping[str, Any],
        label: str,
        edge_id: Any,
        pushdown: Pushdown,
    ) -> bool:
        for key, p in pushdown.predicates:
            if key == "~src_v":
                if not p.test(etop.row_src(row)):
                    return False
            elif key == "~dst_v":
                if not p.test(etop.row_dst(row)):
                    return False
            elif key == "~label":
                if not p.test(label):
                    return False
            elif key == "~id":
                if not p.test(edge_id):
                    return False
            else:
                if not p.test(properties.get(key)):
                    return False
        return True

    # ------------------------------------------------------------------
    # GSA entry point: out()/in()/both()/outE()/... (batched)
    # ------------------------------------------------------------------

    def adjacent(
        self,
        vertices: Sequence[Vertex],
        direction: Direction,
        edge_labels: tuple[str, ...] | None,
        return_type: str,
        pushdown: Pushdown,
    ) -> dict[Any, list[Any]]:
        directions = (
            (Direction.OUT, Direction.IN) if direction is Direction.BOTH else (direction,)
        )
        edge_pushdown = pushdown if return_type == "edge" else Pushdown(labels=None)
        candidates, _ = self._candidate_edge_tables(edge_pushdown, edge_labels)

        aggregate_edges = pushdown.aggregate is not None and return_type == "edge"
        result: dict[Any, list[Any]] = {}
        per_vertex_edges: dict[Any, list[tuple[OverlayEdge, Direction]]] = {
            v.id: [] for v in vertices
        }

        # Plan the whole fan-out first — one task per (table, direction,
        # id batch) — then dispatch.  Results come back in submission
        # order, so the demux below fills per_vertex_edges exactly as
        # the serial nested loop always did.
        tasks: list[Callable[[], list]] = []
        task_directions: list[Direction] = []
        for etop in candidates:
            for d in directions:
                matching = self._vertices_matching_endpoint(etop, vertices, d)
                if not matching:
                    self._note_elimination(etop.table_name, "src_dst_tables")
                    continue
                if aggregate_edges:
                    tasks.append(
                        lambda etop=etop, matching=matching, d=d: [
                            self._aggregate_edges_for(
                                etop, matching, d, edge_pushdown, edge_labels
                            )
                        ]
                    )
                    task_directions.append(d)
                    continue
                for fetch in self._edge_fetch_tasks(
                    etop, matching, d, edge_pushdown, edge_labels
                ):
                    tasks.append(fetch)
                    task_directions.append(d)

        batches = self._run_fanout(tasks)

        if aggregate_edges:
            aggregates = [value for batch in batches for value in batch]
            result[None] = [_combine_aggregates(pushdown.aggregate, aggregates)]
            return result

        for batch, d in zip(batches, task_directions):
            for edge in batch:
                key = edge.out_v_id if d is Direction.OUT else edge.in_v_id
                if key in per_vertex_edges:
                    per_vertex_edges[key].append((edge, d))

        if return_type == "edge":
            for vertex_id, pairs in per_vertex_edges.items():
                result[vertex_id] = [edge for edge, _d in pairs]
            return result

        # return_type == 'vertex': resolve the other endpoints
        return self._resolve_adjacent_vertices(per_vertex_edges, pushdown)

    def _vertices_matching_endpoint(
        self, etop: EdgeTopology, vertices: Sequence[Vertex], d: Direction
    ) -> list[Vertex]:
        """src/dst vertex-table narrowing (§6.3): which of the input
        vertices can possibly have edges in this table+direction?"""
        declared = etop.src_v_table if d is Direction.OUT else etop.dst_v_table
        template = etop.src_template if d is Direction.OUT else etop.dst_template
        matching: list[Vertex] = []
        for vertex in vertices:
            if (
                self.opts.use_src_dst_tables
                and declared is not None
                and vertex.source_table is not None
                and vertex.source_table.lower() != declared.lower()
            ):
                continue
            if template.decode(vertex.id, strict=self.opts.use_prefixed_ids) is None:
                continue
            matching.append(vertex)
        return matching

    def _endpoint_id_predicates(
        self, etop: EdgeTopology, vertices: Sequence[Vertex], d: Direction
    ) -> Iterator[list[SqlPredicate]]:
        template = etop.src_template if d is Direction.OUT else etop.dst_template
        strict = self.opts.use_prefixed_ids
        if len(template.columns) == 1:
            column = etop.relation.canonical(template.columns[0])
            values: list[Any] = []
            for vertex in vertices:
                decoded = template.decode(vertex.id, strict=strict)
                if decoded is None:
                    continue
                coerced = self._coerce_values(etop, decoded)
                if coerced is not None:
                    values.append(coerced[template.columns[0]])
            values = list(dict.fromkeys(values))
            if not values:
                return
            for chunk in chunked(values, self.batch_size):
                if len(chunk) == 1:
                    yield [SqlPredicate(column, "=", (chunk[0],), batch=True)]
                else:
                    yield [SqlPredicate(column, "IN", tuple(chunk), batch=True)]
            return
        seen: set[tuple[Any, ...]] = set()
        for vertex in vertices:
            decoded = template.decode(vertex.id, strict=strict)
            if decoded is None:
                continue
            coerced = self._coerce_values(etop, decoded)
            if coerced is None:
                continue
            # duplicate traversers at one composite-id vertex must not
            # re-probe (and re-emit) the same edges — mirror the
            # dict.fromkeys dedup of the single-column path above
            key = tuple(sorted(coerced.items()))
            if key in seen:
                continue
            seen.add(key)
            yield [
                SqlPredicate(etop.relation.canonical(col), "=", (value,))
                for col, value in coerced.items()
            ]

    def _edge_label_sql(
        self, etop: EdgeTopology, edge_labels: tuple[str, ...] | None
    ) -> list[SqlPredicate]:
        if edge_labels is None or etop.fixed_label is not None:
            return []
        if not etop.label.column:
            return []
        column = etop.relation.canonical(etop.label.column)
        if len(edge_labels) == 1:
            return [SqlPredicate(column, "=", (edge_labels[0],))]
        return [SqlPredicate(column, "IN", tuple(edge_labels))]

    def _fetch_edges_for(
        self,
        etop: EdgeTopology,
        vertices: Sequence[Vertex],
        d: Direction,
        pushdown: Pushdown,
        edge_labels: tuple[str, ...] | None,
    ) -> Iterator[OverlayEdge]:
        for task in self._edge_fetch_tasks(etop, vertices, d, pushdown, edge_labels):
            yield from task()

    def _edge_fetch_tasks(
        self,
        etop: EdgeTopology,
        vertices: Sequence[Vertex],
        d: Direction,
        pushdown: Pushdown,
        edge_labels: tuple[str, ...] | None,
    ) -> list[Callable[[], list[OverlayEdge]]]:
        """One thunk per id batch: each runs a single SELECT against the
        edge table and returns its matching edges."""
        base = self._sql_predicates(etop, pushdown)
        base.extend(self._endpoint_predicates(etop, pushdown))
        base.extend(self._edge_label_sql(etop, edge_labels))
        label_filter = Pushdown(labels=edge_labels) if edge_labels else None
        columns = etop.required_columns(self._effective_projection(pushdown))

        def run(id_group: list[SqlPredicate]) -> list[OverlayEdge]:
            self._note_table_query(etop.table_name, "edge")
            out: list[OverlayEdge] = []
            for row in self.dialect.select(etop.table_name, columns, id_group + base):
                edge = self._make_edge(etop, row, pushdown)
                if edge is None:
                    continue
                if label_filter is not None and not label_filter.matches_labels(edge.label):
                    continue
                out.append(edge)
            return out

        return [
            lambda id_group=id_group: run(id_group)
            for id_group in self._endpoint_id_predicates(etop, vertices, d)
        ]

    def _aggregate_edges_for(
        self,
        etop: EdgeTopology,
        vertices: Sequence[Vertex],
        d: Direction,
        pushdown: Pushdown,
        edge_labels: tuple[str, ...] | None,
    ) -> Any:
        # Duplicate endpoint ids (g.V(1, 1).outE().count()) must each
        # contribute to the aggregate, but the SQL IN-list dedups them —
        # fetch and weight each edge by its endpoint's multiplicity.
        multiplicity: dict[str, int] = {}
        for vertex in vertices:
            key = str(vertex.id)
            multiplicity[key] = multiplicity.get(key, 0) + 1
        if any(count > 1 for count in multiplicity.values()):
            fetch_pushdown = pushdown.copy()
            fetch_pushdown.aggregate = None
            unique = list({str(v.id): v for v in vertices}.values())
            weighted: list[OverlayEdge] = []
            for edge in self._fetch_edges_for(etop, unique, d, fetch_pushdown, edge_labels):
                endpoint = str(edge.out_v_id if d is Direction.OUT else edge.in_v_id)
                weighted.extend([edge] * multiplicity.get(endpoint, 1))
            return _memory_aggregate(weighted, pushdown)
        # Aggregates push down only when everything else does too;
        # otherwise fall back to fetching and aggregating in memory.
        if not self._fully_pushable(etop, pushdown, edge_labels):
            fetch_pushdown = pushdown.copy()
            fetch_pushdown.aggregate = None
            edges = list(self._fetch_edges_for(etop, vertices, d, fetch_pushdown, edge_labels))
            return _memory_aggregate(edges, pushdown)
        base = self._sql_predicates(etop, pushdown)
        base.extend(self._endpoint_predicates(etop, pushdown))
        base.extend(self._edge_label_sql(etop, edge_labels))
        partials: list[Any] = []
        for id_group in self._endpoint_id_predicates(etop, vertices, d):
            self._note_table_query(etop.table_name, "edge")
            partials.append(
                self._table_aggregate(etop.table_name, pushdown, id_group + base)
            )
        return _combine_aggregates(pushdown.aggregate, partials)

    def _fully_pushable(
        self, etop: EdgeTopology, pushdown: Pushdown, edge_labels: tuple[str, ...] | None
    ) -> bool:
        if edge_labels is not None and etop.fixed_label is None and not etop.label.column:
            return False
        if edge_labels is not None and etop.fixed_label is not None:
            if etop.fixed_label not in edge_labels:
                return False
        for key, p in pushdown.predicates:
            if key in ("~src_v", "~dst_v"):
                template = etop.src_template if key == "~src_v" else etop.dst_template
                if p.op not in ("eq", "within"):
                    return False
                targets = list(p.value) if p.op == "within" else [p.value]
                if not template.is_single_column and len(targets) > 1:
                    return False
                continue
            if key == "~label":
                if etop.fixed_label is None and not etop.label.column:
                    return False
                continue
            if key == "~id":
                return False
            if not etop.has_property(key):
                continue  # table can't match; COUNT(*) with impossible pred is fine
            column = etop.relation.canonical(key)
            if predicate_to_sql(column, p) is None:
                return False
        if pushdown.aggregate_key is not None and not etop.has_property(pushdown.aggregate_key):
            return False
        return True

    def _table_aggregate(
        self, table: str, pushdown: Pushdown, predicates: list[SqlPredicate]
    ) -> Any:
        kind = pushdown.aggregate
        key = pushdown.aggregate_key
        if kind == "count":
            return self.dialect.aggregate_value(table, "count", None, predicates) or 0
        if kind == "mean":
            return self.dialect.sum_and_count(table, key or "", predicates)
        return self.dialect.aggregate_value(table, kind or "count", key, predicates)

    def _resolve_adjacent_vertices(
        self,
        per_vertex_edges: dict[Any, list[tuple[OverlayEdge, Direction]]],
        pushdown: Pushdown,
    ) -> dict[Any, list[Any]]:
        needs_resolution = bool(
            pushdown.predicates or pushdown.labels or pushdown.projection or pushdown.aggregate
        )
        targets: dict[Any, list[tuple[Any, str | None]]] = {}
        all_ids: list[Any] = []
        for vertex_id, pairs in per_vertex_edges.items():
            entry: list[tuple[Any, str | None]] = []
            for edge, d in pairs:
                if d is Direction.OUT:
                    other_id, hint = edge.in_v_id, edge.in_v_table
                else:
                    other_id, hint = edge.out_v_id, edge.out_v_table
                entry.append((other_id, hint))
                all_ids.append(other_id)
            targets[vertex_id] = entry

        result: dict[Any, list[Any]] = {}
        if not needs_resolution:
            for vertex_id, entry in targets.items():
                vertices = []
                for other_id, hint in entry:
                    self.stats.lazy_vertices += 1
                    self.trace.emit(tracing.VERTEX_LAZY, table=hint)
                    vertices.append(
                        Vertex(other_id, provider=self, source_table=hint)
                    )
                result[vertex_id] = vertices
            return result

        resolved: dict[Any, Vertex] = {}
        unique_ids = list(dict.fromkeys(all_ids))
        if unique_ids:
            for vertex in self._vertices(unique_ids, pushdown):
                resolved[vertex.id] = vertex
        for vertex_id, entry in targets.items():
            result[vertex_id] = [
                resolved[other_id] for other_id, _hint in entry if other_id in resolved
            ]
        if pushdown.aggregate is not None:
            flattened = [v for vs in result.values() for v in vs]
            return {None: [_memory_aggregate_final(flattened, pushdown)]}
        return result

    # ------------------------------------------------------------------
    # Edge endpoints: outV()/inV()
    # ------------------------------------------------------------------

    def edge_vertex(self, edge: Edge, direction: Direction) -> Iterator[Vertex]:
        if direction is Direction.BOTH:
            yield from self.edge_vertex(edge, Direction.OUT)
            yield from self.edge_vertex(edge, Direction.IN)
            return
        endpoint = "src" if direction is Direction.OUT else "dst"
        vertex_id = edge.endpoint_id(direction)
        # §6.3: vertex table is also the edge table -> build from the row
        if (
            self.opts.use_vertex_from_edge
            and isinstance(edge, OverlayEdge)
            and edge.row is not None
            and edge.source_table is not None
        ):
            try:
                etop = next(
                    e
                    for e in self.topology.edge_tables
                    if e.name.lower() == edge.source_table.lower()
                )
            except StopIteration:
                etop = None
            if etop is not None:
                vtop = self.topology.vertex_subsumed_by_edge(etop, endpoint)
                if vtop is not None and any(
                    c.lower() not in edge.row for c in vtop.required_columns()
                ):
                    # the edge was fetched with a projection that dropped
                    # some vertex columns — the row can't build the vertex
                    vtop = None
                if vtop is not None:
                    self.stats.vertices_from_edges += 1
                    self.trace.emit(
                        tracing.VERTEX_FROM_EDGE, table=vtop.table_name
                    )
                    yield OverlayVertex(
                        vtop.row_id(edge.row),
                        vtop.row_label(edge.row),
                        vtop.row_properties(edge.row),
                        provider=self,
                        source_table=vtop.table_name,
                        row=edge.row,
                    )
                    return
        hint = edge.out_v_table if direction is Direction.OUT else edge.in_v_table
        self.stats.lazy_vertices += 1
        self.trace.emit(tracing.VERTEX_LAZY, table=hint)
        yield Vertex(vertex_id, provider=self, source_table=hint)

    # ------------------------------------------------------------------
    # Mutation: addV()/addE() translate to SQL INSERTs
    # ------------------------------------------------------------------

    def insert_vertex(self, label: str, properties: dict[str, Any]) -> Vertex:
        """``g.addV(label).property(...)``: INSERT into the unique
        fixed-label vertex table.  Properties that belong to the id or
        label columns flow into them (e.g. a primary-key property)."""
        vtop = self._unique_table_for_label(self.topology.vertex_tables, label, "vertex")
        columns, values = self._row_from_properties(vtop, properties, label)
        self.dialect.insert(vtop.table_name, columns, values)
        row = {c.lower(): v for c, v in zip(columns, values)}
        return OverlayVertex(
            vtop.row_id(row),
            label,
            vtop.row_properties(row),
            provider=self,
            source_table=vtop.table_name,
            row=row,
        )

    def insert_edge(
        self, label: str, src_id: Any, dst_id: Any, properties: dict[str, Any]
    ) -> Edge:
        """``g.addE(label).from_(..).to(..)``: INSERT into the unique
        fixed-label edge table, decomposing endpoint ids into their
        source/destination columns."""
        etop = self._unique_table_for_label(self.topology.edge_tables, label, "edge")
        src_values = etop.src_template.decode(src_id)
        dst_values = etop.dst_template.decode(dst_id)
        if src_values is None or dst_values is None:
            from ..graph.errors import TraversalError

            raise TraversalError(
                f"edge endpoints {src_id!r} -> {dst_id!r} do not match table "
                f"{etop.table_name!r}'s src/dst id shapes"
            )
        merged = dict(properties)
        for column, value in {**src_values, **dst_values}.items():
            merged[column] = etop.relation.coerce(column, value)
        columns, values = self._row_from_properties(etop, merged, label)
        self.dialect.insert(etop.table_name, columns, values)
        row = {c.lower(): v for c, v in zip(columns, values)}
        return self._make_edge(etop, row, Pushdown())

    def _unique_table_for_label(self, tables: list, label: str, kind: str):
        matches = [t for t in tables if t.fixed_label == label]
        if len(matches) != 1:
            from ..graph.errors import TraversalError

            raise TraversalError(
                f"cannot insert: label {label!r} maps to {len(matches)} {kind} "
                f"tables (need exactly one fixed-label table)"
            )
        top = matches[0]
        if top.relation.is_view:
            from ..graph.errors import TraversalError

            raise TraversalError(f"cannot insert into view-backed table {top.table_name!r}")
        return top

    @staticmethod
    def _row_from_properties(top: Any, properties: dict[str, Any], label: str):
        """Map property names (case-insensitively) onto table columns."""
        by_lower = {k.lower(): v for k, v in properties.items()}
        columns: list[str] = []
        values: list[Any] = []
        consumed: set[str] = set()
        for column in top.relation.columns:
            key = column.lower()
            if key in by_lower:
                columns.append(column)
                values.append(by_lower[key])
                consumed.add(key)
        unknown = set(by_lower) - consumed
        if unknown:
            from ..graph.errors import TraversalError

            raise TraversalError(
                f"properties {sorted(unknown)} have no columns in {top.table_name!r}"
            )
        return columns, values

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------

    def bulk_materialize(self, vertices: Sequence[Vertex]) -> None:
        """Fill a batch of lazy endpoint vertices with as few SQL
        statements as possible: vertices sharing a table hint batch
        into one IN-list query; unhinted ones go through the normal
        multi-table id resolution in one pass."""
        by_hint: dict[str | None, list[Vertex]] = {}
        for vertex in vertices:
            if vertex.is_materialized:
                continue
            hint = vertex.source_table if self.opts.use_src_dst_tables else None
            by_hint.setdefault(hint, []).append(vertex)
        empty = Pushdown()

        def materialize_group(hint: str | None, group: list[Vertex]) -> list:
            ids = list(dict.fromkeys(v.id for v in group))
            ticket = None
            if self.cache is not None:
                # The (hint, id-tuple) group is the cache unit: the
                # hint-table-then-fallback logic below is group-
                # composition dependent, so a hit must replay exactly
                # one previously computed group, never per-id slices.
                status, payload = self.cache.lookup_group(
                    self.dialect.connection,
                    self._vertex_relations(),
                    hint,
                    tuple(ids),
                )
                if status == "hit":
                    found = {
                        vid: (label, dict(items), table)
                        for vid, label, items, table in payload
                    }
                    for vertex in group:
                        entry = found.get(vertex.id)
                        if entry is not None:
                            vertex.absorb(*entry)
                    return []
                if status == "miss":
                    ticket = payload
            loaded: dict[Any, OverlayVertex] = {}
            if hint is not None:
                try:
                    vtop = self.topology.vertex_table(hint)
                except Exception:
                    vtop = None
                if vtop is not None:
                    for vertex in self._query_vertex_table(vtop, ids, empty):
                        loaded[vertex.id] = vertex
            if not loaded:
                for vertex in self._vertices(ids, empty):
                    loaded.setdefault(vertex.id, vertex)
            # Each input vertex belongs to exactly one hint group, so
            # absorbing here is safe even when groups run on workers.
            for vertex in group:
                fetched = loaded.get(vertex.id)
                if fetched is not None:
                    vertex.absorb(fetched.label, fetched.properties, fetched.source_table)
            if ticket is not None:
                self.cache.store(
                    ticket,
                    tuple(
                        (vid, v.label, tuple(v.properties.items()), v.source_table)
                        for vid, v in loaded.items()
                    ),
                )
            return []

        self._run_fanout(
            [
                lambda hint=hint, group=group: materialize_group(hint, group)
                for hint, group in by_hint.items()
            ]
        )

    def _vertex_relations(self) -> tuple[str, ...]:
        """The level-2 cache's dependency set: every vertex table of the
        current topology (views included; the cache resolves them)."""
        return tuple(v.table_name for v in self.topology.vertex_tables)

    def load_vertex(self, vertex_id: Any, table_hint: str | None = None) -> Vertex | None:
        ticket = None
        if self.cache is not None:
            scope = (
                table_hint
                if table_hint is not None and self.opts.use_src_dst_tables
                else None
            )
            status, payload = self.cache.lookup_vertex(
                self.dialect.connection, self._vertex_relations(), scope, vertex_id
            )
            if status == "hit":
                if payload == NEGATIVE:
                    return None
                found_id, label, items, source_table = payload
                return OverlayVertex(
                    found_id,
                    label,
                    dict(items),
                    provider=self,
                    source_table=source_table,
                )
            if status == "miss":
                ticket = payload
        result = self._load_vertex_uncached(vertex_id, table_hint)
        if ticket is not None:
            self.cache.store(
                ticket,
                NEGATIVE
                if result is None
                else (
                    result.id,
                    result.label,
                    tuple(result.properties.items()),
                    result.source_table,
                ),
            )
        return result

    def _load_vertex_uncached(
        self, vertex_id: Any, table_hint: str | None = None
    ) -> Vertex | None:
        candidates: list[VertexTopology]
        if table_hint is not None and self.opts.use_src_dst_tables:
            try:
                candidates = [self.topology.vertex_table(table_hint)]
            except Exception:
                candidates = list(self.topology.vertex_tables)
        else:
            candidates = list(self.topology.vertex_tables)
            if self.opts.use_prefixed_ids:
                pinned = self.topology.vertex_table_for_prefix(vertex_id)
                if pinned is not None:
                    candidates = [pinned]
        empty = Pushdown()
        for vtop in candidates:
            for vertex in self._query_vertex_table(vtop, [vertex_id], empty):
                return vertex
        return None

    def load_edge(self, edge_id: Any) -> Edge | None:
        empty = Pushdown()
        for edge in self._edges([edge_id], empty, endpoint=None):
            return edge
        return None

    # ------------------------------------------------------------------
    # Aggregates over whole tables (for g.V().count() etc.)
    # ------------------------------------------------------------------

    def _aggregate_over_tables(
        self, candidates: list, ids: Sequence[Any] | None, pushdown: Pushdown, kind: str
    ) -> Any:
        tasks: list[Callable[[], list]] = []
        for top in candidates:
            if not self._table_fully_pushable(top, pushdown):
                def memory_partial(top=top) -> list:
                    fetch_pushdown = pushdown.copy()
                    fetch_pushdown.aggregate = None
                    if kind == "vertex":
                        elements = list(self._query_vertex_table(top, ids, fetch_pushdown))
                    else:
                        elements = list(self._query_edge_table(top, ids, fetch_pushdown))
                    return [_memory_aggregate(elements, pushdown)]

                tasks.append(memory_partial)
                continue
            groups = (
                self._vertex_predicate_groups(top, ids, pushdown)
                if kind == "vertex"
                else self._edge_id_groups(top, ids, pushdown)
            )
            for predicates in groups:
                if predicates is None:
                    continue

                def sql_partial(top=top, predicates=predicates) -> list:
                    self._note_table_query(top.table_name, kind)
                    return [self._table_aggregate(top.table_name, pushdown, predicates)]

                tasks.append(sql_partial)
        partials = [value for batch in self._run_fanout(tasks) for value in batch]
        return _combine_aggregates(pushdown.aggregate, partials)

    def _table_fully_pushable(self, top: Any, pushdown: Pushdown) -> bool:
        for key, p in pushdown.predicates:
            if key == "~label":
                if top.fixed_label is not None:
                    if not p.test(top.fixed_label):
                        # impossible: contributes zero, still pushable
                        continue
                    continue
                if not top.label.column:
                    return False
                continue
            if key in ("~id", "~src_v", "~dst_v"):
                if key == "~id":
                    continue  # id groups encode it exactly
                return False
            if not top.has_property(key):
                continue
            if predicate_to_sql(top.relation.canonical(key), p) is None:
                return False
        if pushdown.aggregate_key is not None and not top.has_property(pushdown.aggregate_key):
            return False
        # label predicates that exclude this fixed-label table entirely
        labels = _label_values(pushdown)
        if labels is not None and top.fixed_label is not None and top.fixed_label not in labels:
            return False
        return True


def _label_values(pushdown: Pushdown) -> tuple[str, ...] | None:
    """Constant label values implied by the pushdown, if any."""
    values: set[str] | None = None
    if pushdown.labels is not None:
        values = set(pushdown.labels)
    for key, p in pushdown.predicates:
        if key != "~label":
            continue
        if p.op == "eq":
            candidate = {p.value}
        elif p.op == "within":
            candidate = set(p.value)
        else:
            continue
        values = candidate if values is None else values & candidate
    return tuple(sorted(values)) if values is not None else None


def _memory_aggregate_final(elements: list, pushdown: Pushdown) -> Any:
    """Terminal in-memory aggregate (mean folded to its final value)."""
    return _combine_aggregates(pushdown.aggregate, [_memory_aggregate(elements, pushdown)])


def _memory_aggregate(elements: list, pushdown: Pushdown) -> Any:
    kind = pushdown.aggregate
    if kind == "count":
        return len(elements)
    key = pushdown.aggregate_key
    values = [e.value(key) for e in elements if key and e.has_property(key)]
    if kind == "mean":
        return (float(sum(values)), len(values))
    if not values:
        return None
    if kind == "sum":
        return sum(values)
    if kind == "min":
        return min(values)
    if kind == "max":
        return max(values)
    return None


def _combine_aggregates(kind: str | None, partials: list[Any]) -> Any:
    if kind == "count":
        return sum(p or 0 for p in partials)
    if kind == "mean":
        total = 0.0
        count = 0
        for partial in partials:
            if partial is None:
                continue
            s, c = partial
            total += s or 0
            count += c or 0
        return total / count if count else None
    values = [p for p in partials if p is not None]
    if not values:
        return None
    if kind == "sum":
        return sum(values)
    if kind == "min":
        return min(values)
    if kind == "max":
        return max(values)
    return None
