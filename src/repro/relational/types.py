"""SQL type system.

Each SQL type is a singleton-ish object that knows how to validate and
coerce Python values, so the storage layer can keep rows as plain Python
tuples while still enforcing column typing at the boundary.

NULL is represented by Python ``None`` and is accepted by every type;
NOT NULL enforcement happens at the schema level, not here.
"""

from __future__ import annotations

import datetime
from typing import Any

from .errors import TypeMismatchError


class SqlType:
    """Base class for SQL column types."""

    name = "UNKNOWN"

    def coerce(self, value: Any) -> Any:
        """Return ``value`` converted to this type's canonical Python
        representation, or raise :class:`TypeMismatchError`."""
        if value is None:
            return None
        return self._coerce(value)

    def _coerce(self, value: Any) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash((type(self), repr(self)))


class IntegerType(SqlType):
    """INTEGER / BIGINT — arbitrary-precision Python int."""

    name = "INTEGER"

    def _coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            raise TypeMismatchError(f"cannot store BOOLEAN {value!r} in {self.name}")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to {self.name}")


class BigIntType(IntegerType):
    name = "BIGINT"


class DoubleType(SqlType):
    """DOUBLE — Python float."""

    name = "DOUBLE"

    def _coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeMismatchError(f"cannot store BOOLEAN {value!r} in DOUBLE")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to DOUBLE")


class VarcharType(SqlType):
    """VARCHAR(n) — Python str, optionally length-limited."""

    def __init__(self, length: int | None = None):
        self.length = length

    @property
    def name(self) -> str:  # type: ignore[override]
        if self.length is None:
            return "VARCHAR"
        return f"VARCHAR({self.length})"

    def _coerce(self, value: Any) -> str:
        if isinstance(value, bool):
            raise TypeMismatchError("cannot store BOOLEAN in VARCHAR")
        if isinstance(value, (int, float)):
            value = str(value)
        if not isinstance(value, str):
            raise TypeMismatchError(f"cannot coerce {value!r} to VARCHAR")
        if self.length is not None and len(value) > self.length:
            raise TypeMismatchError(
                f"value of length {len(value)} exceeds VARCHAR({self.length})"
            )
        return value


class BooleanType(SqlType):
    name = "BOOLEAN"

    def _coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.upper() in ("TRUE", "FALSE"):
            return value.upper() == "TRUE"
        raise TypeMismatchError(f"cannot coerce {value!r} to BOOLEAN")


class TimestampType(SqlType):
    """TIMESTAMP — Python float seconds-since-epoch.

    A float epoch keeps timestamps trivially comparable, which the
    temporal (``FOR SYSTEM_TIME AS OF``) machinery relies on.  ISO-8601
    strings and :class:`datetime.datetime` values coerce automatically.
    """

    name = "TIMESTAMP"

    def _coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeMismatchError("cannot store BOOLEAN in TIMESTAMP")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, datetime.datetime):
            return value.timestamp()
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value).timestamp()
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to TIMESTAMP")


INTEGER = IntegerType()
BIGINT = BigIntType()
DOUBLE = DoubleType()
VARCHAR = VarcharType()
BOOLEAN = BooleanType()
TIMESTAMP = TimestampType()

_TYPE_NAMES = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": BIGINT,
    "LONG": BIGINT,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "REAL": DOUBLE,
    "VARCHAR": VARCHAR,
    "STRING": VARCHAR,
    "TEXT": VARCHAR,
    "CHAR": VARCHAR,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "TIMESTAMP": TIMESTAMP,
}


def type_from_name(name: str, length: int | None = None) -> SqlType:
    """Resolve a SQL type name (as written in DDL) to a type object."""
    key = name.strip().upper()
    if key not in _TYPE_NAMES:
        raise TypeMismatchError(f"unknown SQL type {name!r}")
    base = _TYPE_NAMES[key]
    if isinstance(base, VarcharType) and length is not None:
        return VarcharType(length)
    return base
