"""The differential analytics battery (ISSUE 9 satellite 1).

Every seed builds a generated scenario (random schema + overlay +
data), materializes the pure-Python oracle, and runs all four bulk
algorithms through the real engine — comparing against the independent
reference implementations in :mod:`repro.testing.oracle`.  Seeds cycle
the {serial, parallel4} x {cache on, cache off} execution matrix, so
200 seeds cover every cell 50 times.

Comparison contract (see the determinism notes in
``repro/analytics/algorithms.py``): BFS, SSSP, and WCC must match the
oracle **exactly** — depths, distances, component labels, and
predecessor choices included.  PageRank runs a fixed iteration count on
both sides and must agree within an L1 tolerance of 1e-6 (per-vertex
accumulation order differs between SQL row order and oracle order).

Set ``REPRO_ANALYTICS_TABLE=/path/file.txt`` to append one line per
(seed, algorithm) with convergence and frontier-size data — the CI
``analytics`` job uploads this as its artifact.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Db2Graph
from repro.testing import (
    ScenarioInvalid,
    build_database,
    generate_scenario,
    materialize_oracle,
    resolve_overlay,
)
from repro.testing.oracle import (
    reference_bfs,
    reference_pagerank,
    reference_sssp,
    reference_wcc,
)

pytestmark = pytest.mark.timeout(300)

# (parallelism, cache) cells; seed % 4 selects, so any contiguous run of
# 4 seeds covers the whole matrix.
CELLS = [(1, False), (4, False), (1, True), (4, True)]
DIRECTIONS = ("out", "in", "both")
PAGERANK_ITERATIONS = 30
PAGERANK_L1 = 1e-6

TOTAL_SEEDS = 200
CHUNK = 50


def _artifact(line: str) -> None:
    path = os.environ.get("REPRO_ANALYTICS_TABLE")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def _weight_key(oracle) -> str:
    """Sorted-first property key appearing on any edge (both sides
    apply the same coercion, so non-numeric values are fine); 'w' when
    the scenario generated no edge properties at all."""
    keys = sorted({k for e in oracle._edges.values() for k in e.properties})
    return keys[0] if keys else "w"


def _edge_label_filter(oracle) -> tuple[str, ...]:
    labels = sorted({e.label for e in oracle._edges.values()})
    return (labels[0],) if labels else ()


def run_seed(seed: int) -> bool:
    """One differential cell: engine vs oracle on every algorithm.

    Returns False when the generator declared the seed unrepresentable
    (ScenarioInvalid) so callers can count coverage.
    """
    try:
        scenario = generate_scenario(seed, workload_size=0)
    except ScenarioInvalid:
        return False
    db = build_database(scenario)
    overlay = resolve_overlay(scenario, db)
    oracle = materialize_oracle(db, overlay)
    vertices = sorted(oracle._vertices, key=lambda v: (str(v), repr(v)))
    if not vertices:
        return False
    parallelism, cache = CELLS[seed % 4]
    graph = Db2Graph.open(db, overlay, parallelism=parallelism, cache=cache)
    an = graph.analytics()
    source = vertices[0]
    direction = DIRECTIONS[seed % 3]
    labels = _edge_label_filter(oracle) if seed % 5 == 0 else ()

    # BFS: exact depths and predecessors
    got = an.bfs(source, direction=direction, edge_labels=labels)
    want = reference_bfs(
        oracle, source, direction=direction, edge_labels=labels or None
    )
    assert got.depth == want["depth"], f"seed {seed}: bfs depth diverged"
    assert got.parent == want["parent"], f"seed {seed}: bfs parent diverged"
    assert got.converged
    _artifact(
        f"seed={seed} cell=p{parallelism}/{'cache' if cache else 'nocache'} "
        f"algo=bfs dir={direction} steps={got.steps} "
        f"frontiers={got.frontier_sizes} converged={got.converged}"
    )

    # SSSP: exact distances and predecessors over a generated weight key
    wkey = _weight_key(oracle)
    got = an.sssp(source, weight=wkey, direction=direction, edge_labels=labels)
    want = reference_sssp(
        oracle, source, weight=wkey, direction=direction,
        edge_labels=labels or None,
    )
    assert got.distance == want["distance"], f"seed {seed}: sssp distance diverged"
    assert got.parent == want["parent"], f"seed {seed}: sssp parent diverged"
    assert got.converged
    _artifact(
        f"seed={seed} cell=p{parallelism}/{'cache' if cache else 'nocache'} "
        f"algo=sssp weight={wkey} steps={got.steps} "
        f"frontiers={got.frontier_sizes} converged={got.converged}"
    )

    # WCC: exact component labels (min-id fixpoint is unique)
    got = an.wcc(edge_labels=labels)
    want = reference_wcc(oracle, edge_labels=labels or None)
    assert got.component == want, f"seed {seed}: wcc diverged"
    assert got.converged
    _artifact(
        f"seed={seed} cell=p{parallelism}/{'cache' if cache else 'nocache'} "
        f"algo=wcc components={got.component_count()} steps={got.steps} "
        f"frontiers={got.frontier_sizes} converged={got.converged}"
    )

    # PageRank: same fixed iteration count both sides, L1 <= 1e-6
    got = an.pagerank(max_iterations=PAGERANK_ITERATIONS, edge_labels=labels)
    want = reference_pagerank(
        oracle, max_iterations=PAGERANK_ITERATIONS, edge_labels=labels or None
    )
    assert set(got.rank) == set(want), f"seed {seed}: pagerank vertex set diverged"
    l1 = sum(abs(got.rank[v] - want[v]) for v in want)
    assert l1 <= PAGERANK_L1, f"seed {seed}: pagerank L1 {l1} > {PAGERANK_L1}"
    assert got.iterations == PAGERANK_ITERATIONS
    _artifact(
        f"seed={seed} cell=p{parallelism}/{'cache' if cache else 'nocache'} "
        f"algo=pagerank iterations={got.iterations} delta={got.delta:.3e} l1={l1:.3e}"
    )
    graph.close()
    return True


@pytest.mark.parametrize("start", range(0, TOTAL_SEEDS, CHUNK))
def test_differential_battery(start: int):
    """Engine == oracle for every algorithm across 50 seeds per chunk."""
    valid = sum(1 for seed in range(start, start + CHUNK) if run_seed(seed))
    # the generator declares only the occasional seed unrepresentable;
    # a collapse here would mean the battery stopped covering anything
    assert valid >= CHUNK * 3 // 4, f"only {valid}/{CHUNK} seeds were valid"


def test_full_matrix_on_one_scenario():
    """Every matrix cell over the same scenario agrees with the oracle
    and with every other cell (seed-independent cell coverage)."""
    scenario = generate_scenario(7, workload_size=0)
    db = build_database(scenario)
    overlay = resolve_overlay(scenario, db)
    oracle = materialize_oracle(db, overlay)
    source = sorted(oracle._vertices, key=lambda v: (str(v), repr(v)))[0]
    want_bfs = reference_bfs(oracle, source, direction="both")
    want_wcc = reference_wcc(oracle)
    for parallelism, cache in CELLS:
        graph = Db2Graph.open(db, overlay, parallelism=parallelism, cache=cache)
        an = graph.analytics()
        got = an.bfs(source, direction="both")
        assert got.depth == want_bfs["depth"]
        assert got.parent == want_bfs["parent"]
        assert an.wcc().component == want_wcc
        graph.close()
