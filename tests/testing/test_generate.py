"""The scenario generator: determinism and §5 feature coverage."""

from __future__ import annotations

import pytest

from repro.testing import ScenarioInvalid, generate_scenario

SEED_RANGE = range(60)


def scenarios():
    out = []
    for seed in SEED_RANGE:
        try:
            out.append(generate_scenario(seed))
        except ScenarioInvalid:
            continue
    return out


def test_generation_is_deterministic():
    for seed in (0, 7, 19, 42):
        a = generate_scenario(seed)
        b = generate_scenario(seed)
        assert a.rows == b.rows
        assert a.workload == b.workload
        assert a.overlay == b.overlay
        assert [t.ddl() for t in a.tables] == [t.ddl() for t in b.tables]


def test_every_section5_feature_is_drawn():
    """Across a modest seed range the generator must exercise the full
    §5 overlay-config space at least once each."""
    seen = set()
    for s in scenarios():
        if s.kind == "auto":
            seen.add("auto_overlay")
            if any(not t.primary_key for t in s.tables):
                seen.add("keyless_link_table")
            continue
        overlay = s.overlay
        v_tables = {e["table_name"] for e in overlay["v_tables"]}
        e_tables = {e["table_name"] for e in overlay["e_tables"]}
        view_names = {v.name for v in s.views}
        for entry in overlay["v_tables"]:
            if entry.get("prefixed_id"):
                seen.add("prefixed_vertex_id")
            if entry.get("fix_label"):
                seen.add("fixed_vertex_label")
            else:
                seen.add("column_vertex_label")
            if "::" in str(entry.get("id", "")).replace("'", "").partition("::")[2]:
                seen.add("composite_vertex_id")
            if entry["table_name"] in view_names:
                seen.add("view_as_vertex_member")
        for entry in overlay["e_tables"]:
            if entry.get("implicit_edge_id"):
                seen.add("implicit_edge_id")
            if entry.get("prefixed_edge_id"):
                seen.add("prefixed_edge_id")
            if "src_v_table" in entry:
                seen.add("src_dst_table_hints")
            if not entry.get("fix_label") and not str(entry.get("label", "")).startswith("'"):
                seen.add("column_edge_label")
            if entry["table_name"] in v_tables:
                seen.add("dual_vertex_edge_table")
            if entry["table_name"] in view_names:
                seen.add("view_as_edge_member")
        table_configs: dict[str, int] = {}
        for entry in overlay["e_tables"]:
            if entry["table_name"] not in view_names and entry["table_name"] not in v_tables:
                table_configs[entry["table_name"]] = (
                    table_configs.get(entry["table_name"], 0) + 1
                )
        if any(count > 1 for count in table_configs.values()):
            seen.add("multi_config_edge_table")
    expected = {
        "auto_overlay",
        "keyless_link_table",
        "prefixed_vertex_id",
        "composite_vertex_id",
        "fixed_vertex_label",
        "column_vertex_label",
        "implicit_edge_id",
        "prefixed_edge_id",
        "src_dst_table_hints",
        "column_edge_label",
        "dual_vertex_edge_table",
        "multi_config_edge_table",
        "view_as_vertex_member",
        "view_as_edge_member",
    }
    assert expected <= seen, f"never generated: {sorted(expected - seen)}"


def test_workloads_mix_reads_and_mutations():
    tags = set()
    for s in scenarios():
        tags.update(op[0] for op in s.workload)
    assert {"chain", "begin", "commit", "rollback", "sql", "graph_sql"} <= tags
    assert "addv" in tags or "adde" in tags


def test_clone_is_independent():
    s = generate_scenario(2)
    c = s.clone()
    c.rows[next(iter(c.rows))].clear()
    assert s.rows != c.rows or not s.total_rows()
