"""explain() and profile() unit + snapshot tests.

One test per §6.2 compile-time strategy shows the before/after plan
diff that explain() records when the strategy rewrites the chain, and
the SQL preview attached to each final step.  The profile() tests pin
the timing-tree invariants: a parent's inclusive time bounds its
children's, and the SQL total equals what stats() counted.
"""

from __future__ import annotations

import pytest

from repro.graph import P, __


# ---------------------------------------------------------------------------
# explain(): one before/after diff per strategy
# ---------------------------------------------------------------------------


def stage_by_name(explain, strategy):
    for stage in explain.stages:
        if stage.strategy == strategy:
            return stage
    raise AssertionError(
        f"no {strategy} stage; applied: {[s.strategy for s in explain.stages]}"
    )


def test_predicate_pushdown_plan_diff(paper_graph):
    ex = paper_graph.traversal().V().has("name", "Alice").explain()
    stage = stage_by_name(ex, "PredicatePushdown")
    # before: a separate in-memory Has filter step after the scan
    assert any("Has(" in step for step in stage.before)
    # after: folded into the GraphStep pushdown, Has step gone
    assert not any(step.startswith("Has(") for step in stage.after)
    assert any("P.eq('Alice')" in step and "GraphStep" in step for step in stage.after)
    assert ex.original != ex.final


def test_projection_pushdown_plan_diff(paper_graph):
    ex = paper_graph.traversal().V().hasLabel("patient").values("name").explain()
    stage = stage_by_name(ex, "ProjectionPushdown")
    assert any("projection=None" in step for step in stage.before)
    assert any("projection=" in step and "name" in step for step in stage.after)


def test_aggregate_pushdown_plan_diff(paper_graph):
    ex = paper_graph.traversal().V().count().explain()
    stage = stage_by_name(ex, "AggregatePushdown")
    assert any("Count" in step for step in stage.before)
    # the count moved into SQL: no Count step survives, the GraphStep
    # carries aggregate='count' and the preview is a COUNT(*) query
    assert not any("Count(" in step for step in stage.after)
    assert any("aggregate='count'" in step for step in stage.after)
    sql = "\n".join(stmt for s in ex.step_sql for stmt in s.statements)
    assert "COUNT" in sql.upper()


def test_graphstep_vertexstep_mutation_plan_diff(paper_graph):
    ex = paper_graph.traversal().V("patient::1").out("hasDisease").explain()
    stage = stage_by_name(ex, "GraphStepVertexStepMutation")
    assert any("VertexStep(out" in step for step in stage.before)
    # rewritten to an edge scan + endpoint hop, pinned to patient 1
    assert any("GraphStep(E" in step for step in stage.after)
    assert any("EdgeVertexStep(inV)" in step for step in stage.after)
    sql = "\n".join(stmt for s in ex.step_sql for stmt in s.statements)
    assert "HasDisease" in sql and "patientID = ?" in sql


def test_explain_snapshot_sections(paper_graph):
    text = str(paper_graph.traversal().V().has("name", "Alice").explain())
    for section in (
        "=== Original plan ===",
        "=== After PredicatePushdown ===",
        "=== Final plan ===",
        "=== SQL per step ===",
    ):
        assert section in text, text
    assert "SELECT" in text
    assert "table Disease eliminated (property_names)" in text


def test_explain_without_strategies_has_no_stages(paper_db):
    from repro.core import Db2Graph

    from ..conftest import HEALTHCARE_TINY_OVERLAY

    plain = Db2Graph.open(paper_db, HEALTHCARE_TINY_OVERLAY, optimized=False)
    ex = plain.traversal().V().has("name", "Alice").explain()
    assert ex.stages == []
    assert ex.original == ex.final
    assert any("Has(" in step for step in ex.final)


def test_explain_is_side_effect_free(paper_graph):
    paper_graph.reset_stats()
    recorder = paper_graph.enable_tracing()
    paper_graph.traversal().V().hasLabel("patient").out("hasDisease").explain()
    # previews must not issue SQL, bump counters, or emit table events
    stats = paper_graph.stats()
    assert stats["sql_queries"] == 0
    assert stats["tables_eliminated"] == 0
    assert not recorder.count("table.eliminated")
    assert not recorder.count("sql.issued")
    paper_graph.disable_tracing()


def test_explain_contains_keeps_string_protocol(paper_graph):
    ex = paper_graph.traversal().V().explain()
    assert "GraphStep" in ex  # ExplainResult.__contains__ delegates to str


# ---------------------------------------------------------------------------
# profile(): timing tree invariants
# ---------------------------------------------------------------------------


def test_profile_parent_time_bounds_children(paper_graph):
    p = (
        paper_graph.traversal()
        .V()
        .hasLabel("patient")
        .filter_(__.out("hasDisease"))
        .profile()
    )
    eps = 1e-6

    def check(node):
        assert node.seconds + eps >= sum(c.seconds for c in node.children), node.name
        for child in node.children:
            check(child)

    check(p.root)
    assert p.wall_seconds + eps >= sum(c.seconds for c in p.children)


def test_profile_sql_total_matches_stats(paper_graph):
    paper_graph.reset_stats()
    p = paper_graph.traversal().V().hasLabel("patient").out("hasDisease").profile()
    stats = paper_graph.stats()
    assert p.sql_queries == stats["sql_queries"] > 0
    assert p.rows_fetched == stats["rows_fetched"]
    # per-step sql counts sum to the total (no step double-counts)
    assert sum(c.sql_queries for c in p.children) == p.sql_queries


def test_profile_reports_traversers_and_results(paper_graph):
    p = paper_graph.traversal().V().hasLabel("patient").profile()
    assert len(p.children) == 1 and "GraphStep" in p.children[0].name
    n_patients = paper_graph.traversal().V().hasLabel("patient").count().next()
    assert p.children[-1].traversers == len(p.results) == n_patients > 0


def test_profile_renders_tree(paper_graph):
    p = (
        paper_graph.traversal()
        .V()
        .hasLabel("patient")
        .filter_(__.out("hasDisease"))
        .profile()
    )
    text = str(p)
    assert "GraphStep" in text
    assert "Filter" in text
    assert "sql=" in text and "traversers=" in text
    # nested sub-traversal is indented under its parent step
    assert "\n    filter" in text


def test_profile_has_step_and_subtraversal_nodes(paper_graph):
    p = (
        paper_graph.traversal()
        .V()
        .hasLabel("patient")
        .filter_(__.out("hasDisease"))
        .profile()
    )
    assert len(p.children) == 2
    filter_node = p.children[1]
    assert filter_node.children and filter_node.children[0].name == "filter"
    sub_steps = filter_node.children[0].children
    assert sub_steps and "VertexStep" in sub_steps[0].name
