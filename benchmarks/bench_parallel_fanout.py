"""Parallel multi-table fan-out + traverser batching (DESIGN.md
"Parallel execution & batching").

Not a paper figure — the paper's prototype executes fan-out SQL
serially — but the execution layer added on top is worth quantifying:
LinkBench ids carry no table prefix, so ``g.V(id)`` fans out across
every node table, and multi-hop expansions carry hundreds of traverser
ids that batching coalesces into ``WHERE id IN (...)`` lists.

Three configurations over the same database:

* ``serial``          — parallelism=1, batch_size=1 (one id, one table,
                        one statement: the fully unbatched baseline)
* ``serial+batch``    — parallelism=1, batch_size=64
* ``parallel+batch``  — parallelism=4, batch_size=64 (the default-on
                        recommendation)

Recorded per configuration: wall-clock latency of a LinkBench-style
mixed workload and the exact number of SQL statements issued (from
stats(), so deterministic).  The acceptance bar: ``parallel+batch``
issues >=4x fewer statements than ``serial`` and runs faster.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_table
from repro.core.db2graph import Db2Graph
from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDataset, LinkBenchWorkload

CONFIGS = [
    ("serial", 1, 1),
    ("serial+batch", 1, 64),
    ("parallel+batch", 4, 64),
]

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def fanout_setup():
    from repro.relational.database import Database

    dataset = LinkBenchDataset(LinkBenchConfig.small())
    database = Database(enforce_foreign_keys=False)
    dataset.install_relational(database)
    workload = LinkBenchWorkload(dataset, seed=29)
    graphs = {
        name: Db2Graph.open(
            database,
            dataset.overlay_config(),
            parallelism=workers,
            batch_size=batch,
        )
        for name, workers, batch in CONFIGS
    }
    yield dataset, workload, graphs
    for graph in graphs.values():
        graph.close()


def _workload_calls(workload, rounds: int = 12):
    """A mixed LinkBench-style slice: point lookups (unprefixed ids fan
    out over every node table) plus two-hop expansions (hundreds of
    traverser ids for batching to coalesce)."""
    calls = []
    for _ in range(rounds):
        calls.append(workload.sample("getNode"))
        calls.append(workload.sample("getLinkList"))
        calls.append(workload.sample("countLinks"))
    return calls


def _run_workload(graph, workload) -> tuple[float, int]:
    calls = _workload_calls(workload)
    before = graph.stats()["sql_queries"]
    start = time.perf_counter()
    for call in calls:
        call.run(graph.traversal())
    for id1 in list(workload._sources)[:6]:
        g = graph.traversal()
        g.V(id1).out().out().count().next()
    elapsed = time.perf_counter() - start
    return elapsed, graph.stats()["sql_queries"] - before


@pytest.mark.parametrize("mode", [name for name, _w, _b in CONFIGS])
def test_fanout_latency(benchmark, fanout_setup, mode):
    _dataset, workload, graphs = fanout_setup
    graph = graphs[mode]
    _run_workload(graph, workload)  # warmup (prepared caches, pool spin-up)

    timings: list[float] = []
    statements = 0

    def run_once():
        elapsed, issued = _run_workload(graph, workload)
        timings.append(elapsed)
        return issued

    statements = benchmark.pedantic(run_once, rounds=5, iterations=1, warmup_rounds=1)
    _RESULTS[mode] = {
        "seconds": min(timings),
        "statements": float(statements),
    }


def test_fanout_report(fanout_setup, collector):
    assert set(_RESULTS) == {name for name, _w, _b in CONFIGS}
    rows = []
    for name, workers, batch in CONFIGS:
        result = _RESULTS[name]
        rows.append(
            [
                name,
                workers,
                batch,
                f"{result['seconds'] * 1e3:.1f}",
                int(result["statements"]),
            ]
        )
    collector.add(
        "parallel_fanout",
        format_table(
            ["config", "parallelism", "batch_size", "best ms/round", "sql stmts/round"],
            rows,
            title="Parallel fan-out + traverser batching (LinkBench-style mix)",
        ),
    )

    serial = _RESULTS["serial"]
    combined = _RESULTS["parallel+batch"]
    # The acceptance bar: batching+parallelism cuts SQL statements >=4x
    # and wall-clock strictly improves over the unbatched serial run.
    assert combined["statements"] * 4 <= serial["statements"]
    assert combined["seconds"] < serial["seconds"]
