"""Ablation D1/D4 (DESIGN.md): prepared-statement templates and index
use in the relational engine.

The paper's SQL Dialect module prepares frequent query templates "to
avoid the SQL compilation overhead at runtime" (§6.1) and feeds the
index advisor.  We quantify both:

* D1 — the same workload through the dialect with and without the
  statement cache (every statement re-parsed/re-planned when off);
* D4 — getLinkList latency with and without the link-table id1 index
  (index advisor's suggestion applied vs dropped).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import EngineUnderTest, measure_latency
from repro.bench.reporting import format_table
from repro.core.db2graph import Db2Graph
from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDataset, LinkBenchWorkload
from repro.relational.database import Database

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def prepared_setup(small_db2_only):
    setup = small_db2_only
    unprepared = Db2Graph.open(setup.database, setup.dataset.overlay_config())
    unprepared.dialect.use_prepared = False
    return {
        "prepared": EngineUnderTest("prepared", setup.db2graph.traversal, raw=setup.db2graph),
        "unprepared": EngineUnderTest("unprepared", unprepared.traversal, raw=unprepared),
        "setup": setup,
    }


@pytest.mark.parametrize("mode", ["prepared", "unprepared"])
def test_ablation_prepared_statements(benchmark, prepared_setup, mode):
    setup = prepared_setup["setup"]
    engine = prepared_setup[mode]
    calls = [setup.workload.sample("getLinkList") for _ in range(48)]
    state = {"i": 0}

    def run_one():
        call = calls[state["i"] % len(calls)]
        state["i"] += 1
        return call.run(engine.traversal())

    benchmark.pedantic(run_one, rounds=30, iterations=1, warmup_rounds=5)
    result = measure_latency(engine, setup.workload, "getLinkList", iterations=120, warmup=20)
    _RESULTS[mode] = result.mean_seconds


@pytest.fixture(scope="module")
def unindexed_setup():
    """A separate database without the link-table id1 indexes."""
    config = LinkBenchConfig.small()
    dataset = LinkBenchDataset(config)
    db = Database(enforce_foreign_keys=False)
    dataset.install_relational(db)
    for t in range(10):
        db.execute(f"DROP INDEX idx_link{t}_id1")
    graph = Db2Graph.open(db, dataset.overlay_config())
    return {
        "engine": EngineUnderTest("unindexed", graph.traversal, raw=graph),
        "workload": LinkBenchWorkload(dataset),
        "graph": graph,
    }


def test_ablation_index_use(benchmark, unindexed_setup):
    engine = unindexed_setup["engine"]
    workload = unindexed_setup["workload"]
    calls = [workload.sample("getLinkList") for _ in range(16)]
    state = {"i": 0}

    def run_one():
        call = calls[state["i"] % len(calls)]
        state["i"] += 1
        return call.run(engine.traversal())

    benchmark.pedantic(run_one, rounds=10, iterations=1, warmup_rounds=2)
    result = measure_latency(engine, workload, "getLinkList", iterations=30, warmup=5)
    _RESULTS["unindexed"] = result.mean_seconds


def test_ablation_index_advisor_recovers(benchmark, unindexed_setup):
    """The index advisor notices the frequent pattern and re-creates
    the index; latency recovers."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    graph = unindexed_setup["graph"]
    workload = unindexed_setup["workload"]
    # drive enough traffic for the pattern tracker to cross its
    # frequency threshold on each link table
    for call in workload.stream("getLinkList", 200):
        call.run(graph.traversal())
    suggestions = graph.suggest_indexes()
    assert any("link" in table for table, _cols in suggestions), (
        f"advisor should flag the frequent link-table probes, got {suggestions}"
    )
    created = graph.create_suggested_indexes()
    assert created, "advisor should create the missing indexes"
    result = measure_latency(
        unindexed_setup["engine"], workload, "getLinkList", iterations=50, warmup=10
    )
    _RESULTS["reindexed"] = result.mean_seconds


def test_ablation_prepared_report(benchmark, collector):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    needed = {"prepared", "unprepared", "unindexed", "reindexed"}
    if not needed <= set(_RESULTS):
        pytest.skip("ablation benchmarks did not run")
    rows = [
        ["D1 statement cache ON", f"{_RESULTS['prepared'] * 1e3:.3f}"],
        ["D1 statement cache OFF", f"{_RESULTS['unprepared'] * 1e3:.3f}"],
        ["D4 link index dropped", f"{_RESULTS['unindexed'] * 1e3:.3f}"],
        ["D4 after index advisor", f"{_RESULTS['reindexed'] * 1e3:.3f}"],
    ]
    collector.add(
        "ablation_prepared",
        format_table(
            ["Configuration", "getLinkList mean latency (ms)"],
            rows,
            title="Ablation: prepared-statement templates (D1) and index use (D4)",
        ),
    )
    assert _RESULTS["prepared"] < _RESULTS["unprepared"], (
        "prepared templates should beat re-parsing every statement"
    )
    assert _RESULTS["reindexed"] < _RESULTS["unindexed"], (
        "the advisor-created index should beat full scans"
    )
