"""Shared utilities used across the relational engine and the baseline
graph stores (LRU caching, clocks, and size accounting)."""

from .lru import LruCache
from .clock import Clock, SystemClock, ManualClock

__all__ = ["LruCache", "Clock", "SystemClock", "ManualClock"]
