"""Analytics specs for the ``graphQuery`` table function (paper §4).

``graphQuery('analytics', '<spec>')`` evaluates a whole-graph
algorithm and returns its result as rows that join back into SQL::

    SELECT * FROM TABLE(graphQuery('analytics',
        'bfs source=patient::1 direction=out'))
        AS T (vertex VARCHAR(64), depth INT, parent VARCHAR(64))

Spec grammar: ``<algorithm> key=value ...`` where the algorithm is one
of ``bfs``, ``sssp``, ``wcc``, ``pagerank``.  Values are coerced (int,
then float, then string); ``labels`` is a comma-separated edge-label
list.  Row shapes:

=============  ====================================
``bfs``        ``(vertex_id, depth, parent)``
``sssp``       ``(vertex_id, distance, parent)``
``wcc``        ``(vertex_id, component)``
``pagerank``   ``(vertex_id, rank)``
=============  ====================================

Rows come back in canonical vertex-id sort order so results are
deterministic for the SQL layer.
"""

from __future__ import annotations

import shlex
from typing import Any, Iterator

from .algorithms import GraphAnalytics
from .errors import AnalyticsError

_ALGORITHMS = ("bfs", "sssp", "wcc", "pagerank")


def _coerce(value: str) -> Any:
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Parse ``'bfs source=p::1 max_depth=3'`` into name + options."""
    tokens = shlex.split(str(spec))
    if not tokens:
        raise AnalyticsError("empty analytics spec")
    algorithm = tokens[0].lower()
    if algorithm not in _ALGORITHMS:
        raise AnalyticsError(
            f"unknown analytics algorithm {tokens[0]!r}; "
            f"expected one of {', '.join(_ALGORITHMS)}"
        )
    options: dict[str, Any] = {}
    for token in tokens[1:]:
        key, sep, raw = token.partition("=")
        if not sep or not key:
            raise AnalyticsError(
                f"malformed analytics option {token!r}; expected key=value"
            )
        options[key.lower()] = raw
    return algorithm, options


def evaluate_spec(analytics: GraphAnalytics, spec: str) -> Iterator[tuple]:
    """Run one parsed spec against a :class:`GraphAnalytics` handle."""
    algorithm, options = parse_spec(spec)
    labels = tuple(
        part for part in options.pop("labels", "").split(",") if part
    )
    if algorithm == "bfs":
        result = analytics.bfs(
            _required(options, "source", algorithm),
            direction=options.pop("direction", "out"),
            edge_labels=labels,
            max_depth=_int_opt(options, "max_depth"),
        )
    elif algorithm == "sssp":
        result = analytics.sssp(
            _required(options, "source", algorithm),
            weight=str(_required(options, "weight", algorithm)),
            direction=options.pop("direction", "out"),
            edge_labels=labels,
            default_weight=_float_opt(options, "default_weight", 1.0),
        )
    elif algorithm == "wcc":
        result = analytics.wcc(
            edge_labels=labels,
            max_iterations=_int_opt(options, "max_iterations"),
        )
    else:  # pagerank
        result = analytics.pagerank(
            damping=_float_opt(options, "damping", 0.85),
            max_iterations=_int_opt(options, "max_iterations") or 20,
            tolerance=_float_opt(options, "tolerance", None),
            edge_labels=labels,
        )
    if options:
        raise AnalyticsError(
            f"unknown {algorithm} option(s): {', '.join(sorted(options))}"
        )
    yield from result.rows()


def _required(options: dict[str, Any], key: str, algorithm: str) -> Any:
    if key not in options:
        raise AnalyticsError(f"{algorithm} requires {key}=...")
    return _coerce(options.pop(key))


def _int_opt(options: dict[str, Any], key: str) -> int | None:
    raw = options.pop(key, None)
    if raw is None:
        return None
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise AnalyticsError(f"{key} must be an integer, got {raw!r}") from None


def _float_opt(options: dict[str, Any], key: str, default: float | None) -> Any:
    raw = options.pop(key, None)
    if raw is None:
        return default
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise AnalyticsError(f"{key} must be a number, got {raw!r}") from None
