#!/usr/bin/env python3
"""Mule-fraud detection (paper §7, finance).

Bank transaction data is updated continuously by operational systems
and simultaneously queried by SQL analytics.  The overlay retrofits a
transfer graph onto the live ``Account``/``Txn`` tables, and a bounded
``repeat`` traversal finds chains fraudster -> mule* -> beneficiary.

The timeliness point from the paper: a transaction inserted by SQL is
picked up by the *very next* graph traversal — no reload, no staleness.
"""

from repro.core import Db2Graph
from repro.relational import Database
from repro.workloads.finance import FinanceConfig, FinanceDataset, find_mule_chains


def main() -> None:
    dataset = FinanceDataset(FinanceConfig(n_accounts=300, n_rings=4))
    db = Database()
    dataset.install_relational(db)
    print(
        f"installed {len(dataset.accounts)} accounts, {len(dataset.txns)} transactions, "
        f"{len(dataset.rings)} planted mule rings"
    )

    graph = Db2Graph.open(db, dataset.overlay_config())
    g = graph.traversal()

    fraudsters = g.V().hasLabel("account").has("kind", "fraudster").toList()
    print("flagged fraudster accounts:", [v.value("accountID") for v in fraudsters])

    chains = find_mule_chains(graph, max_hops=5)
    print(f"\ndetected {len(chains)} fraudster->beneficiary chains:")
    planted = {tuple(ring.chain) for ring in dataset.rings}
    for chain in sorted(chains)[:12]:
        marker = "PLANTED" if tuple(chain) in planted else "via shared accounts"
        print(f"  {' -> '.join(map(str, chain))}  [{marker}]")

    found = {tuple(chain) for chain in chains}
    recovered = sum(1 for ring in planted if ring in found)
    print(f"\nrecovered {recovered}/{len(planted)} planted rings")

    # -- timeliness: a new transaction shows up immediately -----------------------
    ring = dataset.rings[0]
    new_beneficiary = ring.beneficiary
    db.execute(
        "INSERT INTO Txn VALUES (999001, ?, ?, 31337.0, 1700000000.0)",
        [ring.fraudster, new_beneficiary],
    )
    direct = (
        g.V(f"acct::{ring.fraudster}")
        .out("transfer")
        .has("kind", "beneficiary")
        .dedup()
        .toList()
    )
    print(
        f"\nafter a live SQL insert, fraudster {ring.fraudster} now reaches a "
        f"beneficiary directly: {[v.value('accountID') for v in direct]}"
    )

    # -- synergy: aggregate suspicious flow with SQL over graph results ------------
    graph.register_table_function()
    rows = db.execute(
        "SELECT T.toAccount, SUM(T.amount) "
        "FROM Txn AS T, "
        "TABLE (graphQuery('gremlin', "
        "'g.V().hasLabel(''account'').has(''kind'', ''mule'')"
        ".valueTuple(''accountID'')')) AS M (accountID BIGINT) "
        "WHERE T.fromAccount = M.accountID "
        "GROUP BY T.toAccount ORDER BY SUM(T.amount) DESC LIMIT 5"
    ).rows
    print("\ntop recipients of money leaving mule accounts (SQL + graph):")
    for account, total in rows:
        print(f"  account {account}: {total:,.2f}")


if __name__ == "__main__":
    main()
