"""The transactional graph read cache (two levels, epoch-validated).

Sits between the graph layer and the relational engine:

* **Level 1 — statement cache** (:meth:`GraphCache.lookup_statement`):
  keyed by ``(table, sql, params)`` at the SQL Dialect choke point.
  This subsumes the adjacency/edge-batch shape ``(config, table,
  direction, id-chunk)``: the direction is the src/dst column baked
  into the SQL text, the id-chunk is the ``IN (...)`` parameter tuple,
  and the overlay config is implicit because a cache belongs to one
  ``Db2Graph``.
* **Level 2 — row/materialization cache**
  (:meth:`lookup_group` / :meth:`lookup_vertex`): memoizes endpoint
  materialization — ``bulk_materialize`` groups and ``load_vertex``
  point lookups — including *negative* results, keyed by the exact
  unit of computation (hint scope + id tuple) so a hit replays the
  uncached code path bit-for-bit.

Correctness rules:

* An entry stores the epoch **vector** of its dependency base tables
  (plus the DDL generation as element 0), captured *before* the SQL
  ran; it is served only while the current vector is equal.  See
  :mod:`repro.cache.epochs` for why this can never serve stale rows.
* A connection with an **active explicit transaction** bypasses the
  cache entirely (lookup *and* fill, counted as ``cache.bypass.txn``):
  its own uncommitted writes must be visible (read-your-writes) and
  its snapshot semantics differ from autocommit reads.  Uncommitted
  rows therefore never reach the shared cache.
* Entries are **filled only after a successful statement** — a retried
  or injected failure never installs a partial result.
* Statements against **views** resolve to their base tables through
  the planner; unresolvable relations bypass caching.

Concurrency: each level is striped over independent
:class:`~repro.common.lru.LruCache` segments.  Lookups and fills take
one stripe lock for one dict operation; no SQL or loader ever runs
under a cache lock, so fan-out workers cannot deadlock through the
cache (and the pool's no-nested-dispatch rule is untouched).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Sequence

from ..common.lru import LruCache
from ..obs import metrics as M
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_RECORDER, TraceRecorder
from .config import CacheConfig
from .epochs import EpochRegistry

#: Cached verdict for "this id has no row" — distinguishable from an
#: absent cache entry.
NEGATIVE = "negative"

_ABSENT = object()


@dataclass(frozen=True)
class CacheTicket:
    """A pending fill: the key and the epoch vector captured before the
    SQL ran.  Handed back to :meth:`GraphCache.store` on success."""

    segment: "_Segment"
    key: tuple
    vector: tuple[int, ...]
    table: str


class _Segment:
    """One cache level: striped LRU storage, no accounting of its own
    (hits/misses/evictions are counted by the owning GraphCache)."""

    def __init__(self, name: str, capacity: int, stripes: int):
        self.name = name
        per_stripe = max(1, capacity // stripes)
        self._stripes = [LruCache(per_stripe) for _ in range(stripes)]

    def _stripe(self, key: tuple) -> LruCache:
        return self._stripes[hash(key) % len(self._stripes)]

    def get(self, key: tuple) -> Any:
        return self._stripe(key).get(key, _ABSENT)

    def put(self, key: tuple, entry: tuple) -> list[tuple]:
        return self._stripe(key).put(key, entry)

    def invalidate(self, key: tuple) -> None:
        self._stripe(key).invalidate(key)

    def clear(self) -> None:
        for stripe in self._stripes:
            stripe.clear()

    def __len__(self) -> int:
        return sum(len(stripe) for stripe in self._stripes)


class GraphCache:
    """Per-graph two-level read cache over one :class:`Database`."""

    def __init__(
        self,
        database: Any,
        config: CacheConfig | None = None,
        registry: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
    ):
        self.database = database
        self.config = config or CacheConfig()
        self.epochs: EpochRegistry = database.epochs
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = recorder if recorder is not None else NULL_RECORDER
        self._statements = _Segment(
            "statement", self.config.statement_capacity, self.config.stripes
        )
        self._rows = _Segment("row", self.config.row_capacity, self.config.stripes)
        # relation-name tuple -> resolved base tables (or None when any
        # member is unresolvable), memoized per DDL generation.
        self._deps: dict[tuple[str, ...], tuple[str, ...] | None] = {}
        self._deps_generation = -1
        self._deps_lock = threading.Lock()
        self._hits = self.registry.counter(M.CACHE_HITS)
        self._misses = self.registry.counter(M.CACHE_MISSES)
        self._evictions = self.registry.counter(M.CACHE_EVICTIONS)
        self._bypasses = self.registry.counter(M.CACHE_BYPASS_TXN)

    # -- dependency resolution ------------------------------------------------

    def dependencies(self, relations: Sequence[str]) -> tuple[str, ...] | None:
        """Lowercase base tables behind ``relations`` (views resolved
        through the planner), or ``None`` when any is unresolvable."""
        key = tuple(r.lower() for r in relations)
        generation = self.database.ddl_generation
        with self._deps_lock:
            if self._deps_generation != generation:
                self._deps.clear()
                self._deps_generation = generation
            if key in self._deps:
                return self._deps[key]
        resolved = self._resolve_dependencies(key)
        with self._deps_lock:
            if self._deps_generation == generation:
                self._deps[key] = resolved
        return resolved

    def _resolve_dependencies(self, relations: tuple[str, ...]) -> tuple[str, ...] | None:
        catalog = self.database.catalog
        base: list[str] = []
        for name in relations:
            if catalog.has_table(name):
                tables = [name]
            elif catalog.has_view(name):
                try:
                    from ..relational.planner import Planner
                    from ..relational.sql_parser import parse_statement

                    planned = Planner(self.database).plan_select(
                        parse_statement(f"SELECT * FROM {name}")
                    )
                    tables = [t.lower() for t in planned.scanned_tables]
                except Exception:
                    return None
            else:
                return None
            for table in tables:
                key = table.lower()
                if key not in base:
                    base.append(key)
        return tuple(base)

    # -- epoch vectors --------------------------------------------------------

    def current_vector(self, deps: tuple[str, ...]) -> tuple[int, ...]:
        return (self.database.ddl_generation, *self.epochs.vector(deps))

    # -- bypass rule ----------------------------------------------------------

    @staticmethod
    def _in_transaction(connection: Any) -> bool:
        txn = getattr(connection, "current_txn", None)
        return txn is not None and txn.is_active

    # -- generic lookup/fill --------------------------------------------------

    def _lookup(
        self,
        segment: _Segment,
        connection: Any,
        relations: Sequence[str],
        key: tuple,
        table: str,
    ) -> tuple[str, Any]:
        """Returns ``("hit", payload)``, ``("miss", ticket)``, or
        ``("bypass", None)``.  Counters and trace events are emitted
        here, 1:1, so callers never double-count."""
        if self._in_transaction(connection):
            self._bypasses.increment()
            self.trace.emit(
                tracing.CACHE_BYPASS_TXN, segment=segment.name, table=table
            )
            return "bypass", None
        deps = self.dependencies(relations)
        if deps is None:
            # Unknown relation (e.g. dropped mid-flight): silently
            # uncacheable, not a transaction bypass.
            return "bypass", None
        vector = self.current_vector(deps)
        entry = segment.get(key)
        if entry is not _ABSENT:
            if entry[0] == vector:
                self._hits.increment()
                self.trace.emit(tracing.CACHE_HIT, segment=segment.name, table=table)
                return "hit", entry[1]
            # Stale: drop eagerly so the segment doesn't fill with
            # unservable entries (not counted as an eviction — those
            # measure capacity pressure).
            segment.invalidate(key)
        self._misses.increment()
        self.trace.emit(tracing.CACHE_MISS, segment=segment.name, table=table)
        return "miss", CacheTicket(segment, key, vector, table)

    def store(self, ticket: CacheTicket, payload: Any) -> None:
        """Fill a previously-missed entry (call only after the statement
        succeeded — retries and injected faults must never land here)."""
        evicted = ticket.segment.put(ticket.key, (ticket.vector, payload))
        for _victim in evicted:
            self._evictions.increment()
            self.trace.emit(
                tracing.CACHE_EVICT, segment=ticket.segment.name, table=ticket.table
            )

    # -- level 1: statement results ------------------------------------------

    def lookup_statement(
        self, connection: Any, table: str, sql: str, params: tuple
    ) -> tuple[str, Any]:
        """Payload on a hit: ``(column_keys, row_tuples)`` — callers
        rebuild fresh row dicts so cached data is never aliased."""
        key = (table.lower(), sql, params)
        return self._lookup(self._statements, connection, (table,), key, table.lower())

    # -- level 2: materialization results ------------------------------------

    def lookup_group(
        self, connection: Any, relations: Sequence[str], hint: str | None, ids: tuple
    ) -> tuple[str, Any]:
        """One ``bulk_materialize`` hint-group.  The key is the exact
        (hint, id-tuple) unit of work because the uncached path's
        hint-table-then-fallback logic is group-composition dependent;
        caching smaller units would change observable results.  Payload:
        tuple of ``(id, label, property_items, source_table)``.

        ``relations`` must be *all* the overlay's vertex tables (the
        caller passes its current topology's): the fallback path may
        read any of them, and a commit to any must invalidate."""
        if not relations:
            return "bypass", None
        scope = hint.lower() if hint is not None else "*"
        key = ("group", scope, ids)
        return self._lookup(self._rows, connection, relations, key, scope)

    def lookup_vertex(
        self, connection: Any, relations: Sequence[str], scope: str | None, vertex_id: Any
    ) -> tuple[str, Any]:
        """One ``load_vertex`` point lookup.  Payload: ``(label,
        property_items, source_table)`` or :data:`NEGATIVE`."""
        if not relations:
            return "bypass", None
        scope_key = scope.lower() if scope is not None else "*"
        key = ("vertex", scope_key, vertex_id)
        return self._lookup(self._rows, connection, relations, key, scope_key)

    # -- management -----------------------------------------------------------

    def clear(self) -> None:
        self._statements.clear()
        self._rows.clear()

    def entry_counts(self) -> dict[str, int]:
        return {"statement": len(self._statements), "row": len(self._rows)}

    def __repr__(self) -> str:
        counts = self.entry_counts()
        return (
            f"GraphCache(statements={counts['statement']}/"
            f"{self.config.statement_capacity}, rows={counts['row']}/"
            f"{self.config.row_capacity}, stripes={self.config.stripes})"
        )
