"""Graph overlay configuration (paper §5).

An overlay maps a single property graph onto relational tables/views
*without copying or transforming data*.  The JSON format follows the
paper exactly::

    {
      "v_tables": [
        {"table_name": "Patient",
         "prefixed_id": true,
         "id": "'patient'::patientID",
         "fix_label": true,
         "label": "'patient'",
         "properties": ["patientID", "name", ...]},
        ...
      ],
      "e_tables": [
        {"table_name": "HasDisease",
         "src_v_table": "Patient",
         "src_v": "'patient'::patientID",
         "dst_v_table": "Disease",
         "dst_v": "diseaseID",
         "implicit_edge_id": true,
         "fix_label": true,
         "label": "'hasDisease'"},
        ...
      ]
    }

``properties`` omitted means "all columns not used by required fields"
(paper §5).  A label spec in single quotes is a constant (fixed label);
otherwise it names a column.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..relational.errors import CatalogError
from .ids import IdTemplate


class OverlayError(CatalogError):
    """Raised for invalid overlay configurations."""


@dataclass
class LabelSpec:
    """Either a constant label or a label-bearing column."""

    constant: str | None = None
    column: str | None = None

    @classmethod
    def parse(cls, spec: str, fixed: bool) -> "LabelSpec":
        token = spec.strip()
        if token.startswith("'") and token.endswith("'") and len(token) >= 2:
            return cls(constant=token[1:-1])
        if fixed:
            # fix_label=true with an unquoted value: treat as constant
            return cls(constant=token)
        return cls(column=token)

    @property
    def is_fixed(self) -> bool:
        return self.constant is not None

    def spec(self) -> str:
        if self.constant is not None:
            return f"'{self.constant}'"
        return self.column or ""


@dataclass
class VertexTableConfig:
    table_name: str
    id_spec: str
    label: LabelSpec
    prefixed_id: bool = False
    properties: list[str] | None = None  # None = infer from remaining columns

    def __post_init__(self) -> None:
        self.id_template = IdTemplate.parse(self.id_spec)
        if self.prefixed_id and self.id_template.prefix is None:
            raise OverlayError(
                f"vertex table {self.table_name!r}: prefixed_id is true but the id "
                f"spec {self.id_spec!r} does not start with a constant"
            )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "VertexTableConfig":
        _require(data, "table_name", "id", context="v_tables entry")
        fixed = bool(data.get("fix_label", False))
        if "label" not in data:
            raise OverlayError(f"vertex table {data['table_name']!r} is missing 'label'")
        return cls(
            table_name=data["table_name"],
            id_spec=data["id"],
            label=LabelSpec.parse(data["label"], fixed),
            prefixed_id=bool(data.get("prefixed_id", False)),
            properties=list(data["properties"]) if "properties" in data else None,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"table_name": self.table_name}
        if self.prefixed_id:
            out["prefixed_id"] = True
        out["id"] = self.id_spec
        if self.label.is_fixed:
            out["fix_label"] = True
        out["label"] = self.label.spec()
        if self.properties is not None:
            out["properties"] = list(self.properties)
        return out


@dataclass
class EdgeTableConfig:
    table_name: str
    src_v_spec: str
    dst_v_spec: str
    label: LabelSpec
    src_v_table: str | None = None
    dst_v_table: str | None = None
    id_spec: str | None = None
    prefixed_edge_id: bool = False
    implicit_edge_id: bool = False
    properties: list[str] | None = None
    # Distinguishes multiple edge-table configs over the same physical
    # table (e.g. a fact table used as several edge tables).
    config_name: str | None = None

    def __post_init__(self) -> None:
        self.src_template = IdTemplate.parse(self.src_v_spec)
        self.dst_template = IdTemplate.parse(self.dst_v_spec)
        if self.implicit_edge_id and self.id_spec is not None:
            raise OverlayError(
                f"edge table {self.table_name!r}: implicit_edge_id excludes an "
                f"explicit id spec"
            )
        if not self.implicit_edge_id and self.id_spec is None:
            raise OverlayError(
                f"edge table {self.table_name!r}: needs either an 'id' spec or "
                f"implicit_edge_id"
            )
        self.id_template = IdTemplate.parse(self.id_spec) if self.id_spec else None
        if self.prefixed_edge_id and (
            self.id_template is None or self.id_template.prefix is None
        ):
            raise OverlayError(
                f"edge table {self.table_name!r}: prefixed_edge_id is true but the "
                f"id spec does not start with a constant"
            )
        if self.implicit_edge_id and not self.label.is_fixed:
            raise OverlayError(
                f"edge table {self.table_name!r}: implicit edge ids require a "
                f"fixed label (the label is part of the id)"
            )

    @property
    def name(self) -> str:
        return self.config_name or self.table_name

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EdgeTableConfig":
        _require(data, "table_name", "src_v", "dst_v", context="e_tables entry")
        fixed = bool(data.get("fix_label", False))
        if "label" not in data:
            raise OverlayError(f"edge table {data['table_name']!r} is missing 'label'")
        return cls(
            table_name=data["table_name"],
            src_v_spec=data["src_v"],
            dst_v_spec=data["dst_v"],
            label=LabelSpec.parse(data["label"], fixed),
            src_v_table=data.get("src_v_table"),
            dst_v_table=data.get("dst_v_table"),
            id_spec=data.get("id"),
            prefixed_edge_id=bool(data.get("prefixed_edge_id", False)),
            implicit_edge_id=bool(data.get("implicit_edge_id", False)),
            properties=list(data["properties"]) if "properties" in data else None,
            config_name=data.get("config_name"),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"table_name": self.table_name}
        if self.config_name:
            out["config_name"] = self.config_name
        if self.src_v_table:
            out["src_v_table"] = self.src_v_table
        out["src_v"] = self.src_v_spec
        if self.dst_v_table:
            out["dst_v_table"] = self.dst_v_table
        out["dst_v"] = self.dst_v_spec
        if self.implicit_edge_id:
            out["implicit_edge_id"] = True
        if self.prefixed_edge_id:
            out["prefixed_edge_id"] = True
        if self.id_spec is not None:
            out["id"] = self.id_spec
        if self.label.is_fixed:
            out["fix_label"] = True
        out["label"] = self.label.spec()
        if self.properties is not None:
            out["properties"] = list(self.properties)
        return out


@dataclass
class OverlayConfig:
    v_tables: list[VertexTableConfig] = field(default_factory=list)
    e_tables: list[EdgeTableConfig] = field(default_factory=list)

    # -- serialization ---------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OverlayConfig":
        config = cls(
            v_tables=[VertexTableConfig.from_dict(v) for v in data.get("v_tables", [])],
            e_tables=[EdgeTableConfig.from_dict(e) for e in data.get("e_tables", [])],
        )
        config.validate_internal()
        return config

    @classmethod
    def from_json(cls, text: str) -> "OverlayConfig":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "OverlayConfig":
        return cls.from_json(Path(path).read_text())

    def to_dict(self) -> dict[str, Any]:
        return {
            "v_tables": [v.to_dict() for v in self.v_tables],
            "e_tables": [e.to_dict() for e in self.e_tables],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    # -- validation --------------------------------------------------------------

    def validate_internal(self) -> None:
        """Config-only checks (no catalog access)."""
        if not self.v_tables:
            raise OverlayError("overlay must define at least one vertex table")
        seen_v: set[str] = set()
        for vconf in self.v_tables:
            key = vconf.table_name.lower()
            if key in seen_v:
                raise OverlayError(f"duplicate vertex table {vconf.table_name!r}")
            seen_v.add(key)
        seen_e: set[str] = set()
        for econf in self.e_tables:
            key = econf.name.lower()
            if key in seen_e:
                raise OverlayError(
                    f"duplicate edge table config {econf.name!r}; give one of them "
                    f"a distinct 'config_name'"
                )
            seen_e.add(key)
        by_table = {v.table_name.lower(): v for v in self.v_tables}
        for econf in self.e_tables:
            for endpoint, table, template in (
                ("src_v", econf.src_v_table, econf.src_template),
                ("dst_v", econf.dst_v_table, econf.dst_template),
            ):
                if table is None:
                    continue
                vconf = by_table.get(table.lower())
                if vconf is None:
                    raise OverlayError(
                        f"edge table {econf.name!r}: {endpoint}_table {table!r} is "
                        f"not a vertex table of this overlay"
                    )
                # the endpoint definition must match the vertex table's id
                # definition *shape* (paper §5): same constants, same
                # number of column segments
                if (
                    template.constants != vconf.id_template.constants
                    or template.segment_count() != vconf.id_template.segment_count()
                ):
                    raise OverlayError(
                        f"edge table {econf.name!r}: {endpoint} spec "
                        f"{template.spec()!r} does not match the id definition "
                        f"{vconf.id_template.spec()!r} of vertex table {table!r}"
                    )

    def vertex_table(self, name: str) -> VertexTableConfig:
        for vconf in self.v_tables:
            if vconf.table_name.lower() == name.lower():
                return vconf
        raise OverlayError(f"no vertex table {name!r} in overlay")

    def edge_table(self, name: str) -> EdgeTableConfig:
        for econf in self.e_tables:
            if econf.name.lower() == name.lower():
                return econf
        raise OverlayError(f"no edge table {name!r} in overlay")


def _require(data: dict[str, Any], *keys: str, context: str) -> None:
    for key in keys:
        if key not in data:
            raise OverlayError(f"{context} is missing required key {key!r}")
