"""Tests for the Topology module: overlay resolution against the
catalog, and the §6.3 lookup questions."""

import pytest

from repro.core.overlay import OverlayConfig, OverlayError
from repro.core.topology import Topology
from tests.conftest import HEALTHCARE_TINY_OVERLAY


@pytest.fixture
def topology(paper_db):
    return Topology(paper_db, OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY))


class TestResolution:
    def test_tables_resolved(self, topology):
        assert [v.table_name for v in topology.vertex_tables] == ["Patient", "Disease"]
        assert [e.name for e in topology.edge_tables] == ["DiseaseOntology", "HasDisease"]

    def test_unknown_table_rejected(self, paper_db):
        config = OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY)
        config.v_tables[0].table_name = "Missing"
        with pytest.raises(OverlayError):
            Topology(paper_db, config)

    def test_unknown_column_rejected(self, paper_db):
        broken = dict(HEALTHCARE_TINY_OVERLAY)
        broken = OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY)
        broken.v_tables[1].id_spec = "noSuchColumn"
        broken.v_tables[1].__post_init__()
        with pytest.raises(OverlayError):
            Topology(paper_db, broken)

    def test_default_properties_are_remaining_columns(self, paper_db):
        config = OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY)
        topology = Topology(paper_db, config)
        has_disease = topology.edge_tables[1]
        # paper: "equivalent to defining ['description']"
        assert has_disease.property_columns == ["description"]

    def test_explicit_properties_resolve_case_insensitively(self, paper_db):
        config = OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY)
        config.v_tables[0].properties = ["NAME"]
        topology = Topology(paper_db, config)
        assert topology.vertex_tables[0].property_columns == ["name"]

    def test_label_column_excluded_from_default_properties(self, topology):
        ontology = topology.edge_tables[0]
        assert "type" not in [c.lower() for c in ontology.property_columns]


class TestRowMapping:
    def test_vertex_row_roundtrip(self, topology):
        patient = topology.vertex_tables[0]
        row = {"patientid": 1, "name": "Alice", "address": "x", "subscriptionid": 9}
        assert patient.row_id(row) == "patient::1"
        assert patient.row_label(row) == "patient"
        props = patient.row_properties(row)
        assert props["name"] == "Alice" and props["patientID"] == 1

    def test_vertex_projection(self, topology):
        patient = topology.vertex_tables[0]
        row = {"patientid": 1, "name": "Alice", "address": "x", "subscriptionid": 9}
        assert patient.row_properties(row, ["name"]) == {"name": "Alice"}

    def test_edge_row_roundtrip(self, topology):
        has_disease = topology.edge_tables[1]
        row = {"patientid": 2, "diseaseid": 10, "description": "dx"}
        assert has_disease.row_id(row) == "patient::2::hasDisease::10"
        assert has_disease.row_src(row) == "patient::2"
        assert has_disease.row_dst(row) == 10
        assert has_disease.row_properties(row) == {"description": "dx"}

    def test_column_label_edge(self, topology):
        ontology = topology.edge_tables[0]
        row = {"sourceid": 11, "targetid": 10, "type": "isa"}
        assert ontology.row_label(row) == "isa"
        assert ontology.row_id(row) == "ontology::11::10"

    def test_required_columns_with_projection(self, topology):
        patient = topology.vertex_tables[0]
        columns = patient.required_columns(["name"])
        assert "patientID" in columns  # id columns always included
        assert "name" in columns
        assert "address" not in columns


class TestLookups:
    def test_vertex_tables_with_label(self, topology):
        assert [v.table_name for v in topology.vertex_tables_with_label(["patient"])] == [
            "Patient"
        ]
        assert topology.vertex_tables_with_label(["ghost"]) == []

    def test_column_label_tables_always_searched(self, topology):
        # DiseaseOntology has no fixed label -> must always be searched
        tables = topology.edge_tables_with_label(["whatever"])
        assert [e.name for e in tables] == ["DiseaseOntology"]

    def test_tables_with_property(self, topology):
        assert [
            v.table_name for v in topology.vertex_tables_with_property(["conceptCode"])
        ] == ["Disease"]
        assert [
            e.name for e in topology.edge_tables_with_property(["description"])
        ] == ["HasDisease"]

    def test_prefix_pinning(self, topology):
        pinned = topology.vertex_table_for_prefix("patient::1")
        assert pinned is not None and pinned.table_name == "Patient"
        assert topology.vertex_table_for_prefix(10) is None
        assert topology.vertex_table_for_prefix("ghost::1") is None

    def test_edges_from_to_vertex_table(self, topology):
        assert [e.name for e in topology.edges_from_vertex_table("Patient")] == ["HasDisease"]
        assert [e.name for e in topology.edges_to_vertex_table("Disease")] == [
            "DiseaseOntology", "HasDisease",
        ]

    def test_duplicate_prefix_rejected(self, paper_db):
        config = OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY)
        config.v_tables[1].id_spec = "'patient'::diseaseID"
        config.v_tables[1].prefixed_id = True
        config.v_tables[1].__post_init__()
        with pytest.raises(OverlayError):
            Topology(paper_db, config)


class TestVertexFromEdge:
    def test_subsumption_when_table_is_both(self, db):
        """A fact-like table serving as vertex and edge table."""
        db.execute(
            "CREATE TABLE orders (orderID BIGINT PRIMARY KEY, customerID BIGINT, note VARCHAR)"
        )
        db.execute("CREATE TABLE customer (customerID BIGINT PRIMARY KEY, name VARCHAR)")
        config = OverlayConfig.from_dict(
            {
                "v_tables": [
                    {"table_name": "orders", "prefixed_id": True, "id": "'o'::orderID",
                     "fix_label": True, "label": "'order'", "properties": ["note"]},
                    {"table_name": "customer", "prefixed_id": True, "id": "'c'::customerID",
                     "fix_label": True, "label": "'customer'"},
                ],
                "e_tables": [
                    {"table_name": "orders", "src_v_table": "orders", "src_v": "'o'::orderID",
                     "dst_v_table": "customer", "dst_v": "'c'::customerID",
                     "implicit_edge_id": True, "fix_label": True, "label": "'placedBy'"},
                ],
            }
        )
        topology = Topology(db, config)
        edge_top = topology.edge_tables[0]
        assert topology.vertex_subsumed_by_edge(edge_top, "src") is not None
        assert topology.vertex_subsumed_by_edge(edge_top, "dst") is None

    def test_no_subsumption_for_separate_tables(self, topology):
        has_disease = topology.edge_tables[1]
        assert topology.vertex_subsumed_by_edge(has_disease, "src") is None


class TestViewsInOverlay:
    def test_view_as_edge_table_with_types(self, db):
        db.execute("CREATE TABLE n (id INT PRIMARY KEY, name VARCHAR)")
        db.execute("CREATE TABLE e1 (a INT, b INT)")
        db.execute("CREATE TABLE e2 (a INT, b INT)")
        db.execute(
            "CREATE VIEW combined AS "
            "SELECT e1.a AS a, e2.b AS b FROM e1 JOIN e2 ON e1.b = e2.a"
        )
        config = OverlayConfig.from_dict(
            {
                "v_tables": [
                    {"table_name": "n", "id": "id", "fix_label": True, "label": "'n'"}
                ],
                "e_tables": [
                    {"table_name": "combined", "src_v_table": "n", "src_v": "a",
                     "dst_v_table": "n", "dst_v": "b", "implicit_edge_id": True,
                     "fix_label": True, "label": "'derived'"}
                ],
            }
        )
        topology = Topology(db, config)
        relation = topology.edge_tables[0].relation
        assert relation.is_view
        # inferred types allow id coercion through the view
        assert relation.coerce("a", "5") == 5

    def test_describe_mentions_tables(self, topology):
        text = topology.describe()
        assert "Patient" in text and "HasDisease" in text


class TestRelationInfo:
    def test_has_column_and_canonical_are_case_insensitive(self, topology):
        relation = topology.vertex_tables[0].relation
        assert relation.has_column("PATIENTID")
        assert relation.canonical("patientid") == "patientID"

    def test_canonical_unknown_column_raises(self, topology):
        relation = topology.vertex_tables[0].relation
        with pytest.raises(OverlayError):
            relation.canonical("noSuchColumn")

    def test_coerce_typed_untyped_and_null(self, topology):
        relation = topology.vertex_tables[0].relation
        assert relation.coerce("patientID", "7") == 7
        assert relation.coerce("patientID", None) is None
        # unknown column -> no type information -> passthrough
        assert relation.coerce("ghost", "7") == "7"


class TestColumnSets:
    def test_required_columns_deduplicate_id_and_property_overlap(self, topology):
        # patientID is both the id column and (by default) a property —
        # the SELECT list must name it exactly once.
        patient = topology.vertex_tables[0]
        columns = patient.required_columns()
        assert len(columns) == len({c.lower() for c in columns})
        assert "patientID" in columns

    def test_edge_required_columns_cover_endpoints_and_label(self, topology):
        ontology = topology.edge_tables[0]  # column label, explicit id
        columns = {c.lower() for c in ontology.required_columns()}
        assert {"sourceid", "targetid", "type"} <= columns

    def test_edge_required_columns_projection_still_fetches_endpoints(self, topology):
        has_disease = topology.edge_tables[1]
        columns = {c.lower() for c in has_disease.required_columns([])}
        assert {"patientid", "diseaseid"} <= columns
        assert "description" not in columns

    def test_has_property_is_case_insensitive(self, topology):
        disease = topology.vertex_tables[1]
        assert disease.has_property("CONCEPTCODE")
        assert not disease.has_property("description")


class TestLookupEdgeCases:
    def test_vertex_table_unknown_name_raises(self, topology):
        with pytest.raises(OverlayError):
            topology.vertex_table("Missing")

    def test_vertex_table_lookup_is_case_insensitive(self, topology):
        assert topology.vertex_table("PATIENT").table_name == "Patient"

    def test_multi_property_lookup_requires_all(self, topology):
        both = topology.vertex_tables_with_property(["conceptCode", "conceptName"])
        assert [v.table_name for v in both] == ["Disease"]
        assert topology.vertex_tables_with_property(["conceptCode", "name"]) == []

    def test_label_lookup_with_multiple_labels(self, topology):
        tables = topology.vertex_tables_with_label(["patient", "disease"])
        assert [v.table_name for v in tables] == ["Patient", "Disease"]

    def test_prefix_pinning_ignores_unprefixed_config(self, paper_db):
        # Disease ids are plain ints; even an id shaped like a prefix
        # must not pin to a table that didn't declare prefixed_id.
        config = OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY)
        topology = Topology(paper_db, config)
        assert topology.vertex_table_for_prefix("disease::1") is None

    def test_row_label_from_column_stringifies(self, paper_db):
        config = OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY)
        topology = Topology(paper_db, config)
        ontology = topology.edge_tables[0]
        assert ontology.row_label({"sourceid": 1, "targetid": 2, "type": 99}) == "99"
