"""Structured trace events for the whole query path.

A :class:`TraceRecorder` collects :class:`TraceEvent` spans as a query
moves through the stack:

=====================  =====================================================
event name             attributes
=====================  =====================================================
``traversal.parsed``   ``script`` — Gremlin text handed to the parser
``traversal.compiled`` ``original``/``plan`` — step plans before/after the
                       full strategy set
``strategy.applied``   ``strategy``, ``before``, ``after`` — one event per
                       strategy that changed the plan (§6.2)
``table.queried``      ``table``, ``kind`` (``vertex``/``edge``) — a table
                       survived elimination and was queried
``table.eliminated``   ``table``, ``rule`` — which §6.3 rule removed the
                       table (``label_values``, ``property_names``,
                       ``prefixed_ids``, ``implicit_edge_ids``,
                       ``src_dst_tables``)
``sql.issued``         ``sql``, ``params``, ``rows``, ``seconds``,
                       ``statement_id`` — a process-stable id assigned at
                       build time so events interleaved by worker threads
                       still correlate with explain()/profile() output
``sql.batched``        ``statement_id``, ``table``, ``size`` — one
                       statement coalesced ``size`` (>1) traverser ids
                       into a single ``IN (...)`` probe
``fanout.parallel``    ``tasks``, ``parallelism`` — a multi-statement
                       fan-out was dispatched on the worker pool instead
                       of running serially
``vertex.from_edge``   ``table`` — endpoint built from the edge row
                       without SQL (§6.3)
``vertex.lazy``        ``table`` hint — endpoint handed out unmaterialized
``lock.wait``          ``table``, ``owner``, ``exclusive`` — an acquire
                       blocked and registered a wait-for edge
``deadlock.detected``  ``table``, ``victim``, ``cycle`` — a lock wait
                       closed a wait-for cycle; the victim gets
                       :class:`DeadlockError`
``sql.error``          ``error`` (class name), ``statement`` — a statement
                       failed inside the executor
``retry.attempt``      ``error``, ``attempt``, ``delay`` — a transient
                       failure will be retried after backoff
``retry.exhausted``    ``error``, ``attempts`` — retries ran out; the last
                       error propagates
``budget.exceeded``    ``reason``, ``progress`` — a query budget tripped
                       (deadline / statements / rows / traversers)
``fault.injected``     ``kind``, ``table``, ``statement`` — the fault
                       injector fired (chaos tests only)
``cache.hit``          ``segment`` (``statement``/``row``), ``table`` — a
                       graph-cache entry was served (epoch vector matched)
``cache.miss``         ``segment``, ``table`` — no servable entry; the
                       statement ran and may fill on success
``cache.evict``        ``segment``, ``table`` — a fill pushed an entry out
                       of a full segment (capacity pressure, not staleness)
``cache.invalidate``   ``table`` — a DML commit bumped the table's epoch,
                       invalidating every entry that depends on it
``cache.bypass.txn``   ``segment``, ``table`` — a lookup inside an active
                       explicit transaction skipped the cache
                       (read-your-writes / snapshot isolation)
``wal.append``         ``kind`` (record kind), ``table`` — one record
                       buffered for the write-ahead log
``wal.flush``          ``segment``, ``records`` — buffered frames written
                       (and fsynced) to the current WAL segment
``checkpoint.written`` ``segment``, ``bytes`` — a checkpoint was written
                       and atomically renamed into place
``recovery.replayed``  ``kind`` (``txn``/``ddl``) plus ``txn``/``csn`` or
                       ``op`` — one committed WAL unit redone during
                       crash recovery
``recovery.discarded`` ``txn``, ``ops`` — an uncommitted transaction tail
                       (possibly torn) discarded during crash recovery
``service.admitted``   ``session``, ``depth`` — a request passed admission
                       control and joined the dispatch queue at ``depth``
``service.rejected``   ``depth``, ``retry_after`` — the admission queue was
                       full; the caller got backpressure with a retry hint
``service.shed``       ``session``, ``queued_seconds`` — a queued request's
                       budget deadline expired before a worker picked it
                       up; it was dropped without executing
``service.queued``     ``depth`` — queue-depth sample taken at admission
                       (mirrors one ``service.queue_depth`` histogram
                       observation)
``service.session.open``  ``session``, ``user`` — a logical session opened
                       its per-session graph handle on the shared database
``service.session.close`` ``session``, ``rolled_back`` — a session closed;
                       ``rolled_back`` marks an abandoned open transaction
                       the service rolled back on the session's behalf
``analytics.step``     ``algorithm``, ``step``, ``size`` — the bulk
                       analytics engine expanded (or iterated) one whole
                       frontier level
``frontier.size``      ``algorithm``, ``step``, ``size`` — frontier-size
                       sample taken at each analytics step (mirrors one
                       ``frontier.size`` histogram observation)
``analytics.converged`` ``algorithm``, ``steps`` — an algorithm reached
                       natural convergence (frontier drained / fixpoint /
                       tolerance met), as opposed to a depth or iteration
                       cutoff
``repl.ship``          ``frames``, ``from_seq``, ``epoch`` — one batch of
                       durable WAL frames appended to the replication
                       stream by the primary
``repl.apply``         ``replica``, ``kind`` (``txn``/``ddl``), ``csn`` —
                       a replica finished redo-applying one committed
                       group or DDL record
``repl.ack``           ``replica``, ``acked_seq`` — a replica's cumulative
                       ack advanced at the primary (carried by its fetch)
``repl.fenced``        ``where``, ``seen_epoch``, ``local_epoch`` — a
                       stale-epoch frame batch was rejected on append, or
                       a deposed primary's write was refused
``repl.retransmit``    ``replica``, ``from_seq`` — the primary re-served
                       frames it had already sent (loss/tear recovery)
``repl.read.fallthrough`` ``session``, ``needed_csn``, ``applied_csn`` —
                       a replica read could not meet its staleness bound
                       and was rerouted to the primary
``failover.promote``   ``replica``, ``epoch``, ``applied_csn`` — a replica
                       was promoted to primary under a new fencing epoch
``repl.lag``           ``replica``, ``lag`` — replication-lag sample (CSNs
                       behind the primary) taken at each processed ack
                       (mirrors one ``repl.lag`` histogram observation)
=====================  =====================================================

Every event carries a process-wide monotonically increasing
``sequence`` so interleavings are reconstructible.  Recording is *off
by default* — every emission site checks ``recorder.enabled`` before
building the attribute dict, so the disabled cost is one attribute
read and one branch.  Db2Graph exposes ``enable_tracing()``.

Trace events and metrics counters are deliberately emitted at the same
program points: ``stats()["tables_eliminated"]`` must always equal the
number of ``table.eliminated`` events recorded while tracing was on —
a property the test suite enforces so the counters can never silently
drift from reality.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

_SEQUENCE = itertools.count()


@dataclass(frozen=True)
class TraceEvent:
    """One structured span event."""

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    seconds: float | None = None
    sequence: int = -1

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.attributes.items())
        timing = f", {self.seconds * 1e3:.3f}ms" if self.seconds is not None else ""
        return f"<{self.name} {parts}{timing}>"


class TraceRecorder:
    """Collects trace events in order; bounded to ``max_events``.

    The bound protects long-running benchmarks that forget to disable
    tracing: once full, the recorder counts drops instead of growing.
    """

    def __init__(self, enabled: bool = False, max_events: int = 100_000):
        self.enabled = enabled
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        # Fan-out workers emit concurrently; the bound check plus append
        # must be atomic or the buffer overshoots / drop counts race.
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def emit(self, name: str, seconds: float | None = None, **attributes: Any) -> None:
        if not self.enabled:
            return
        event = TraceEvent(name, attributes, seconds, next(_SEQUENCE))
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                return
            self.events.append(event)

    # -- reading -----------------------------------------------------------

    def named(self, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def count(self, name: str, **attribute_filter: Any) -> int:
        total = 0
        for event in self.events:
            if event.name != name:
                continue
            if all(event.get(k) == v for k, v in attribute_filter.items()):
                total += 1
        return total

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
            self.dropped = 0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"TraceRecorder({state}, {len(self.events)} events)"


#: Shared disabled recorder: modules that receive no recorder point at
#: this singleton so the hot path is a plain attribute check, never a
#: ``None`` test plus a check.
NULL_RECORDER = TraceRecorder(enabled=False)


# Event-name constants (mirror the table in the module docstring).
TRAVERSAL_PARSED = "traversal.parsed"
TRAVERSAL_COMPILED = "traversal.compiled"
STRATEGY_APPLIED = "strategy.applied"
TABLE_QUERIED = "table.queried"
TABLE_ELIMINATED = "table.eliminated"
SQL_ISSUED = "sql.issued"
SQL_BATCHED = "sql.batched"
FANOUT_PARALLEL = "fanout.parallel"
VERTEX_FROM_EDGE = "vertex.from_edge"
VERTEX_LAZY = "vertex.lazy"
LOCK_WAIT = "lock.wait"
DEADLOCK_DETECTED = "deadlock.detected"
SQL_ERROR = "sql.error"
RETRY_ATTEMPT = "retry.attempt"
RETRY_EXHAUSTED = "retry.exhausted"
BUDGET_EXCEEDED = "budget.exceeded"
FAULT_INJECTED = "fault.injected"
CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
CACHE_EVICT = "cache.evict"
CACHE_INVALIDATE = "cache.invalidate"
CACHE_BYPASS_TXN = "cache.bypass.txn"
WAL_APPEND = "wal.append"
WAL_FLUSH = "wal.flush"
CHECKPOINT_WRITTEN = "checkpoint.written"
RECOVERY_REPLAYED = "recovery.replayed"
RECOVERY_DISCARDED = "recovery.discarded"
SERVICE_ADMITTED = "service.admitted"
SERVICE_REJECTED = "service.rejected"
SERVICE_SHED = "service.shed"
SERVICE_QUEUED = "service.queued"
SERVICE_SESSION_OPEN = "service.session.open"
SERVICE_SESSION_CLOSE = "service.session.close"
ANALYTICS_STEP = "analytics.step"
FRONTIER_SIZE = "frontier.size"
ANALYTICS_CONVERGED = "analytics.converged"
REPL_SHIP = "repl.ship"
REPL_APPLY = "repl.apply"
REPL_ACK = "repl.ack"
REPL_FENCED = "repl.fenced"
REPL_RETRANSMIT = "repl.retransmit"
REPL_READ_FALLTHROUGH = "repl.read.fallthrough"
FAILOVER_PROMOTE = "failover.promote"
REPL_LAG = "repl.lag"
