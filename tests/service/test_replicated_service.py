"""Service-level replication: read-only sessions bound to hot
standbys, staleness-contract routing with primary fall-through,
read-your-writes tokens, heartbeat-driven automatic failover, the
stats/health surfaces, and the history checker's replica-read rules.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Db2Graph
from repro.durability.config import DurabilityConfig
from repro.obs import tracing
from repro.relational import Database
from repro.replication import ReplicationConfig
from repro.service import GraphService, ServiceConfig
from repro.service.errors import ServiceError, SessionClosedError
from repro.service.history import (
    BEGIN,
    COMMIT,
    INCREMENT,
    READ,
    HistoryOp,
    HistoryRecorder,
    check_history,
)

pytestmark = [pytest.mark.service, pytest.mark.replication]

OVERLAY = {
    "v_tables": [
        {"table_name": "item", "id": "id", "fix_label": True,
         "label": "'item'", "properties": ["id", "name"]},
    ],
    "e_tables": [
        {"table_name": "link", "src_v_table": "item", "src_v": "src",
         "dst_v_table": "item", "dst_v": "dst",
         "implicit_edge_id": True, "fix_label": True, "label": "'link'"},
    ],
}


def make_durable_db(tmp_path) -> Database:
    db = Database(
        name="svc-primary",
        durability=DurabilityConfig(dir=str(tmp_path / "wal"), fsync=False),
    )
    db.execute("CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE link (src INT, dst INT)")
    db.execute("INSERT INTO item VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    db.execute("INSERT INTO link VALUES (1, 2), (2, 3)")
    return db


def make_service(tmp_path, **repl_kwargs) -> GraphService:
    repl_kwargs.setdefault("replicas", 1)
    return GraphService(
        make_durable_db(tmp_path),
        OVERLAY,
        ServiceConfig(workers=2),
        replication=ReplicationConfig(**repl_kwargs),
    )


def _fallthrough_events(service):
    return [
        e for e in service.trace.events
        if e.name == tracing.REPL_READ_FALLTHROUGH
    ]


def test_read_only_session_is_served_by_a_standby(tmp_path):
    service = make_service(tmp_path)
    try:
        ro = service.open_session(read_only=True)
        assert ro.read_only and ro.replica_id == "replica-0"
        assert ro.run(lambda s: s.g.V().count().next()) == 3
        assert ro.replica_reads == 1 and ro.fallthrough_reads == 0
        # Outside a request the session's graph is the primary-bound
        # handle; routing happens only for the request's duration.
        assert ro.graph is ro._graph
    finally:
        service.shutdown(timeout=10)


def test_rw_sessions_never_route_to_replicas(tmp_path):
    service = make_service(tmp_path)
    try:
        rw = service.open_session()
        assert rw.replica_id is None and rw.replica_graph is None
        assert rw.run(lambda s: s.g.V().count().next()) == 3
        assert rw.replica_reads == 0
    finally:
        service.shutdown(timeout=10)


def test_dead_replica_falls_through_to_primary(tmp_path):
    service = make_service(tmp_path)
    service.enable_tracing()
    try:
        ro = service.open_session(read_only=True)
        service.replication.get_replica("replica-0").kill()
        assert ro.run(lambda s: s.g.V().count().next()) == 3
        assert ro.fallthrough_reads == 1 and ro.replica_reads == 0
        # 1:1 counter/event reconciliation for the fall-through stream.
        assert service.stats()["read_fallthrough"] == len(
            _fallthrough_events(service)
        ) == 1
    finally:
        service.shutdown(timeout=10)


def test_session_with_no_live_standby_at_open_always_falls_through(tmp_path):
    service = make_service(tmp_path)
    try:
        service.replication.get_replica("replica-0").kill()
        ro = service.open_session(read_only=True)
        assert ro.replica_id is None
        assert ro.run(lambda s: s.g.V().count().next()) == 3
        assert ro.fallthrough_reads == 1
    finally:
        service.shutdown(timeout=10)


def test_read_your_writes_token_is_honored(tmp_path):
    # Async ack: the standby genuinely lags the primary between pumps.
    service = make_service(tmp_path, ack="async")
    try:
        rw = service.open_session()
        ro = service.open_session(read_only=True)

        def write(s):
            s.connection.begin()
            s.connection.execute("INSERT INTO item VALUES (4, 'd')")
            return s.connection.commit()  # the CSN is the RYW token

        token = rw.run(write)
        assert token > 0
        # With the token the read must observe the write — served by
        # the standby once it catches up, or by primary fall-through.
        count = ro.run(lambda s: s.g.V().count().next(), min_csn=token)
        assert count == 4
        # Without a token a stale-but-consistent snapshot is allowed,
        # but the bound (default max_staleness_csn) still applies.
        assert ro.run(lambda s: s.g.V().count().next()) in (3, 4)
    finally:
        service.shutdown(timeout=10)


def test_heartbeat_auto_promotes_when_primary_dies(tmp_path):
    service = make_service(tmp_path, heartbeat_interval=0.01)
    try:
        old_db = service.database
        session = service.open_session(read_only=True)
        # Simulate a primary crash mid-flight (what SimulatedCrash does).
        old_db.durability.dead = True
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if service.stats()["failover_promotions"] >= 1:
                break
            time.sleep(0.01)
        stats = service.stats()
        assert stats["failover_promotions"] == 1
        assert stats["heartbeats"] >= 1
        assert service.database is not old_db
        assert service.replication.last_failover["lost_commits"] == 0
        # Every session was bound to the deposed primary: closed.
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.run(lambda s: s.g.V().count().next())
        # Fresh sessions serve traversals against the survivor.
        fresh = service.open_session()
        assert fresh.run(lambda s: s.g.V().count().next()) == 3
        fresh.run(
            lambda s: s.connection.execute("INSERT INTO item VALUES (9, 'z')")
        )
        assert fresh.run(lambda s: s.g.V().count().next()) == 4
    finally:
        service.shutdown(timeout=10)


def test_manual_promote_swaps_database_and_rebuilds_cache(tmp_path):
    service = GraphService(
        make_durable_db(tmp_path),
        OVERLAY,
        ServiceConfig(workers=2),
        cache=True,
        replication=ReplicationConfig(replicas=2),
    )
    try:
        old_db = service.database
        old_cache = service.cache
        ro = service.open_session(read_only=True)
        assert ro.run(lambda s: s.g.V().count().next()) == 3
        report = service.promote()
        assert report["lost_commits"] == 0
        assert service.database is not old_db
        assert service.cache is not old_cache
        assert ro.closed
        # One standby remains: a new read-only session binds it.
        ro2 = service.open_session(read_only=True)
        assert ro2.replica_id is not None
        assert ro2.run(lambda s: s.g.V().count().next()) == 3
        rw = service.open_session()
        rw.run(lambda s: s.connection.execute("INSERT INTO item VALUES (5, 'e')"))
        assert ro2.run(lambda s: s.g.V().count().next()) == 4
    finally:
        service.shutdown(timeout=10)


def test_promote_without_replication_raises(tmp_path):
    service = GraphService(make_durable_db(tmp_path), OVERLAY, ServiceConfig(workers=2))
    try:
        assert service.replication is None
        with pytest.raises(ServiceError):
            service.promote()
    finally:
        service.shutdown(timeout=10)


# -- stats / health shape pinning (the ops surface is a contract) ------------

SERVICE_STATS_KEYS = {
    "sessions_open", "admitted", "rejected", "shed", "sessions_opened",
    "sessions_closed", "completed", "failed", "queue_depth",
    "queue_depth_max", "queue_depth_samples", "read_fallthrough",
    "failover_promotions", "heartbeats", "replication",
}

SERVICE_HEALTH_KEYS = {
    "database", "durable", "alive", "last_logged_csn", "recovery_report",
    "sessions_open", "queue_depth", "draining", "heartbeats", "replication",
}

REPLICATION_STATUS_KEYS = {
    "epoch", "ack", "max_staleness_csn", "log_frames", "unacked_commits",
    "promotions", "ack_timeouts", "primary_dead", "last_failover",
    "replicas", "transport",
}


def test_service_stats_and_health_shapes_are_pinned(tmp_path):
    service = make_service(tmp_path)
    try:
        stats = service.stats()
        assert set(stats) == SERVICE_STATS_KEYS
        assert set(stats["replication"]) == REPLICATION_STATUS_KEYS
        health = service.health()
        assert set(health) == SERVICE_HEALTH_KEYS
        assert health["durable"] and health["alive"]
        assert health["recovery_report"] is None  # fresh WAL: no recovery
        assert health["replication"]["epoch"] == 1
    finally:
        service.shutdown(timeout=10)


def test_unreplicated_service_shapes_use_none(tmp_path):
    db = Database()
    db.execute("CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE link (src INT, dst INT)")
    service = GraphService(db, OVERLAY, ServiceConfig(workers=2))
    try:
        stats = service.stats()
        assert set(stats) == SERVICE_STATS_KEYS
        assert stats["replication"] is None
        assert stats["read_fallthrough"] == 0
        health = service.health()
        assert set(health) == SERVICE_HEALTH_KEYS
        assert health["replication"] is None
        assert health["durable"] is False and health["alive"] is True
    finally:
        service.shutdown(timeout=10)


def test_recovery_report_surfaces_through_health(tmp_path):
    wal_dir = str(tmp_path / "wal")
    db = Database(durability=DurabilityConfig(dir=wal_dir, fsync=False))
    db.execute("CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE link (src INT, dst INT)")
    db.execute("INSERT INTO item VALUES (1, 'a')")
    db.close()
    reopened = Database.open(DurabilityConfig(dir=wal_dir, fsync=False))
    service = GraphService(reopened, OVERLAY, ServiceConfig(workers=2))
    try:
        report = service.health()["recovery_report"]
        assert report is not None
        assert report["replayed_txns"] >= 1  # a real dict, JSON-shaped
        graph_stats = Db2Graph.open(reopened, OVERLAY).stats()
        assert graph_stats["recovery_report"] == report
    finally:
        service.shutdown(timeout=10)


# -- history checker: replica reads are legal stale snapshots ----------------


def _history(*specs):
    recorder = HistoryRecorder()
    t = 0.0
    for session, txn, kind, kw in specs:
        t += 1.0
        recorder.record(
            HistoryOp(
                session=session, txn=txn, kind=kind,
                start=kw.pop("start", t), end=kw.pop("end", t + 0.5), **kw,
            )
        )
    return recorder.ops


def test_stale_replica_read_is_legal_but_same_primary_read_is_not():
    specs = (
        (1, 1, BEGIN, {"isolation": "read_committed"}),
        (1, 1, INCREMENT, {"key": 0}),
        (1, 1, COMMIT, {"value": 10}),
        # Starts well after commit 10 returned, yet observes the state
        # before it — exactly what a lagging standby serves.
        (2, None, READ, {"value": {0: 0}, "replica": True}),
    )
    stale = check_history(_history(*specs), {0: 1})
    assert stale.ok, stale.violations

    primary_specs = specs[:-1] + (
        (2, None, READ, {"value": {0: 0}}),  # same read, not a replica
    )
    fresh = check_history(_history(*primary_specs), {0: 1})
    assert not fresh.ok  # recency lower bound applies on the primary


def test_replica_read_must_cover_its_read_your_writes_token():
    ops = _history(
        (1, 1, BEGIN, {"isolation": "read_committed"}),
        (1, 1, INCREMENT, {"key": 0}),
        (1, 1, COMMIT, {"value": 10}),
        (2, None, READ, {"value": {0: 0}, "replica": True, "min_csn": 10}),
    )
    result = check_history(ops, {0: 1})
    assert any("read-your-writes violation" in v for v in result.violations)

    ok_ops = _history(
        (1, 1, BEGIN, {"isolation": "read_committed"}),
        (1, 1, INCREMENT, {"key": 0}),
        (1, 1, COMMIT, {"value": 10}),
        (2, None, READ, {"value": {0: 1}, "replica": True, "min_csn": 10}),
    )
    assert check_history(ok_ops, {0: 1}).ok


def test_replica_reads_are_exempt_from_session_monotonicity():
    specs = (
        (1, 1, BEGIN, {"isolation": "read_committed"}),
        (1, 1, INCREMENT, {"key": 0}),
        (1, 1, COMMIT, {"value": 10}),
        # One session: a fresh primary read, then a stale replica read
        # (fall-through then replica routing) — legal.
        (2, None, READ, {"value": {0: 1}}),
        (2, None, READ, {"value": {0: 0}, "replica": True}),
    )
    result = check_history(_history(*specs), {0: 1})
    assert result.ok, result.violations

    primary_specs = specs[:-1] + ((2, None, READ, {"value": {0: 0}}),)
    backwards = check_history(_history(*primary_specs), {0: 1})
    assert not backwards.ok  # primary reads must stay monotonic


def test_replica_read_may_never_observe_the_future():
    ops = _history(
        (1, 1, BEGIN, {"isolation": "read_committed"}),
        (1, 1, INCREMENT, {"key": 0}),
        # Replica read *ends* before the commit even starts, yet
        # observes it: stale is legal, clairvoyant is not.
        (2, None, READ, {"value": {0: 1}, "replica": True, "start": 1.0, "end": 1.2}),
        (1, 1, COMMIT, {"value": 10, "start": 5.0, "end": 5.5}),
    )
    result = check_history(ops, {0: 1})
    assert not result.ok
