"""Service-layer errors.

Admission-control rejections are *transient by design*: the caller is
expected to back off ``retry_after`` seconds and resubmit, exactly like
a client of an overloaded database gateway.  They carry
``transient = True`` so the resilience classifier
(:func:`repro.resilience.retry.is_transient`) treats them as retryable
without the service importing the retry module.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for every service-layer failure."""


class AdmissionRejectedError(ServiceError):
    """The bounded admission queue is full — backpressure.

    ``retry_after`` is the service's estimate (seconds) of when a slot
    will free up: queued work divided by worker drain rate, from a
    moving average of recent request service times.
    """

    transient = True

    def __init__(self, message: str, retry_after: float = 0.0, depth: int = 0):
        super().__init__(message)
        self.retry_after = retry_after
        self.depth = depth


class ServiceDrainingError(AdmissionRejectedError):
    """The service is draining/shut down and admits no new work.

    Still an admission rejection (callers can treat both uniformly),
    but ``retry_after`` is meaningless — the queue is not coming back.
    """

    transient = False


class RequestShedError(ServiceError):
    """A queued request's budget deadline expired before dispatch.

    Deadline-aware scheduling: running a query whose caller already
    gave up wastes a worker, so the dispatcher drops it and delivers
    this error (with the time it sat queued) instead.  ``retry_after``
    carries the same drain-rate estimate as admission rejections, so a
    shed caller can back off exactly like a rejected one instead of
    hammering an already-behind queue.
    """

    transient = True

    def __init__(
        self,
        message: str,
        queued_seconds: float = 0.0,
        retry_after: float = 0.0,
    ):
        super().__init__(message)
        self.queued_seconds = queued_seconds
        self.retry_after = retry_after


class SessionClosedError(ServiceError):
    """An operation was submitted on a closed (or never-opened) session."""


class SessionLimitError(ServiceError):
    """open_session() was called with ``max_sessions`` already open."""
