"""Unit tests for the clock abstraction."""

import time

import pytest

from repro.common.clock import ManualClock, SystemClock


def test_system_clock_tracks_wall_time():
    clock = SystemClock()
    before = time.time()
    now = clock.now()
    after = time.time()
    assert before <= now <= after


def test_manual_clock_is_frozen():
    clock = ManualClock(500.0)
    assert clock.now() == 500.0
    assert clock.now() == 500.0


def test_manual_clock_advance():
    clock = ManualClock(100.0)
    assert clock.advance(5) == 105.0
    assert clock.now() == 105.0


def test_manual_clock_set():
    clock = ManualClock(100.0)
    clock.set(250.0)
    assert clock.now() == 250.0


def test_manual_clock_rejects_backwards():
    clock = ManualClock(100.0)
    with pytest.raises(ValueError):
        clock.advance(-1)
    with pytest.raises(ValueError):
        clock.set(50.0)
