"""QueryBudget / BudgetTracker: limits, deadlines with a fake clock,
partial-progress payloads, and single emission on trip."""

from __future__ import annotations

import pytest

from repro.obs import metrics as M
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceRecorder
from repro.resilience import BudgetExceededError, QueryBudget, QueryTimeoutError


class TickClock:
    """A monotonic-style clock that only moves when told to."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


def test_limits_must_be_positive():
    for field in ("deadline_seconds", "max_sql_statements", "max_rows", "max_traversers"):
        with pytest.raises(ValueError):
            QueryBudget(**{field: 0})


def test_unlimited_budget_never_trips():
    tracker = QueryBudget().tracker()
    for _ in range(1000):
        tracker.note_sql()
        tracker.note_rows(100)
        tracker.note_traverser()
    assert tracker.progress()["sql_issued"] == 1000


def test_max_sql_statements_trips_with_progress():
    tracker = QueryBudget(max_sql_statements=3, clock=TickClock()).tracker()
    tracker.note_sql()
    tracker.note_sql()
    tracker.note_sql()
    with pytest.raises(BudgetExceededError) as info:
        tracker.note_sql()
    assert info.value.reason == "max_sql_statements"
    assert info.value.progress["sql_issued"] == 4


def test_max_rows_trips():
    tracker = QueryBudget(max_rows=10).tracker()
    tracker.note_rows(7)
    with pytest.raises(BudgetExceededError) as info:
        tracker.note_rows(5)
    assert info.value.reason == "max_rows"
    assert info.value.progress["rows_fetched"] == 12


def test_max_traversers_trips():
    tracker = QueryBudget(max_traversers=2).tracker()
    tracker.note_traverser()
    tracker.note_traverser()
    with pytest.raises(BudgetExceededError) as info:
        tracker.note_traverser()
    assert info.value.reason == "max_traversers"
    assert info.value.progress["traversers_spawned"] == 3


def test_deadline_uses_injected_clock_no_sleeping():
    clock = TickClock()
    tracker = QueryBudget(deadline_seconds=1.0, clock=clock).tracker()
    tracker.note_sql()  # well inside the deadline
    clock.now = 0.9
    tracker.check_deadline()  # still inside
    clock.now = 1.5
    with pytest.raises(QueryTimeoutError) as info:
        tracker.note_sql()
    assert info.value.reason == "deadline"
    assert info.value.progress["elapsed_seconds"] == pytest.approx(1.5)
    assert info.value.progress["sql_issued"] == 2


def test_tripped_tracker_keeps_raising_same_error():
    tracker = QueryBudget(max_sql_statements=1).tracker()
    tracker.note_sql()
    with pytest.raises(BudgetExceededError) as first:
        tracker.note_sql()
    with pytest.raises(BudgetExceededError) as second:
        tracker.check_deadline()
    assert second.value is first.value


def test_emits_counter_and_event_exactly_once():
    registry = MetricsRegistry()
    trace = TraceRecorder(enabled=True)
    tracker = QueryBudget(max_traversers=1).tracker(registry, trace)
    tracker.note_traverser()
    with pytest.raises(BudgetExceededError):
        tracker.note_traverser()
    with pytest.raises(BudgetExceededError):
        tracker.note_traverser()  # dying generator stack re-checks
    assert registry.counter(M.BUDGET_EXCEEDED).value == 1
    assert trace.count(tracing.BUDGET_EXCEEDED) == 1
    event = trace.named(tracing.BUDGET_EXCEEDED)[0]
    assert event.get("reason") == "max_traversers"
    assert event.get("progress")["traversers_spawned"] == 2


def test_guard_wraps_stream_and_counts_steps():
    tracker = QueryBudget(max_traversers=100).tracker()
    assert list(tracker.guard(iter(range(5)))) == [0, 1, 2, 3, 4]
    assert tracker.traversers_spawned == 5
    assert tracker.steps_completed == 1


def test_guard_aborts_runaway_stream():
    tracker = QueryBudget(max_traversers=3).tracker()
    with pytest.raises(BudgetExceededError):
        list(tracker.guard(iter(range(1000))))
    assert tracker.steps_completed == 0  # never finished
    assert tracker.traversers_spawned == 4
