"""Durability configuration and the ``REPRO_WAL_*`` environment knobs.

Mirrors the cache/fan-out convention: an explicit argument wins, then
the environment, then off.  ``Database(durability=...)`` accepts:

* ``None``  — consult ``REPRO_WAL_DIR``; when set, the database logs
  into a fresh unique subdirectory of it (the CI soak leg uses this to
  run the whole suite under durable commits),
* ``False`` — force off regardless of environment,
* a ``str``/``Path`` — shorthand for ``DurabilityConfig(dir=...)``,
* a :class:`DurabilityConfig` — explicit settings.

Knobs:

=========================  ==============================================
``REPRO_WAL_DIR``          parent directory for env-enabled databases
``REPRO_WAL_FSYNC``        ``0`` skips the fsync at the flush boundary
                           (appends still reach the OS page cache; an
                           in-process crash loses nothing, a power cut
                           could)
``REPRO_CHECKPOINT_EVERY`` auto-checkpoint after N commits (0 = only
                           explicit ``Database.checkpoint()`` calls)
=========================  ==============================================
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

WAL_DIR_ENV = "REPRO_WAL_DIR"
WAL_FSYNC_ENV = "REPRO_WAL_FSYNC"
CHECKPOINT_EVERY_ENV = "REPRO_CHECKPOINT_EVERY"

_FALSY = {"0", "false", "no", "off"}


def _default_fsync() -> bool:
    return os.environ.get(WAL_FSYNC_ENV, "").strip().lower() not in _FALSY


def _default_checkpoint_every() -> int:
    raw = os.environ.get(CHECKPOINT_EVERY_ENV, "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


@dataclass
class DurabilityConfig:
    """Where and how a database logs.

    ``fsync`` is the pluggable flush boundary: ``True`` calls
    ``os.fsync`` after every WAL flush, ``False`` stops at the OS write,
    and a callable receives the file descriptor (tests inject a counter
    or a failure here).  ``checkpoint_every`` triggers an automatic
    checkpoint after that many commits (0 disables automatic
    checkpoints).
    """

    dir: str | Path
    fsync: bool | Callable[[int], None] = field(default_factory=_default_fsync)
    checkpoint_every: int = field(default_factory=_default_checkpoint_every)

    def __post_init__(self) -> None:
        self.dir = Path(self.dir)
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")

    def do_fsync(self, fd: int) -> None:
        if self.fsync is True:
            os.fsync(fd)
        elif callable(self.fsync):
            self.fsync(fd)


def resolve_durability_config(
    durability: "DurabilityConfig | str | Path | bool | None", name: str = "db"
) -> DurabilityConfig | None:
    """``None`` return means "run in-memory only"; see module docstring."""
    if durability is None:
        parent = os.environ.get(WAL_DIR_ENV, "").strip()
        if not parent:
            return None
        os.makedirs(parent, exist_ok=True)
        unique = tempfile.mkdtemp(prefix=f"{name}-", dir=parent)
        return DurabilityConfig(dir=unique)
    if durability is False:
        return None
    if durability is True:
        raise TypeError(
            "durability=True is ambiguous — pass a directory, a "
            "DurabilityConfig, or set REPRO_WAL_DIR and pass None"
        )
    if isinstance(durability, (str, Path)):
        return DurabilityConfig(dir=durability)
    if isinstance(durability, DurabilityConfig):
        return durability
    raise TypeError(
        f"durability must be None, False, a path, or DurabilityConfig, got {durability!r}"
    )


def wal_filename(segment: int) -> str:
    return f"wal-{segment:08d}.log"


def checkpoint_filename(segment: int) -> str:
    return f"checkpoint-{segment:08d}.ckpt"


def parse_segment(filename: str) -> int | None:
    """Segment number of a wal/checkpoint file name, else ``None``."""
    stem, _, suffix = filename.partition(".")
    kind, _, number = stem.partition("-")
    if suffix == "log" and kind == "wal" and number.isdigit():
        return int(number)
    if suffix == "ckpt" and kind == "checkpoint" and number.isdigit():
        return int(number)
    return None
