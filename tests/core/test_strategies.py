"""Tests for the four compile-time traversal strategies (paper §6.2),
verified both on plan shape and on the SQL they cause."""

import pytest

from repro.core.strategies import (
    AggregatePushdown,
    GraphStepVertexStepMutation,
    PredicatePushdown,
    ProjectionPushdown,
    optimized_strategies,
)
from repro.graph import Direction, P, __
from repro.graph.steps import CountStep, EdgeVertexStep, GraphStep, HasStep, VertexStep
from repro.graph.traversal import Traversal


def plan(traversal_builder):
    """Build an unbound traversal, apply the strategies, return steps."""
    traversal = traversal_builder
    traversal._merge_pending_repeats()
    for strategy in optimized_strategies():
        strategy.apply(traversal)
    return traversal.steps


class TestPredicatePushdown:
    def test_has_folds_into_graph_step(self):
        steps = plan(__.V().has("name", "Alice"))
        assert len(steps) == 1
        assert isinstance(steps[0], GraphStep)
        assert ("name", P.eq("Alice")) in steps[0].pushdown.predicates

    def test_multiple_has_steps_fold(self):
        steps = plan(__.V().hasLabel("person").has("age", P.gt(30)).has("name", "x"))
        assert len(steps) == 1
        assert len(steps[0].pushdown.predicates) == 3

    def test_has_after_edge_gsa_folds(self):
        steps = plan(__.V(1).outE("knows").has("weight", P.gt(0.5)))
        assert not any(isinstance(s, HasStep) for s in steps)
        assert ("weight", P.gt(0.5)) in steps[0].pushdown.predicates

    def test_has_after_edge_vertex_step_stays(self):
        # EdgeVertexStep is not a GSA step, so the filter cannot fold
        steps = plan(__.V(1).out("knows").has("age", 29))
        assert isinstance(steps[-1], HasStep)

    def test_endpoint_filter_becomes_predicate(self):
        steps = plan(__.V(1).outE("knows").filter_(__.inV().id_().is_(P.eq(2))))
        graph_step = steps[0]
        assert isinstance(graph_step, GraphStep)
        assert ("~dst_v", P.eq(2)) in graph_step.pushdown.predicates

    def test_outv_endpoint_filter(self):
        steps = plan(__.E().filter_(__.outV().id_().is_(P.eq(1))))
        assert ("~src_v", P.eq(1)) in steps[0].pushdown.predicates

    def test_negated_filter_not_folded(self):
        steps = plan(__.E().not_(__.inV().id_().is_(P.eq(1))))
        assert len(steps) == 2  # stays a filter step

    def test_non_matching_filter_untouched(self):
        steps = plan(__.V(1).outE().filter_(__.inV().has("name", "x")))
        assert len(steps) == 2


class TestProjectionPushdown:
    def test_values_sets_projection(self):
        steps = plan(__.V().values("name", "age"))
        assert steps[0].pushdown.projection == ("name", "age")
        assert len(steps) == 2  # the Properties step remains

    def test_valuetuple_sets_projection(self):
        steps = plan(__.V().valueTuple("a", "b"))
        assert steps[0].pushdown.projection == ("a", "b")

    def test_bare_values_not_projected(self):
        steps = plan(__.V().values())
        assert steps[0].pushdown.projection is None

    def test_projection_after_filters_folded(self):
        steps = plan(__.V().has("age", 1).values("name"))
        assert steps[0].pushdown.projection == ("name",)


class TestAggregatePushdown:
    def test_count_folds_into_graph_step(self):
        steps = plan(__.V().count())
        assert len(steps) == 1
        assert steps[0].pushdown.aggregate == "count"

    def test_sum_with_values_folds(self):
        steps = plan(__.V().values("age").sum_())
        assert len(steps) == 1
        assert steps[0].pushdown.aggregate == "sum"
        assert steps[0].pushdown.aggregate_key == "age"

    def test_mean_min_max(self):
        for method, kind in (("mean", "mean"), ("min_", "min"), ("max_", "max")):
            traversal = __.V().values("age")
            traversal = getattr(traversal, method)()
            steps = plan(traversal)
            assert steps[0].pushdown.aggregate == kind

    def test_count_after_vertex_step_not_folded(self):
        # VertexStep groups per input vertex; a scalar can't flow back
        steps = plan(__.out("knows").count())
        assert isinstance(steps[-1], CountStep)

    def test_multi_key_values_not_folded(self):
        steps = plan(__.V().values("a", "b").sum_())
        assert steps[0].pushdown.aggregate is None


class TestMutation:
    def test_v_ids_oute_mutates(self):
        steps = plan(__.V(1, 2).outE("knows"))
        assert len(steps) == 1
        graph_step = steps[0]
        assert isinstance(graph_step, GraphStep)
        assert graph_step.return_type == "edge"
        assert graph_step.endpoint_filter == (Direction.OUT, (1, 2))
        assert graph_step.pushdown.labels == ("knows",)

    def test_v_ids_out_adds_edge_vertex_step(self):
        steps = plan(__.V(1).out("knows"))
        assert isinstance(steps[0], GraphStep)
        assert isinstance(steps[1], EdgeVertexStep)
        assert steps[1].direction is Direction.IN

    def test_v_ids_in_mutates_to_out_endpoint(self):
        steps = plan(__.V(1).in_("knows"))
        assert steps[0].endpoint_filter[0] is Direction.IN
        assert steps[1].direction is Direction.OUT

    def test_both_vertices_not_mutated(self):
        steps = plan(__.V(1).both("knows"))
        assert isinstance(steps[0], GraphStep)
        assert isinstance(steps[1], VertexStep)

    def test_both_edges_mutated(self):
        steps = plan(__.V(1).bothE("knows"))
        assert len(steps) == 1
        assert steps[0].endpoint_filter[0] is Direction.BOTH

    def test_v_without_ids_not_mutated(self):
        steps = plan(__.V().outE())
        assert isinstance(steps[1], VertexStep)

    def test_has_between_blocks_mutation(self):
        steps = plan(__.V(1).has("age", 29).outE())
        # predicate folds into GraphStep(vertex) but mutation must not
        # fire (the filter needs vertex properties)
        assert isinstance(steps[0], GraphStep)
        assert steps[0].return_type == "vertex"

    def test_paper_composed_example(self):
        """g.V(ids).outE().has('metIn','US').count() ->
        single GraphStep with endpoint filter, predicate, and count."""
        steps = plan(__.V(7).outE().has("metIn", "US").count())
        assert len(steps) == 1
        graph_step = steps[0]
        assert graph_step.endpoint_filter == (Direction.OUT, (7,))
        assert ("metIn", P.eq("US")) in graph_step.pushdown.predicates
        assert graph_step.pushdown.aggregate == "count"


class TestSqlEffects:
    """The strategies must actually change the generated SQL."""

    def test_optimized_vs_not_sql_counts(self, paper_graph):
        from repro.core import Db2Graph

        # cache=False on both: this asserts exact statement counts, and
        # read-cache hits (REPRO_CACHE_ENABLED=1 CI leg) skip statements.
        optimized = Db2Graph.open(
            paper_graph.connection, paper_graph.topology.config, cache=False
        )
        unoptimized = Db2Graph.open(
            paper_graph.connection,
            paper_graph.topology.config,
            optimized=False,
            cache=False,
        )
        for build in (
            lambda g: g.V("patient::1").outE("hasDisease").count(),
            lambda g: g.V("patient::1").outE("hasDisease"),
        ):
            optimized.dialect.stats.reset()
            unoptimized.dialect.stats.reset()
            a = build(optimized.traversal()).toList()
            b = build(unoptimized.traversal()).toList()
            assert a == b
            assert (
                optimized.dialect.stats.queries_issued
                < unoptimized.dialect.stats.queries_issued
            )

    def test_aggregate_pushdown_transfers_one_row(self, paper_graph):
        paper_graph.dialect.stats.reset()
        count = paper_graph.traversal().V().hasLabel("patient").count().next()
        assert count == 3
        assert paper_graph.dialect.stats.rows_fetched == 1  # just COUNT(*)

    def test_projection_pushdown_narrows_select(self, paper_graph):
        paper_graph.dialect.log = []
        paper_graph.traversal().V().hasLabel("patient").values("name").toList()
        sql = [s for s in paper_graph.dialect.log if "Patient" in s][0]
        assert "address" not in sql
        paper_graph.dialect.log = None

    def test_predicate_pushdown_appears_in_where(self, paper_graph):
        paper_graph.dialect.log = []
        paper_graph.traversal().V().hasLabel("patient").has("name", "Alice").toList()
        sql = [s for s in paper_graph.dialect.log if "Patient" in s][0]
        assert "WHERE" in sql and "name" in sql
        paper_graph.dialect.log = None
