"""Unit tests for three-valued logic and SQL operators."""

import pytest
from hypothesis import given, strategies as st

from repro.relational import values as V
from repro.relational.errors import ExecutionError


class TestComparisons:
    def test_eq_basics(self):
        assert V.sql_eq(1, 1) is True
        assert V.sql_eq(1, 2) is False
        assert V.sql_eq("a", "a") is True

    def test_eq_int_float(self):
        assert V.sql_eq(1, 1.0) is True

    def test_null_propagates_unknown(self):
        for func in (V.sql_eq, V.sql_ne, V.sql_lt, V.sql_le, V.sql_gt, V.sql_ge):
            assert func(None, 1) is None
            assert func(1, None) is None
            assert func(None, None) is None

    def test_ordering(self):
        assert V.sql_lt(1, 2) is True
        assert V.sql_le(2, 2) is True
        assert V.sql_gt(3, 2) is True
        assert V.sql_ge(2, 3) is False

    def test_string_ordering(self):
        assert V.sql_lt("apple", "banana") is True

    def test_cross_type_comparison_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_lt(1, "a")

    def test_bool_vs_int_comparison_raises(self):
        with pytest.raises(ExecutionError):
            V._compare(True, 1)


class TestBooleanLogic:
    def test_and_truth_table(self):
        assert V.sql_and(True, True) is True
        assert V.sql_and(True, False) is False
        assert V.sql_and(False, None) is False  # False dominates UNKNOWN
        assert V.sql_and(True, None) is None
        assert V.sql_and(None, None) is None

    def test_or_truth_table(self):
        assert V.sql_or(False, False) is False
        assert V.sql_or(True, None) is True  # True dominates UNKNOWN
        assert V.sql_or(False, None) is None
        assert V.sql_or(None, None) is None

    def test_not(self):
        assert V.sql_not(True) is False
        assert V.sql_not(False) is True
        assert V.sql_not(None) is None

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_property_de_morgan(self, a, b):
        assert V.sql_not(V.sql_and(a, b)) == V.sql_or(V.sql_not(a), V.sql_not(b))


class TestLike:
    def test_percent_wildcard(self):
        assert V.sql_like("hello", "he%") is True
        assert V.sql_like("hello", "%lo") is True
        assert V.sql_like("hello", "%ell%") is True
        assert V.sql_like("hello", "x%") is False

    def test_underscore_wildcard(self):
        assert V.sql_like("cat", "c_t") is True
        assert V.sql_like("cart", "c_t") is False

    def test_regex_metacharacters_are_literal(self):
        assert V.sql_like("a.b", "a.b") is True
        assert V.sql_like("axb", "a.b") is False

    def test_null_is_unknown(self):
        assert V.sql_like(None, "a%") is None
        assert V.sql_like("a", None) is None

    def test_non_string_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_like(1, "%")


class TestArithmetic:
    def test_add_sub_mul(self):
        assert V.sql_add(2, 3) == 5
        assert V.sql_sub(5, 3) == 2
        assert V.sql_mul(4, 3) == 12

    def test_null_propagates(self):
        assert V.sql_add(None, 1) is None
        assert V.sql_div(1, None) is None

    def test_integer_division_truncates_toward_zero(self):
        assert V.sql_div(7, 2) == 3
        assert V.sql_div(-7, 2) == -3

    def test_float_division(self):
        assert V.sql_div(7.0, 2) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_div(1, 0)

    def test_non_numeric_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_add("a", 1)
        with pytest.raises(ExecutionError):
            V.sql_mul(True, 2)

    def test_concat(self):
        assert V.sql_concat("a", "b") == "ab"
        assert V.sql_concat("a", 1) == "a1"
        assert V.sql_concat(None, "b") is None
        assert V.sql_concat(True, "!") == "TRUE!"

    @given(st.integers(), st.integers(min_value=1))
    def test_property_division_identity(self, a, b):
        q = V.sql_div(a, b)
        r = a - q * b
        assert abs(r) < b
        # truncation toward zero: remainder has the dividend's sign
        assert r == 0 or (r > 0) == (a > 0)
