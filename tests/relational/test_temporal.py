"""System-time temporal (`FOR SYSTEM_TIME AS OF`) tests."""

import pytest

from repro.relational import Database
from repro.common.clock import ManualClock


@pytest.fixture
def tdb():
    clock = ManualClock(1000.0)
    db = Database(clock=clock)
    db.execute("CREATE TABLE doc (id INT PRIMARY KEY, body VARCHAR)")
    db.execute("INSERT INTO doc VALUES (1, 'v1')")
    clock.advance(10)  # t=1010
    db.execute("UPDATE doc SET body = 'v2' WHERE id = 1")
    clock.advance(10)  # t=1020
    db.execute("UPDATE doc SET body = 'v3' WHERE id = 1")
    return db, clock


def test_current_query_sees_latest(tdb):
    db, _clock = tdb
    assert db.execute("SELECT body FROM doc").rows == [("v3",)]


def test_as_of_each_epoch(tdb):
    db, _clock = tdb
    assert db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF 1005.0").rows == [("v1",)]
    assert db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF 1015.0").rows == [("v2",)]
    assert db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF 1025.0").rows == [("v3",)]


def test_as_of_before_creation_is_empty(tdb):
    db, _clock = tdb
    assert db.execute("SELECT * FROM doc FOR SYSTEM_TIME AS OF 999.0").rows == []


def test_as_of_boundary_is_inclusive_of_begin(tdb):
    db, _clock = tdb
    # version v2 begins exactly at t=1010
    assert db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF 1010.0").rows == [("v2",)]


def test_deleted_row_visible_in_history(tdb):
    db, clock = tdb
    clock.advance(10)  # t=1030
    db.execute("DELETE FROM doc WHERE id = 1")
    assert db.execute("SELECT * FROM doc").rows == []
    assert db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF 1025.0").rows == [("v3",)]


def test_as_of_with_parameter(tdb):
    db, _clock = tdb
    rows = db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF ?", [1015.0]).rows
    assert rows == [("v2",)]


def test_as_of_with_index_lookup(tdb):
    db, _clock = tdb
    rows = db.execute(
        "SELECT body FROM doc FOR SYSTEM_TIME AS OF 1005.0 WHERE id = 1"
    ).rows
    assert rows == [("v1",)]


def test_as_of_join_between_epochs():
    clock = ManualClock(0.0)
    db = Database(clock=clock)
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, v VARCHAR)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, a_id INT)")
    db.execute("INSERT INTO a VALUES (1, 'old')")
    db.execute("INSERT INTO b VALUES (10, 1)")
    clock.advance(100)
    db.execute("UPDATE a SET v = 'new' WHERE id = 1")
    rows = db.execute(
        "SELECT a.v FROM a FOR SYSTEM_TIME AS OF 50.0 JOIN b ON a.id = b.a_id"
    ).rows
    assert rows == [("old",)]


def test_uncommitted_changes_not_in_history(tdb):
    db, clock = tdb
    conn = db.connect()
    conn.begin()
    conn.execute("UPDATE doc SET body = 'draft' WHERE id = 1")
    # temporal reads only committed history
    rows = db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF ?", [clock.now()]).rows
    assert rows == [("v3",)]
    conn.rollback()


def test_rolled_back_version_never_appears(tdb):
    db, clock = tdb
    conn = db.connect()
    conn.begin()
    conn.execute("UPDATE doc SET body = 'phantom' WHERE id = 1")
    conn.rollback()
    clock.advance(10)
    rows = db.execute("SELECT body FROM doc FOR SYSTEM_TIME AS OF ?", [clock.now()]).rows
    assert rows == [("v3",)]


def test_csn_as_of_mapping(tdb):
    db, _clock = tdb
    manager = db.txn_manager
    assert manager.csn_as_of(999.0) == 0
    assert manager.csn_as_of(1000.0) >= 1
    assert manager.csn_as_of(2000.0) == manager.current_csn()
