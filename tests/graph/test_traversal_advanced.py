"""Advanced traversal features: repeat/until/emit, union, coalesce,
side effects, path, as_/select, and the anonymous traversal builder."""

import pytest

from repro.graph import GraphTraversalSource, InMemoryGraph, P, TraversalError, __


@pytest.fixture
def chain():
    """A simple chain a->b->c->d plus a side branch b->x."""
    graph = InMemoryGraph()
    for vid in ("a", "b", "c", "d", "x"):
        graph.add_vertex(vid, "node", {"name": vid})
    graph.add_edge("next", "a", "b")
    graph.add_edge("next", "b", "c")
    graph.add_edge("next", "c", "d")
    graph.add_edge("side", "b", "x")
    return GraphTraversalSource(graph)


class TestRepeat:
    def test_repeat_times(self, chain):
        assert [v.id for v in chain.V("a").repeat(__.out("next")).times(2)] == ["c"]

    def test_repeat_times_zero_is_identity(self, chain):
        assert [v.id for v in chain.V("a").repeat(__.out("next")).times(0)] == ["a"]

    def test_repeat_emit(self, chain):
        ids = [v.id for v in chain.V("a").repeat(__.out("next")).emit().times(3)]
        assert ids == ["b", "c", "d"]

    def test_repeat_until(self, chain):
        result = chain.V("a").repeat(__.out("next")).until(__.has("name", "c")).toList()
        assert [v.id for v in result] == ["c"]

    def test_until_repeat_while_do(self, chain):
        # until().repeat(): the start vertex itself satisfies -> no hops
        result = chain.V("a").until(__.has("name", "a")).repeat(__.out("next")).toList()
        assert [v.id for v in result] == ["a"]

    def test_repeat_exhausts_when_no_more_edges(self, chain):
        assert chain.V("a").repeat(__.out("next")).times(10).toList() == []

    def test_repeat_without_modulator_raises(self, chain):
        with pytest.raises(TraversalError):
            chain.V("a").repeat(__.out("next")).toList()

    def test_repeat_with_dedup_and_store(self, g):
        result = (
            g.V(1).repeat(__.out().dedup().store("seen")).times(2).cap("seen").next()
        )
        assert {v.id for v in result} >= {2, 3, 4}

    def test_emit_with_condition(self, chain):
        result = (
            chain.V("a")
            .repeat(__.out("next"))
            .emit(__.has("name", P.within("b", "d")))
            .times(3)
            .toList()
        )
        assert [v.id for v in result] == ["b", "d"]

    def test_nested_repeat_loop_guard(self, g):
        graph = InMemoryGraph()
        graph.add_vertex(1, "n", {})
        graph.add_edge("loop", 1, 1)
        src = GraphTraversalSource(graph)
        with pytest.raises(TraversalError):
            src.V(1).repeat(__.out("loop")).until(__.has("name", "never")).toList()


class TestBranching:
    def test_union(self, g):
        result = g.V(4).union(__.in_("knows"), __.out("created")).toList()
        assert sorted(v.id for v in result) == [1, 3, 5]

    def test_union_preserves_duplicates(self, g):
        result = g.V(1).union(__.out("knows"), __.out("knows")).toList()
        assert len(result) == 4

    def test_coalesce_first_nonempty_wins(self, g):
        result = g.V(2).coalesce(__.out("created"), __.in_("knows")).toList()
        assert [v.id for v in result] == [1]

    def test_coalesce_all_empty(self, g):
        assert g.V(2).coalesce(__.out("created"), __.out("knows")).toList() == []


class TestSideEffects:
    def test_store_and_cap(self, g):
        stored = g.V().hasLabel("person").store("x").cap("x").next()
        assert len(stored) == 4

    def test_aggregate_alias(self, g):
        stored = g.V(1).out().aggregate("x").cap("x").next()
        assert len(stored) == 3

    def test_cap_without_store_is_empty(self, g):
        assert g.V(1).cap("nothing").next() == []

    def test_store_passes_traversers_through(self, g):
        assert g.V(1).out("knows").store("x").count().next() == 2


class TestPathsAndLabels:
    def test_path(self, g):
        paths = g.V(1).out("knows").path().toList()
        assert [[e.id for e in p] for p in paths] == [[1, 2], [1, 4]]

    def test_path_with_values(self, g):
        path = g.V(1).out("created").values("name").path().next()
        assert path[0].id == 1 and path[-1] == "lop"

    def test_simple_path_prunes_cycles(self, g):
        # 1-knows->4-created->3<-created-1 would revisit 1
        count_all = g.V(1).both().both().count().next()
        count_simple = g.V(1).both().both().simplePath().count().next()
        assert count_simple < count_all

    def test_as_select_single(self, g):
        result = g.V(1).as_("a").out("knows").select("a").next()
        assert result.id == 1

    def test_as_select_multiple(self, g):
        result = g.V(1).as_("a").out("knows").as_("b").select("a", "b").toList()
        assert all(r["a"].id == 1 for r in result)
        assert sorted(r["b"].id for r in result) == [2, 4]

    def test_select_missing_label_drops_traverser(self, g):
        assert g.V(1).select("nope").toList() == []


class TestAnonymous:
    def test_anonymous_builder(self):
        traversal = __.out("knows").has("age", P.gt(30))
        assert len(traversal.steps) == 2

    def test_anonymous_cannot_execute(self):
        with pytest.raises(TraversalError):
            __.out().toList()

    def test_unknown_step_raises(self):
        with pytest.raises(TraversalError):
            __.frobnicate()

    def test_clone_is_independent(self, g):
        base = g.V().hasLabel("person")
        clone = base.clone()
        clone.out("knows")
        assert len(base.steps) == 2
        assert len(clone.steps) == 3


class TestStrategiesPlumbing:
    def test_with_strategies_applied_on_compile(self, g):
        from repro.graph import TraversalStrategy

        class Tag(TraversalStrategy):
            name = "tag"
            applied = False

            def apply(self, traversal):
                Tag.applied = True

        g2 = g.with_strategies(Tag())
        g2.V().count().next()
        assert Tag.applied

    def test_without_strategies(self, g):
        from repro.graph import TraversalStrategy

        class Boom(TraversalStrategy):
            name = "boom"

            def apply(self, traversal):  # pragma: no cover
                raise AssertionError("should have been removed")

        g2 = g.with_strategies(Boom()).without_strategies("boom")
        g2.V().count().next()

    def test_strategy_priority_order(self, g):
        from repro.graph import StrategyRegistry, TraversalStrategy

        order = []

        def make(name, priority):
            class S(TraversalStrategy):
                pass

            S.name = name
            S.priority = priority
            S.apply = lambda self, t: order.append(name)
            return S()

        registry = StrategyRegistry([make("late", 90), make("early", 10)])
        source = GraphTraversalSource(g.provider, registry)
        source.V().count().next()
        assert order == ["early", "late"]
