"""A small thread-safe LRU cache with hit/miss statistics.

Used by the relational buffer pool and by the baseline graph stores'
record caches.  Capacity is measured in entries; ``capacity=None``
means unbounded.  Every read updates recency, which — as in real cache
implementations — requires the exclusive cache lock; the lock hold time
is tracked so benchmark harnesses can measure how serializing a cache
is under concurrency (paper Fig. 6 discussion).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LruCache(Generic[K, V]):
    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lock_held_seconds = 0.0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._timed_lock():
            return key in self._data

    def get(self, key: K, default: Any = None) -> V | Any:
        with self._timed_lock():
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def get_or_load(self, key: K, loader: Callable[[K], V]) -> V:
        """Return the cached value, loading (and caching) it on a miss.

        The loader runs *inside* the cache lock, deliberately: a record
        cache in front of a disk file serializes misses exactly this
        way, and the measured lock hold time is how the concurrency
        model derives each engine's serial fraction.
        """
        with self._timed_lock():
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
            value = loader(key)
            self._put_locked(key, value)
            return value

    def put(self, key: K, value: V) -> list[K]:
        """Insert/refresh ``key``; returns the keys evicted to make room
        (empty for unbounded caches or in-capacity inserts)."""
        with self._timed_lock():
            return self._put_locked(key, value)

    def invalidate(self, key: K) -> None:
        with self._timed_lock():
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._timed_lock():
            self._data.clear()

    def keys(self) -> list[K]:
        with self._timed_lock():
            return list(self._data.keys())

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self._data),
            "lock_held_seconds": self.lock_held_seconds,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lock_held_seconds = 0.0

    def _put_locked(self, key: K, value: V) -> list[K]:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        evicted: list[K] = []
        if self.capacity is not None:
            while len(self._data) > self.capacity:
                victim, _value = self._data.popitem(last=False)
                self.evictions += 1
                evicted.append(victim)
        return evicted

    def _timed_lock(self) -> "_TimedLock":
        return _TimedLock(self)


class _TimedLock:
    """Context manager that accumulates lock hold time on the cache."""

    def __init__(self, cache: LruCache):
        self._cache = cache
        self._t0 = 0.0

    def __enter__(self) -> None:
        self._cache._lock.acquire()
        self._t0 = time.perf_counter()

    def __exit__(self, *exc: object) -> None:
        self._cache.lock_held_seconds += time.perf_counter() - self._t0
        self._cache._lock.release()
