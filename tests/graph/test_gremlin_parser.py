"""Tests for the Gremlin string parser/interpreter."""

import pytest

from repro.graph import GremlinSyntaxError
from repro.graph.gremlin_parser import GremlinScriptEvaluator, evaluate_gremlin


class TestLiteralsAndChains:
    def test_simple_chain(self, g):
        assert evaluate_gremlin(g, "g.V().count().next()") == 6

    def test_untermination_defaults_to_tolist(self, g):
        result = evaluate_gremlin(g, "g.V().hasLabel('person').values('name')")
        assert sorted(result) == ["josh", "marko", "peter", "vadas"]

    def test_double_quoted_strings(self, g):
        assert evaluate_gremlin(g, 'g.V().has("name", "marko").count().next()') == 1

    def test_numbers(self, g):
        assert evaluate_gremlin(g, "g.V(1).values('age').next()") == 29
        assert evaluate_gremlin(g, "g.V().has('age', 29).count().next()") == 1

    def test_float_literal(self, g):
        assert evaluate_gremlin(g, "g.E().has('weight', 0.5).count().next()") == 1

    def test_booleans_and_null(self, g):
        evaluator = GremlinScriptEvaluator(g)
        assert evaluator.evaluate("true") is True
        assert evaluator.evaluate("null") is None

    def test_list_literal(self, g):
        assert evaluate_gremlin(g, "g.V([1, 2]).count().next()") == 2

    def test_escaped_quote(self, g):
        assert evaluate_gremlin(g, r"g.V().has('name', 'mar\'ko').count().next()") == 0


class TestKeywordRenames:
    def test_in_step(self, g):
        assert evaluate_gremlin(g, "g.V(3).in('created').count().next()") == 3

    def test_id_step(self, g):
        assert sorted(evaluate_gremlin(g, "g.V().hasLabel('software').id()")) == [3, 5]

    def test_as_and_select(self, g):
        result = evaluate_gremlin(g, "g.V(1).as('a').out('knows').select('a').dedup().id()")
        assert result == [1]

    def test_not_step(self, g):
        result = evaluate_gremlin(
            g, "g.V().hasLabel('person').not(out('created')).values('name')"
        )
        assert result == ["vadas"]

    def test_sum_min_max(self, g):
        assert evaluate_gremlin(g, "g.V().values('age').sum().next()") == 123
        assert evaluate_gremlin(g, "g.V().values('age').min().next()") == 27
        assert evaluate_gremlin(g, "g.V().values('age').max().next()") == 35

    def test_range(self, g):
        assert len(evaluate_gremlin(g, "g.V().range(1, 4)")) == 3


class TestAnonymousTraversals:
    def test_bare_step_opens_anonymous(self, g):
        result = evaluate_gremlin(g, "g.V(1).repeat(out('knows')).times(1).id()")
        assert sorted(result) == [2, 4]

    def test_dunder_prefix(self, g):
        result = evaluate_gremlin(g, "g.V().filter(__.out('created')).count().next()")
        assert result == 3

    def test_union(self, g):
        result = evaluate_gremlin(
            g, "g.V(4).union(in('knows'), out('created')).id()"
        )
        assert sorted(result) == [1, 3, 5]

    def test_until_emit(self, g):
        result = evaluate_gremlin(
            g,
            "g.V(1).repeat(out()).emit().times(2).dedup().id()",
        )
        assert sorted(result) == [2, 3, 4, 5]


class TestPredicates:
    def test_p_gt(self, g):
        assert evaluate_gremlin(g, "g.V().has('age', P.gt(30)).count().next()") == 2

    def test_p_within(self, g):
        assert (
            evaluate_gremlin(g, "g.V().has('name', P.within('lop', 'ripple')).count().next()")
            == 2
        )

    def test_p_between(self, g):
        assert evaluate_gremlin(g, "g.V().has('age', P.between(27, 32)).count().next()") == 2

    def test_unknown_predicate(self, g):
        with pytest.raises(GremlinSyntaxError):
            evaluate_gremlin(g, "g.V().has('age', P.frob(1))")


class TestComparisonRewrite:
    def test_filter_with_equality(self, g):
        result = evaluate_gremlin(
            g, "g.V(1).outE('knows').filter(inV().id() == 2).count().next()"
        )
        assert result == 1

    def test_filter_with_inequality(self, g):
        result = evaluate_gremlin(
            g, "g.V(1).outE('knows').filter(inV().id() != 2).count().next()"
        )
        assert result == 1

    def test_filter_with_gt(self, g):
        result = evaluate_gremlin(
            g, "g.V(1).outE().filter(inV().id() > 2).count().next()"
        )
        assert result == 2

    def test_reversed_operands(self, g):
        result = evaluate_gremlin(
            g, "g.V(1).outE('knows').filter(2 == inV().id()).count().next()"
        )
        assert result == 1


class TestScriptsAndVariables:
    def test_assignment_and_reference(self, g):
        script = "xs = g.V().hasLabel('software').id(); g.V(xs).values('name')"
        assert sorted(evaluate_gremlin(g, script)) == ["lop", "ripple"]

    def test_next_result_reusable(self, g):
        script = "v = g.V(1).out('knows').id(); g.V(v).count().next()"
        assert evaluate_gremlin(g, script) == 2

    def test_injected_variables(self, g):
        result = evaluate_gremlin(g, "g.V(target).values('name')", {"target": 1})
        assert result == ["marko"]

    def test_paper_similar_diseases_shape(self, g):
        # structurally identical to the paper's §4 script
        script = (
            "seen = g.V(1).repeat(out().dedup().store('x')).times(2).cap('x').next(); "
            "g.V(seen).count().next()"
        )
        assert evaluate_gremlin(g, script) >= 3

    def test_unknown_identifier(self, g):
        with pytest.raises(GremlinSyntaxError):
            evaluate_gremlin(g, "g.V(mystery)")

    def test_unknown_step(self, g):
        with pytest.raises(GremlinSyntaxError):
            evaluate_gremlin(g, "g.V().frobnicate()")

    def test_unterminated_string(self, g):
        with pytest.raises(GremlinSyntaxError):
            evaluate_gremlin(g, "g.V().has('name, 'x')")

    def test_missing_paren(self, g):
        with pytest.raises(GremlinSyntaxError):
            evaluate_gremlin(g, "g.V(.count()")

    def test_empty_arguments(self, g):
        assert evaluate_gremlin(g, "g.V().out().count().next()") == 6

    def test_long_suffix_number(self, g):
        assert evaluate_gremlin(g, "g.V(1L).values('name')") == ["marko"]
