"""Chaos mode (opt-in via ``--chaos``): throughput under injected faults.

Runs the LinkBench read queries through the relational engine while a
seeded FaultInjector fails a fraction of SQL statements with transient
errors, and reports how throughput and query success degrade as the
fault rate rises.  Expected shape: the retry policy masks every fault
at moderate rates (success ratio 1.0) and QPS falls modestly — the
cost of re-issued statements — rather than collapsing.

Deterministic by construction: seeded injector schedule, seeded retry
jitter, no backoff sleeps.  Timing numbers vary run to run; the fault
and retry *counts* do not.
"""

from __future__ import annotations

import pytest

from repro.bench.chaos import ChaosResult, measure_chaos_throughput
from repro.bench.reporting import format_table

pytestmark = pytest.mark.chaos

FAULT_RATES = [0.0, 0.05, 0.15]
KINDS = ["getNode", "getLinkList"]

_RESULTS: dict[tuple[str, float], ChaosResult] = {}


@pytest.mark.parametrize("fault_rate", FAULT_RATES)
@pytest.mark.parametrize("kind", KINDS)
def test_chaos_throughput(small_db2_only, kind, fault_rate):
    result = measure_chaos_throughput(
        small_db2_only,
        kind,
        fault_rate=fault_rate,
        clients=8,
        queries_per_client=25,
    )
    _RESULTS[(kind, fault_rate)] = result

    assert result.completed > 0
    if fault_rate == 0.0:
        assert result.faults_injected == 0
        assert result.failed == 0
    else:
        assert result.faults_injected > 0
        # every injected fault triggered a retry or exhausted the budget
        assert result.retry_attempts + result.retry_exhausted > 0
        # a 4-attempt budget masks these moderate fault rates
        assert result.success_ratio == 1.0


def test_chaos_report(collector):
    if len(_RESULTS) < len(KINDS) * len(FAULT_RATES):
        pytest.skip("chaos throughput benchmarks did not run")

    for kind in KINDS:
        healthy = _RESULTS[(kind, 0.0)]
        rows = []
        for rate in FAULT_RATES:
            r = _RESULTS[(kind, rate)]
            rows.append(
                [
                    f"{rate:.0%}",
                    f"{r.qps:.0f}",
                    f"{r.qps / healthy.qps:.2f}x" if healthy.qps else "n/a",
                    f"{r.success_ratio:.2f}",
                    r.faults_injected,
                    r.retry_attempts,
                    r.retry_exhausted,
                    r.failed,
                ]
            )
        collector.add(
            "chaos_resilience",
            format_table(
                [
                    "fault rate",
                    "qps",
                    "vs healthy",
                    "success",
                    "faults",
                    "retries",
                    "exhausted",
                    "failed",
                ],
                rows,
                title=f"Throughput under injected transient faults — {kind} "
                f"({healthy.clients} clients, no-sleep retry, 4 attempts)",
            ),
        )
