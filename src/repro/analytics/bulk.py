"""Bulk (set-at-a-time) evaluation of ``repeat()`` Gremlin chains.

The Gremlin Traversal Machine's *bulking* optimization: traversers
sitting at the same graph element are coalesced into one traverser
with a multiplicity count.  :class:`BulkRepeatStep` applies it to
``repeat(out(...)).times(n)/until(...)`` — each loop iteration expands
the set of *unique* frontier elements through one batched
``provider.adjacent`` call and multiplies counts, instead of
re-probing the same vertex once per traverser.  On a graph where paths
converge (any graph with fan-in), this turns an exponential number of
per-traverser SQL probes into O(unique frontier) per level.

:class:`BulkRepeatStrategy` (selected via ``Db2Graph.open(bulk=True)``)
rewrites eligible ``RepeatStep``\\ s at compile time.  Eligibility is
conservative: the surrounding plan must not observe paths or labeled
steps (bulked traversers share one provenance), the body must be
vertex-to-vertex hops plus simple filters, and ``until``/``emit``
conditions must depend only on the current element — exactly the
conditions under which the result *multiset* provably equals the
per-traverser semantics (order is not preserved).

Every loop iteration emits the same ``analytics.step`` /
``frontier.size`` counter+event pairs as the frontier executor, so
``repeat()`` chains running in bulk mode show up in the analytics
observability surface.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..graph.model import Direction, Element, Vertex
from ..graph.steps import (
    AsStep,
    EdgeVertexStep,
    HasNotStep,
    HasStep,
    IsStep,
    PathStep,
    PropertiesStep,
    RepeatStep,
    SelectStep,
    SimplePathStep,
    Step,
    TraversalContext,
    Traverser,
    run_steps,
)
from ..graph.steps import _MAX_LOOPS  # same loop guard as RepeatStep
from ..graph.strategy import TraversalStrategy
from ..obs.tracing import NULL_RECORDER
from .frontier import note_converged, note_step

#: Steps allowed inside a bulked repeat body besides the vertex hop.
_BODY_FILTERS = (HasStep, HasNotStep, IsStep)

#: Steps allowed inside an until()/emit() condition: they depend only
#: on the current element, so evaluating once per unique element is
#: equivalent to evaluating once per traverser.
_CONDITION_STEPS = (
    HasStep,
    HasNotStep,
    IsStep,
    PropertiesStep,
)


def _condition_allows_bulk(condition: Any) -> bool:
    if condition is None or condition is True or condition is False:
        return True
    steps = getattr(condition, "steps", None)
    if steps is None:
        return False
    from ..graph.steps import VertexStep

    allowed = _CONDITION_STEPS + (VertexStep,)
    return all(isinstance(step, allowed) for step in steps)


def _plan_observes_provenance(steps: list[Step]) -> bool:
    """True when any step in the plan (sub-traversals included) needs
    per-traverser paths or labels — bulking would corrupt those."""
    stack = list(steps)
    while stack:
        step = stack.pop()
        if isinstance(step, (PathStep, SimplePathStep, AsStep, SelectStep)):
            return True
        if isinstance(step, EdgeVertexStep) and step.direction is Direction.OTHER:
            return True
        for _label, sub in step.sub_traversals():
            stack.extend(sub.steps)
    return False


class BulkRepeatStep(RepeatStep):
    """``RepeatStep`` with GTM traverser bulking.

    Mirrors :meth:`RepeatStep.process` exactly — same until/times/emit
    release points, same do-while vs while-do handling, same loop guard
    — but carries the working set as an ``{element: multiplicity}``
    dict and expands unique elements once per level.
    """

    def process(
        self, incoming: Iterator[Traverser], ctx: TraversalContext
    ) -> Iterator[Traverser]:
        from ..graph.errors import TraversalError

        if self.times is None and self.until is None:
            raise TraversalError("repeat() requires times() or until()")
        registry = getattr(ctx.provider, "registry", None)
        trace = getattr(ctx.provider, "trace", NULL_RECORDER)
        current: dict[Any, int] = {}
        for traverser in incoming:
            current[traverser.obj] = current.get(traverser.obj, 0) + 1
        loop = 0
        step_index = 0
        while current:
            if self.until is not None and (loop > 0 or self.until_first):
                continuing: dict[Any, int] = {}
                for obj, count in current.items():
                    if self._matches_obj(self.until, obj, loop, ctx):
                        yield from self._release(obj, count, loop)
                    else:
                        continuing[obj] = count
                current = continuing
                if not current:
                    note_converged(
                        registry, trace, algorithm="repeat", steps=step_index
                    )
                    return
            if self.times is not None and loop >= self.times:
                for obj, count in current.items():
                    yield from self._release(obj, count, loop)
                return
            if loop >= _MAX_LOOPS:
                raise TraversalError(f"repeat() exceeded {_MAX_LOOPS} iterations")
            note_step(
                registry,
                trace,
                algorithm="repeat",
                step=step_index,
                size=len(current),
            )
            step_index += 1
            produced = self._expand_body(current, ctx)
            loop += 1
            if self.emit:
                final_release = (
                    self.until is None and self.times is not None and loop >= self.times
                )
                if not final_release:
                    for obj, count in produced.items():
                        if self.until is not None and self._matches_obj(
                            self.until, obj, loop, ctx
                        ):
                            continue  # the until check will release it
                        if self.emit is True or self._matches_obj(
                            self.emit, obj, loop, ctx
                        ):
                            yield from self._release(obj, count, loop)
            current = produced

    # -- bulked body execution -----------------------------------------------

    def _expand_body(
        self, current: dict[Any, int], ctx: TraversalContext
    ) -> dict[Any, int]:
        from ..graph.errors import TraversalError
        from ..graph.steps import VertexStep

        budget = ctx.budget
        stage: dict[Any, int] = current
        for step in self.body.steps:
            if isinstance(step, VertexStep):
                vertices: list[Vertex] = []
                for obj in stage:
                    if not isinstance(obj, Vertex):
                        raise TraversalError(
                            f"{step.name()} requires vertices, "
                            f"got {type(obj).__name__}"
                        )
                    vertices.append(obj)
                # one call for the whole unique frontier — the overlay
                # provider chunks ids into batched IN-lists internally
                adjacency = ctx.provider.adjacent(
                    vertices,
                    step.direction,
                    step.edge_labels,
                    step.return_type,
                    step.pushdown,
                )
                produced: dict[Any, int] = {}
                spawned = 0
                for vertex in vertices:
                    count = stage[vertex]
                    for element in adjacency.get(vertex.id, ()):
                        produced[element] = produced.get(element, 0) + count
                        spawned += 1
                if budget is not None:
                    for _ in range(spawned):
                        budget.note_traverser()
                stage = produced
            elif isinstance(step, _BODY_FILTERS):
                self._materialize(stage, ctx)
                if isinstance(step, HasStep):
                    stage = {o: n for o, n in stage.items() if step.matches(o)}
                elif isinstance(step, HasNotStep):
                    stage = {
                        o: n
                        for o, n in stage.items()
                        if isinstance(o, Element) and not o.has_property(step.key)
                    }
                else:  # IsStep
                    stage = {
                        o: n for o, n in stage.items() if step.predicate.test(o)
                    }
            else:  # pragma: no cover - the strategy never admits these
                raise TraversalError(
                    f"bulk repeat cannot evaluate body step {step.name()}"
                )
        return stage

    @staticmethod
    def _materialize(stage: dict[Any, int], ctx: TraversalContext) -> None:
        pending = [
            obj
            for obj in stage
            if isinstance(obj, Element) and not obj.is_materialized
        ]
        if pending:
            ctx.provider.bulk_materialize(pending)

    def _matches_obj(
        self, condition: Any, obj: Any, loops: int, ctx: TraversalContext
    ) -> bool:
        probe = Traverser(obj, None, None, loops)
        return next(iter(run_steps(condition.steps, [probe], ctx)), None) is not None

    @staticmethod
    def _release(obj: Any, count: int, loops: int) -> Iterator[Traverser]:
        for _ in range(count):
            yield Traverser(obj, None, None, loops)

    def name(self) -> str:
        return (
            f"BulkRepeat(times={self.times}, until={self.until is not None}, "
            f"emit={bool(self.emit)})"
        )


class BulkRepeatStrategy(TraversalStrategy):
    """Rewrites eligible ``RepeatStep``\\ s into :class:`BulkRepeatStep`.

    Runs after the pushdown strategies (priority 90) so it sees the
    final top-level plan shape."""

    priority = 90
    name = "BulkRepeatEvaluation"

    def apply(self, traversal: Any) -> None:
        steps = traversal.steps
        if _plan_observes_provenance(steps):
            return
        for i, step in enumerate(steps):
            if (
                isinstance(step, RepeatStep)
                and not isinstance(step, BulkRepeatStep)
                and self._eligible(step)
            ):
                steps[i] = BulkRepeatStep(
                    step.body,
                    times=step.times,
                    until=step.until,
                    emit=step.emit,
                    until_first=step.until_first,
                )

    @staticmethod
    def _eligible(step: RepeatStep) -> bool:
        from ..graph.steps import VertexStep

        body = step.body.steps
        if not body:
            return False
        hops = [s for s in body if isinstance(s, VertexStep)]
        if not hops or any(hop.return_type != "vertex" for hop in hops):
            return False
        if any(not isinstance(s, (VertexStep,) + _BODY_FILTERS) for s in body):
            return False
        return _condition_allows_bulk(step.until) and _condition_allows_bulk(
            step.emit
        )
