"""repro — reproduction of "IBM Db2 Graph: Supporting Synergistic and
Retrofittable Graph Queries Inside IBM Db2" (SIGMOD 2020).

Layers (bottom-up):

* :mod:`repro.relational` — a from-scratch relational engine (the Db2
  substitute): SQL, MVCC transactions, temporal tables, access control,
  indexes, prepared statements, views, table functions.
* :mod:`repro.graph` — a property-graph model plus a Gremlin-style
  traversal engine and string parser (the TinkerPop substitute).
* :mod:`repro.core` — the paper's contribution: the graph overlay,
  AutoOverlay, the Topology / Graph Structure / SQL Dialect / Traversal
  Strategy modules, and the ``Db2Graph`` facade.
* :mod:`repro.baselines` — GDB-X-like native store and JanusGraph-like
  KV store, with export/load pipelines.
* :mod:`repro.workloads` — LinkBench and the paper's customer
  scenarios (healthcare, finance, police).
* :mod:`repro.bench` — latency/throughput measurement harness.

Quickstart::

    from repro.relational import Database
    from repro.core import Db2Graph

    db = Database()
    db.execute("CREATE TABLE Person (id BIGINT PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE Knows (src BIGINT, dst BIGINT)")
    db.execute("INSERT INTO Person VALUES (1, 'ada'), (2, 'lin')")
    db.execute("INSERT INTO Knows VALUES (1, 2)")
    graph = Db2Graph.open(db, {
        "v_tables": [{"table_name": "Person", "id": "id",
                      "fix_label": True, "label": "'person'"}],
        "e_tables": [{"table_name": "Knows", "src_v": "src", "dst_v": "dst",
                      "src_v_table": "Person", "dst_v_table": "Person",
                      "implicit_edge_id": True,
                      "fix_label": True, "label": "'knows'"}],
    })
    g = graph.traversal()
    assert g.V(1).out("knows").values("name").toList() == ["lin"]
"""

__version__ = "1.0.0"

__all__ = ["relational", "graph", "core", "baselines", "workloads", "bench", "common"]
