"""The public database facade: :class:`Database` and :class:`Connection`.

A :class:`Database` owns the catalog, the transaction manager, the
access-control lists, and the statement cache.  Clients open
:class:`Connection` objects (one per user/session) and run SQL through
them — exactly the surface the Db2 Graph layer programs against.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..cache.epochs import EpochRegistry
from ..common.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..durability.config import DurabilityConfig
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_RECORDER, TraceRecorder
from .access import AccessControl
from .catalog import Catalog
from .errors import TransactionError
from .executor import Executor, ResultSet
from .planner import ExecContext
from .prepared import PreparedStatement, StatementCache
from .schema import TableSchema
from .sql_parser import parse_script, parse_statement
from .sql_ast import TransactionStmt
from .transactions import LockManager, Transaction, TransactionManager


class Database:
    def __init__(
        self,
        name: str = "db",
        clock: Clock | None = None,
        enforce_foreign_keys: bool = True,
        admin_user: str = "admin",
        durability: "DurabilityConfig | str | bool | None" = None,
    ):
        self.name = name
        self.clock = clock or SystemClock()
        self.lock_manager = LockManager()
        self.catalog = Catalog(self.lock_manager)
        self.txn_manager = TransactionManager(self.clock)
        self.access = AccessControl(admin_user)
        self.executor = Executor(self)
        self.statement_cache = StatementCache(self)
        self.enforce_foreign_keys = enforce_foreign_keys
        self.ddl_generation = 0
        self._ddl_lock = threading.Lock()
        self.statements_executed = 0
        self._stmt_count_lock = threading.Lock()
        # Observability: the lock manager / executor emit counters and
        # trace events here; Db2Graph.open rebinds both so one registry
        # spans the relational and graph layers.
        self.obs_registry: MetricsRegistry = self.lock_manager.registry
        self.obs_trace: TraceRecorder = NULL_RECORDER
        # Chaos hook (repro.resilience.faults.FaultInjector) consulted by
        # the executor before running each statement.  None in production.
        self.fault_injector = None
        # Per-table epoch counters for the graph read cache: bumped on
        # every DML commit (never on rollback) via the transaction
        # manager's commit hook, with one cache.invalidate counter +
        # trace event per written table.
        self.epochs = EpochRegistry()
        self.txn_manager.commit_hooks.append(self._note_committed_writes)
        # Durability (WAL + checkpoints).  ``durability=None`` consults
        # the REPRO_WAL_* environment (each database gets a unique
        # subdirectory), ``False`` forces pure in-memory operation, a
        # path/DurabilityConfig enables logging there.  Use
        # Database.open() to crash-recover an existing directory.
        self.durability = None
        self.recovery_report = None
        if durability is not False:
            # Lazy import: repro.durability depends on this module.
            from ..durability.config import resolve_durability_config

            config = resolve_durability_config(durability, name)
            if config is not None:
                self.attach_durability(config)

    def _note_committed_writes(self, tables: Sequence[str]) -> None:
        for table in self.epochs.bump(tables):
            self.obs_registry.counter(obs_metrics.CACHE_INVALIDATIONS).increment()
            self.obs_trace.emit(obs_tracing.CACHE_INVALIDATE, table=table)

    def bind_observability(self, registry: MetricsRegistry, trace: TraceRecorder) -> None:
        """Point all engine-side emission sites at shared sinks."""
        self.obs_registry = registry
        self.obs_trace = trace
        self.lock_manager.registry = registry
        self.lock_manager.trace = trace

    # -- durability ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        durability: "DurabilityConfig | str",
        *,
        name: str = "db",
        clock: Clock | None = None,
        enforce_foreign_keys: bool = True,
        admin_user: str = "admin",
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> "Database":
        """Open a durable database, crash-recovering any prior state.

        Loads the newest valid checkpoint from the directory, redoes the
        committed WAL suffix, discards uncommitted tails, then starts a
        fresh segment (checkpoint + empty WAL) for this incarnation.
        ``registry``/``trace`` bind *before* recovery so the
        ``recovery.replayed`` / ``recovery.discarded`` emissions land in
        the caller's sinks.  The report is left on
        ``db.recovery_report``.
        """
        from ..durability.config import resolve_durability_config
        from ..durability.errors import DurabilityError
        from ..durability.recovery import recover_into

        config = resolve_durability_config(durability, name)
        if config is None:
            raise DurabilityError("Database.open requires a durability directory")
        database = cls(
            name=name,
            clock=clock,
            enforce_foreign_keys=enforce_foreign_keys,
            admin_user=admin_user,
            durability=False,
        )
        if registry is not None or trace is not None:
            database.bind_observability(
                registry if registry is not None else database.obs_registry,
                trace if trace is not None else database.obs_trace,
            )
        report = recover_into(database, config)
        database.attach_durability(config, start_segment=report.next_segment)
        database.recovery_report = report
        return database

    def attach_durability(
        self, config: DurabilityConfig, start_segment: int = 0
    ) -> None:
        """Start WAL logging into ``config.dir`` (retrofittable: any
        state already in the database is captured by the initial
        checkpoint)."""
        from ..durability.errors import DurabilityError
        from ..durability.manager import DurabilityManager

        if self.durability is not None:
            raise DurabilityError("durability is already attached")
        os.makedirs(config.dir, exist_ok=True)
        manager = DurabilityManager(self, config)
        manager.start(start_segment)
        self.durability = manager
        self.txn_manager.durability = manager

    def checkpoint(self) -> int:
        """Write a checkpoint now; returns the new WAL segment number."""
        if self.durability is None:
            from ..durability.errors import DurabilityError

            raise DurabilityError("database has no durability attached")
        return self.durability.checkpoint()

    def close(self) -> None:
        """Flush any buffered WAL frames.  Safe to call repeatedly and
        on non-durable databases."""
        if self.durability is not None and not self.durability.dead:
            self.durability.close()

    # -- connections -------------------------------------------------------

    def connect(self, user: str = "admin") -> "Connection":
        return Connection(self, user)

    # -- convenience admin API ----------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Run one statement as the admin user (autocommit)."""
        return self.connect().execute(sql, params)

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Run a ``;``-separated script as the admin user."""
        session = self.connect()
        return [session.execute_parsed(stmt, ()) for stmt in parse_script(sql)]

    def create_table(self, schema: TableSchema, owner: str = "admin") -> None:
        self.catalog.create_table(schema, owner)
        self.bump_ddl_generation()
        if self.durability is not None:
            from ..durability.checkpoint import serialize_schema

            self.durability.log_ddl(
                {"op": "create_table", "schema": serialize_schema(schema), "owner": owner}
            )

    def register_table_function(self, name: str, func) -> None:
        """Register a polymorphic table function, callable in SQL via
        ``TABLE(name(args)) AS alias (col type, ...)``."""
        self.catalog.register_function(name, func)

    def bump_ddl_generation(self) -> None:
        with self._ddl_lock:
            self.ddl_generation += 1

    # -- introspection -------------------------------------------------------

    def table_row_count(self, table_name: str) -> int:
        table = self.catalog.get_table(table_name)
        return table.storage.visible_count(self.txn_manager.current_csn())

    def now(self) -> float:
        return self.clock.now()


class Connection:
    """A session: a user identity plus optional explicit transaction."""

    def __init__(self, database: Database, user: str):
        self.database = database
        self.user = user
        self.current_txn: Transaction | None = None
        # Session-scoped chaos hook; overrides the database-level one.
        self.fault_injector = None

    # -- SQL entry points ---------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self.execute_parsed(parse_statement(sql), params)

    def execute_parsed(self, stmt: Any, params: Sequence[Any]) -> ResultSet:
        with self.database._stmt_count_lock:
            self.database.statements_executed += 1
        if isinstance(stmt, TransactionStmt):
            return self._transaction_statement(stmt)
        if self.current_txn is not None:
            # READ COMMITTED between statements of the same transaction.
            self.current_txn.refresh_snapshot()
        return self.database.executor.execute(stmt, self, params)

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare via the shared statement cache (parse/plan once)."""
        return self.database.statement_cache.get(sql)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        return self.execute(sql, params).rows

    # -- transactions -------------------------------------------------------

    def begin(self, isolation: str = Transaction.READ_COMMITTED) -> Transaction:
        """Open an explicit transaction.  ``isolation`` is
        :data:`Transaction.READ_COMMITTED` (default: the snapshot
        advances at every statement) or :data:`Transaction.SNAPSHOT`
        (the BEGIN-time snapshot holds until COMMIT/ROLLBACK — true
        snapshot isolation, since writes already use
        first-committer-wins conflict detection)."""
        if self.current_txn is not None and self.current_txn.is_active:
            raise TransactionError("transaction already open on this connection")
        self.current_txn = self.database.txn_manager.begin(isolation)
        return self.current_txn

    def commit(self) -> int:
        """Commit the open transaction; returns its commit CSN (used by
        the isolation-history recorder to order commits)."""
        if self.current_txn is None or not self.current_txn.is_active:
            raise TransactionError("no open transaction")
        csn = self.current_txn.commit()
        self.current_txn = None
        return csn

    def rollback(self) -> None:
        if self.current_txn is None or not self.current_txn.is_active:
            raise TransactionError("no open transaction")
        self.current_txn.rollback()
        self.current_txn = None

    def _transaction_statement(self, stmt: TransactionStmt) -> ResultSet:
        if stmt.action == "BEGIN":
            self.begin()
        elif stmt.action == "COMMIT":
            self.commit()
        else:
            self.rollback()
        return ResultSet.from_count(0)

    # -- executor support -----------------------------------------------------

    def exec_context(self, params: Sequence[Any], txn: Transaction | None = None) -> ExecContext:
        active = txn or self.current_txn
        if active is not None and active.is_active:
            snapshot = active.snapshot_csn
            txn_id: int | None = active.txn_id
        else:
            snapshot = self.database.txn_manager.current_csn()
            txn_id = None
        return ExecContext(
            database=self.database,
            session=self,
            params=list(params),
            snapshot_csn=snapshot,
            txn_id=txn_id,
        )

    def write_transaction(self, table_name: str) -> tuple[Transaction, bool]:
        """A transaction holding the write lock on ``table_name``.

        Returns ``(txn, own)`` — ``own`` is True when the transaction was
        created for this statement (autocommit) and the caller must
        commit/rollback it.  Explicit transactions keep write locks
        until COMMIT/ROLLBACK (released by the transaction manager).
        """
        key = table_name.lower()
        if self.current_txn is not None and self.current_txn.is_active:
            txn = self.current_txn
            if key not in txn.write_locks:
                lock = self.database.catalog.get_table(table_name).lock
                # A timed-out/deadlocked acquire propagates; locks already
                # held stay with the txn, which remains rollback-able.
                lock.acquire_write(owner=txn.txn_id)
                txn.write_locks[key] = lock
            return txn, False
        txn = self.database.txn_manager.begin()
        lock = self.database.catalog.get_table(table_name).lock
        try:
            lock.acquire_write(owner=txn.txn_id)
        except TransactionError:
            # Don't leak an ACTIVE autocommit transaction when the lock
            # can't be acquired — roll it back before propagating.
            txn.rollback()
            raise
        txn.write_locks[key] = lock
        return txn, True

    # -- bulk loading ----------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert through the normal constraint path."""
        return self.database.executor.insert_rows(table_name, list(rows), self)
