"""Access control, views, prepared statements, and table functions."""

import pytest

from repro.relational import (
    AccessDeniedError,
    CatalogError,
    Database,
    DatabaseError,
)


class TestAccessControl:
    def test_admin_can_do_everything(self, people_db):
        people_db.connect("admin").execute("SELECT * FROM person")

    def test_other_user_denied_by_default(self, people_db):
        with pytest.raises(AccessDeniedError):
            people_db.connect("eve").execute("SELECT * FROM person")

    def test_grant_select(self, people_db):
        people_db.execute("GRANT SELECT ON person TO eve")
        rows = people_db.connect("eve").execute("SELECT name FROM person").rows
        assert len(rows) == 5

    def test_select_grant_does_not_allow_writes(self, people_db):
        people_db.execute("GRANT SELECT ON person TO eve")
        eve = people_db.connect("eve")
        with pytest.raises(AccessDeniedError):
            eve.execute("INSERT INTO person VALUES (9, 'x', 1, 'y')")
        with pytest.raises(AccessDeniedError):
            eve.execute("UPDATE person SET age = 0")
        with pytest.raises(AccessDeniedError):
            eve.execute("DELETE FROM person")

    def test_grant_all(self, people_db):
        people_db.execute("GRANT ALL ON person TO eve")
        eve = people_db.connect("eve")
        eve.execute("UPDATE person SET age = 1 WHERE id = 5")

    def test_revoke(self, people_db):
        people_db.execute("GRANT SELECT ON person TO eve")
        people_db.execute("REVOKE SELECT ON person FROM eve")
        with pytest.raises(AccessDeniedError):
            people_db.connect("eve").execute("SELECT * FROM person")

    def test_owner_has_implicit_rights(self, db):
        bob = db.connect("bob")
        db.access.grant(["ALL"], "own", "bob")  # allow creation-by-proxy
        bob.execute("CREATE TABLE own (a INT)")
        bob.execute("INSERT INTO own VALUES (1)")
        assert bob.execute("SELECT * FROM own").rows == [(1,)]

    def test_join_requires_grants_on_all_tables(self, people_db):
        people_db.execute("GRANT SELECT ON person TO eve")
        with pytest.raises(AccessDeniedError):
            people_db.connect("eve").execute(
                "SELECT * FROM person p JOIN knows k ON p.id = k.src"
            )

    def test_unknown_privilege_rejected(self, people_db):
        with pytest.raises(DatabaseError):
            people_db.execute("GRANT FLY ON person TO eve")


class TestViews:
    def test_view_query(self, people_db):
        people_db.execute(
            "CREATE VIEW londoners AS SELECT id, name FROM person WHERE city = 'london'"
        )
        rows = people_db.execute("SELECT name FROM londoners ORDER BY name").rows
        assert rows == [("ada",), ("alan",)]

    def test_view_reflects_base_changes(self, people_db):
        people_db.execute(
            "CREATE VIEW londoners AS SELECT id, name FROM person WHERE city = 'london'"
        )
        people_db.execute("UPDATE person SET city = 'london' WHERE id = 2")
        assert people_db.execute("SELECT COUNT(*) FROM londoners").scalar() == 3

    def test_view_with_join(self, people_db):
        people_db.execute(
            "CREATE VIEW friendships AS "
            "SELECT p.name AS a, q.name AS b FROM knows k "
            "JOIN person p ON k.src = p.id JOIN person q ON k.dst = q.id"
        )
        rows = people_db.execute("SELECT * FROM friendships WHERE a = 'ada'").rows
        assert sorted(rows) == [("ada", "alan"), ("ada", "grace")]

    def test_view_over_view(self, people_db):
        people_db.execute("CREATE VIEW v1 AS SELECT id, age FROM person")
        people_db.execute("CREATE VIEW v2 AS SELECT id FROM v1 WHERE age > 50")
        assert people_db.execute("SELECT COUNT(*) FROM v2").scalar() == 2

    def test_or_replace(self, people_db):
        people_db.execute("CREATE VIEW v AS SELECT id FROM person")
        with pytest.raises(CatalogError):
            people_db.execute("CREATE VIEW v AS SELECT name FROM person")
        people_db.execute("CREATE OR REPLACE VIEW v AS SELECT name FROM person")
        assert people_db.execute("SELECT * FROM v").columns == ["name"]

    def test_invalid_view_body_rejected_at_creation(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute("CREATE VIEW broken AS SELECT nope FROM person")

    def test_view_name_collision_with_table(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute("CREATE VIEW person AS SELECT 1")

    def test_drop_view(self, people_db):
        people_db.execute("CREATE VIEW v AS SELECT id FROM person")
        people_db.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            people_db.execute("SELECT * FROM v")


class TestPreparedStatements:
    def test_prepare_execute_with_params(self, people_db):
        conn = people_db.connect()
        ps = conn.prepare("SELECT name FROM person WHERE id = ?")
        assert ps.execute(conn, [1]).rows == [("ada",)]
        assert ps.execute(conn, [2]).rows == [("grace",)]

    def test_statement_cache_hits(self, people_db):
        conn = people_db.connect()
        cache = people_db.statement_cache
        before = cache.hits
        conn.prepare("SELECT * FROM person WHERE id = ?")
        conn.prepare("SELECT * FROM person WHERE id = ?")
        assert cache.hits == before + 1

    def test_plan_invalidated_by_ddl(self, people_db):
        conn = people_db.connect()
        ps = conn.prepare("SELECT * FROM person WHERE city = ?")
        ps.execute(conn, ["london"])
        plan_before = ps._plan
        people_db.execute("CREATE INDEX idx_city ON person (city)")
        ps.execute(conn, ["london"])
        assert ps._plan is not plan_before, "DDL must invalidate cached plans"
        assert "index_eq" in ps._plan.root.explain()

    def test_prepared_dml(self, people_db):
        conn = people_db.connect()
        ps = conn.prepare("UPDATE person SET age = ? WHERE id = ?")
        ps.execute(conn, [50, 1])
        assert people_db.execute("SELECT age FROM person WHERE id = 1").scalar() == 50

    def test_missing_parameter_raises(self, people_db):
        conn = people_db.connect()
        ps = conn.prepare("SELECT * FROM person WHERE id = ?")
        with pytest.raises(DatabaseError):
            ps.execute(conn, [])

    def test_cache_eviction(self, people_db):
        people_db.statement_cache.capacity = 2
        conn = people_db.connect()
        conn.prepare("SELECT 1")
        conn.prepare("SELECT 2")
        conn.prepare("SELECT 3")
        assert len(people_db.statement_cache) <= 2

    def test_grants_checked_per_execution(self, people_db):
        people_db.execute("GRANT SELECT ON person TO eve")
        eve = people_db.connect("eve")
        ps = eve.prepare("SELECT name FROM person WHERE id = ?")
        ps.execute(eve, [1])
        people_db.execute("REVOKE SELECT ON person FROM eve")
        with pytest.raises(AccessDeniedError):
            ps.execute(eve, [1])


class TestTableFunctions:
    def test_basic_table_function(self, db):
        db.register_table_function("gen", lambda session, n: ((i,) for i in range(n)))
        rows = db.execute("SELECT a FROM TABLE(gen(3)) AS g (a INT)").rows
        assert rows == [(0,), (1,), (2,)]

    def test_declared_types_coerce(self, db):
        db.register_table_function("strs", lambda session: [("1",), ("2",)])
        rows = db.execute("SELECT a FROM TABLE(strs()) AS g (a INT)").rows
        assert rows == [(1,), (2,)]

    def test_wrong_width_rejected(self, db):
        db.register_table_function("bad", lambda session: [(1, 2)])
        from repro.relational import ExecutionError

        with pytest.raises(ExecutionError):
            db.execute("SELECT a FROM TABLE(bad()) AS g (a INT)")

    def test_join_with_base_table(self, people_db):
        people_db.register_table_function(
            "ids", lambda session: [(1,), (3,)]
        )
        rows = people_db.execute(
            "SELECT p.name FROM person p, TABLE(ids()) AS t (pid INT) "
            "WHERE p.id = t.pid ORDER BY p.name"
        ).rows
        assert rows == [("ada",), ("alan",)]

    def test_aggregation_over_table_function(self, db):
        db.register_table_function("gen", lambda session, n: ((i,) for i in range(n)))
        assert db.execute("SELECT SUM(a) FROM TABLE(gen(5)) AS g (a INT)").scalar() == 10

    def test_unknown_function(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM TABLE(nope()) AS g (a INT)")
