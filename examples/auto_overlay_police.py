#!/usr/bin/env python3
"""AutoOverlay on the law-enforcement dataset (paper §5.1 and §7).

The police schema carries full primary/foreign key constraints, so the
AutoOverlay toolkit (Algorithms 1 and 2) can generate the entire graph
overlay from the catalog — including the tricky cases:

* ``Arrest`` has a primary key *and* a foreign key, so it becomes both
  a vertex table and an edge table;
* ``Membership`` has two foreign keys and no primary key, so it
  becomes a pure edge table (person -> organization).

The queries are the §7 case studies: phones/vehicles of the suspects
in an arrest, and the organizations those suspects belong to.
"""

from repro.core import Db2Graph, generate_overlay
from repro.graph import __
from repro.relational import Database
from repro.workloads.police import PoliceDataset


def main() -> None:
    dataset = PoliceDataset()
    db = Database()
    dataset.install_relational(db)

    # -- Algorithms 1 + 2: overlay from catalog metadata ----------------------
    overlay = generate_overlay(db)
    print("AutoOverlay generated configuration:")
    print(overlay.to_json())

    graph = Db2Graph.open(db, overlay)
    g = graph.traversal()
    print("\ntopology:")
    print(graph.topology.describe())

    # -- §7 case study 1: an arrest's suspect, their phones and vehicles --------
    arrest = g.V().hasLabel("Arrest").next()
    # NB: AutoOverlay folds primary-key columns into the vertex id
    # (Algorithm 2), so the arrest number lives in arrest.id
    print(f"\narrest {arrest.id} ({arrest.value('charge')}):")
    suspects = g.V(arrest.id).out("Arrest_Person").toList()
    for suspect in suspects:
        name = suspect.value("name")
        phones = g.V(suspect.id).in_("Phone_Person").values("number").toList()
        vehicles = g.V(suspect.id).in_("Vehicle_Person").values("plate").toList()
        print(f"  suspect {name}: phones={phones} vehicles={vehicles}")

    # -- §7 case study 2: criminal organizations of arrested persons ------------
    gangs = (
        g.V()
        .hasLabel("Arrest")
        .out("Arrest_Person")
        .out("Person_Membership_Organization")
        .has("orgType", "gang")
        .dedup()
        .values("name")
        .toList()
    )
    print(f"\ngangs connected to arrests: {sorted(gangs)}")

    # persons arrested at least twice (graph-side aggregation)
    repeat_offenders = (
        g.V()
        .hasLabel("Arrest")
        .out("Arrest_Person")
        .groupCount()
        .by("name")
        .next()
    )
    multi = {name: n for name, n in repeat_offenders.items() if n >= 2}
    print(f"repeat offenders: {multi}")


if __name__ == "__main__":
    main()
