"""Service-layer scaling: throughput and tail latency vs. session count.

Closed-loop clients (one per logical session, ~4 ms think time between
requests) drive a mixed 80/20 read/DML workload through one
:class:`~repro.service.GraphService` over a shared database.  With one
session the service is think-time-bound and its workers idle; as
sessions multiply, requests overlap on the shared worker pool and
aggregate throughput climbs until the pool (and the interpreter)
saturates.  Acceptance: >= 2x throughput going from 1 to 8 sessions.

A second, open-loop run offers load above the service's capacity into
a deliberately tiny admission queue to show backpressure doing its
job: a healthy rejection count, zero failed requests, and every
admitted request completing.
"""

from __future__ import annotations

import pytest

from repro.bench.load import LoadResult, run_closed_loop, run_open_loop
from repro.bench.reporting import format_table
from repro.relational import Database
from repro.service import GraphService, ServiceConfig

SESSION_COUNTS = [1, 2, 4, 8]
N_ITEMS = 64
THINK_SECONDS = 0.004
DURATION_SECONDS = 1.5

OVERLAY = {
    "v_tables": [
        {"table_name": "Item", "id": "itemID", "fix_label": True,
         "label": "'item'", "properties": ["itemID", "name", "score"]},
    ],
    "e_tables": [
        {"table_name": "Link", "src_v_table": "Item", "src_v": "srcID",
         "dst_v_table": "Item", "dst_v": "dstID",
         "implicit_edge_id": True, "fix_label": True, "label": "'link'"},
    ],
}

_RESULTS: dict[int, LoadResult] = {}
_OPEN_RESULT: list[LoadResult] = []


def build_item_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE Item (itemID BIGINT PRIMARY KEY, name VARCHAR, score BIGINT)"
    )
    db.execute("CREATE TABLE Link (srcID BIGINT, dstID BIGINT)")
    items = ", ".join(f"({i}, 'item{i}', {i % 7})" for i in range(1, N_ITEMS + 1))
    db.execute(f"INSERT INTO Item VALUES {items}")
    links = ", ".join(
        f"({i}, {i % N_ITEMS + 1})" for i in range(1, N_ITEMS + 1)
    )
    db.execute(f"INSERT INTO Link VALUES {links}")
    return db


def mixed_work(session):
    """One request of the 80/20 read/DML mix.

    Per-session request counter picks the key and the operation, so the
    mix is deterministic and sessions touch disjoint-ish keys (less
    write-write conflict noise in a throughput measurement).
    """
    n = session._bench_counter = getattr(session, "_bench_counter", -1) + 1
    key = (n * 7 + session.session_id) % N_ITEMS + 1
    if n % 5 == 4:
        session.connection.execute(
            "UPDATE Item SET score = score + 1 WHERE itemID = ?", (key,)
        )
        return None
    return (
        session.g.V()
        .has("item", "itemID", key)
        .out("link")
        .values("score")
        .toList()
    )


@pytest.mark.parametrize("n_sessions", SESSION_COUNTS)
def test_service_scaling(n_sessions):
    db = build_item_db()
    service = GraphService(db, OVERLAY, ServiceConfig(workers=4, queue_depth=256))
    try:
        result = run_closed_loop(
            service,
            mixed_work,
            n_sessions=n_sessions,
            duration_seconds=DURATION_SECONDS,
            think_seconds=THINK_SECONDS,
        )
    finally:
        service.shutdown(timeout=10)
    _RESULTS[n_sessions] = result

    assert result.failed == 0, f"{result.failed} requests failed"
    assert result.shed == 0  # no deadlines in this workload
    assert result.completed > 0
    # every admitted request completed; nothing leaked in the service
    stats = service.stats()
    assert stats["failed"] == 0


def test_service_backpressure_open_loop():
    """Offered load above capacity into a queue of 8: admission control
    rejects the overflow instead of letting latency grow without bound,
    and every admitted request still completes."""
    db = build_item_db()
    service = GraphService(db, OVERLAY, ServiceConfig(workers=2, queue_depth=8))
    try:
        result = run_open_loop(
            service,
            mixed_work,
            n_sessions=4,
            arrival_rate_qps=4000.0,
            duration_seconds=1.0,
        )
    finally:
        service.shutdown(timeout=10)
    _OPEN_RESULT.append(result)

    assert result.rejected > 0, "overload never hit the queue bound"
    assert result.failed == 0
    assert result.completed > 0


def test_service_throughput_report(collector):
    if len(_RESULTS) < len(SESSION_COUNTS):
        pytest.skip("service scaling benchmarks did not run")

    base = _RESULTS[SESSION_COUNTS[0]]
    rows = []
    for n in SESSION_COUNTS:
        r = _RESULTS[n]
        rows.append(
            [
                n,
                f"{r.throughput_qps:,.0f}",
                f"{r.throughput_qps / base.throughput_qps:.2f}x"
                if base.throughput_qps
                else "n/a",
                f"{r.p50_ms:.2f}",
                f"{r.p95_ms:.2f}",
                f"{r.p99_ms:.2f}",
                r.completed,
                r.rejected,
            ]
        )
    collector.add(
        "service_throughput",
        format_table(
            ["sessions", "qps", "scaling", "p50 ms", "p95 ms", "p99 ms",
             "completed", "rejected"],
            rows,
            title=(
                "Service-layer throughput vs. session count (closed loop, "
                f"4 workers, {THINK_SECONDS * 1e3:.0f}ms think time, "
                "mixed 80/20 read/DML)"
            ),
        ),
    )

    if _OPEN_RESULT:
        r = _OPEN_RESULT[0]
        collector.add(
            "service_throughput",
            format_table(
                ["mode", "offered qps", "qps", "completed", "rejected",
                 "failed", "p95 ms"],
                [[
                    "open loop (queue=8, workers=2)", "4,000",
                    f"{r.throughput_qps:,.0f}", r.completed, r.rejected,
                    r.failed, f"{r.p95_ms:.2f}",
                ]],
                title="Admission control under overload",
            ),
        )

    # -- acceptance: multiplexing sessions onto the shared pool scales
    one = _RESULTS[1].throughput_qps
    eight = _RESULTS[8].throughput_qps
    assert eight >= 2.0 * one, (
        f"8 sessions should at least double 1-session throughput "
        f"({eight:,.0f} vs {one:,.0f} qps)"
    )
