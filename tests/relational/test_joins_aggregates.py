"""Integration tests for joins, grouping, and aggregation."""

import pytest

from repro.relational import Database, ExecutionError, SqlSyntaxError
from repro.relational.planner import HashJoinNode, NestedLoopJoinNode, Planner
from repro.relational.sql_parser import parse_statement


def join_nodes(db, sql):
    plan = Planner(db).plan_select(parse_statement(sql))
    nodes = []
    stack = [plan.root]
    while stack:
        node = stack.pop()
        if isinstance(node, (HashJoinNode, NestedLoopJoinNode)):
            nodes.append(node)
        stack.extend(node._children())
    return nodes


class TestJoins:
    def test_inner_join(self, people_db):
        rows = people_db.execute(
            "SELECT p.name, q.name FROM knows k "
            "JOIN person p ON k.src = p.id JOIN person q ON k.dst = q.id"
        ).rows
        assert ("ada", "grace") in rows
        assert len(rows) == 4

    def test_comma_join_with_where(self, people_db):
        rows = people_db.execute(
            "SELECT p.name FROM person p, knows k WHERE p.id = k.src AND k.dst = 4"
        ).rows
        assert sorted(rows) == [("alan",), ("grace",)]

    def test_left_join_pads_nulls(self, people_db):
        rows = people_db.execute(
            "SELECT p.name, k.dst FROM person p LEFT JOIN knows k ON p.id = k.src "
            "ORDER BY p.id"
        ).rows
        unmatched = [r for r in rows if r[1] is None]
        assert ("edsger", None) in unmatched  # edsger knows nobody
        assert ("barbara", None) in unmatched

    def test_equi_join_uses_hash_join(self, people_db):
        nodes = join_nodes(
            people_db, "SELECT * FROM person p JOIN knows k ON p.id = k.src"
        )
        assert any(isinstance(n, HashJoinNode) for n in nodes)

    def test_non_equi_join_uses_nested_loop(self, people_db):
        nodes = join_nodes(
            people_db, "SELECT * FROM person p JOIN person q ON p.age < q.age"
        )
        assert any(isinstance(n, NestedLoopJoinNode) for n in nodes)

    def test_non_equi_join_results(self, people_db):
        rows = people_db.execute(
            "SELECT p.name, q.name FROM person p JOIN person q ON p.age > q.age "
            "WHERE q.name = 'ada'"
        ).rows
        assert sorted(r[0] for r in rows) == ["alan", "edsger", "grace"]

    def test_three_way_join(self, people_db):
        rows = people_db.execute(
            "SELECT a.name, c.name FROM person a, knows k1, knows k2, person c "
            "WHERE a.id = k1.src AND k1.dst = k2.src AND k2.dst = c.id"
        ).rows
        # ada->grace->edsger and ada->alan->edsger
        assert rows.count(("ada", "edsger")) == 2

    def test_join_null_keys_never_match(self, db):
        db.execute("CREATE TABLE l (a INT)")
        db.execute("CREATE TABLE r (a INT)")
        db.execute("INSERT INTO l VALUES (1), (NULL)")
        db.execute("INSERT INTO r VALUES (1), (NULL)")
        rows = db.execute("SELECT * FROM l JOIN r ON l.a = r.a").rows
        assert rows == [(1, 1)]

    def test_self_join_aliases(self, people_db):
        rows = people_db.execute(
            "SELECT k1.src FROM knows k1 JOIN knows k2 ON k1.dst = k2.src"
        ).rows
        assert rows == [(1,), (1,)]  # 1->2->4 and 1->3->4


class TestAggregates:
    def test_count_star(self, people_db):
        assert people_db.execute("SELECT COUNT(*) FROM person").scalar() == 5

    def test_count_column_skips_nulls(self, people_db):
        assert people_db.execute("SELECT COUNT(age) FROM person").scalar() == 4

    def test_sum_avg_min_max(self, people_db):
        row = people_db.execute(
            "SELECT SUM(age), AVG(age), MIN(age), MAX(age) FROM person"
        ).rows[0]
        assert row == (234, 58.5, 36, 85)

    def test_aggregates_on_empty_input(self, db):
        db.execute("CREATE TABLE t (a INT)")
        row = db.execute("SELECT COUNT(*), SUM(a), AVG(a), MIN(a), MAX(a) FROM t").rows[0]
        assert row == (0, None, None, None, None)

    def test_group_by(self, people_db):
        rows = people_db.execute(
            "SELECT city, COUNT(*) FROM person GROUP BY city ORDER BY city"
        ).rows
        assert rows == [("austin", 1), ("boston", 1), ("london", 2), ("nyc", 1)]

    def test_group_by_with_having(self, people_db):
        rows = people_db.execute(
            "SELECT city, COUNT(*) FROM person GROUP BY city HAVING COUNT(*) > 1"
        ).rows
        assert rows == [("london", 2)]

    def test_group_by_null_group(self, db):
        db.execute("CREATE TABLE t (k VARCHAR, v INT)")
        db.execute("INSERT INTO t VALUES ('a', 1), (NULL, 2), (NULL, 3)")
        rows = dict(db.execute("SELECT k, SUM(v) FROM t GROUP BY k").rows)
        assert rows == {"a": 1, None: 5}

    def test_aggregate_expression(self, people_db):
        value = people_db.execute("SELECT SUM(age) / COUNT(age) FROM person").scalar()
        assert value == 58  # integer division

    def test_expression_inside_aggregate(self, people_db):
        value = people_db.execute("SELECT SUM(age * 2) FROM person").scalar()
        assert value == 468

    def test_group_expr_referenced_in_select(self, people_db):
        rows = people_db.execute(
            "SELECT UPPER(city), COUNT(*) FROM person GROUP BY UPPER(city) "
            "ORDER BY UPPER(city) LIMIT 1"
        ).rows
        assert rows == [("AUSTIN", 1)]

    def test_non_grouped_column_rejected(self, people_db):
        with pytest.raises(SqlSyntaxError):
            people_db.execute("SELECT name, COUNT(*) FROM person GROUP BY city")

    def test_having_without_group_rejected(self, people_db):
        with pytest.raises(SqlSyntaxError):
            people_db.execute("SELECT name FROM person HAVING name = 'x'")

    def test_sum_non_numeric_raises(self, people_db):
        with pytest.raises(ExecutionError):
            people_db.execute("SELECT SUM(name) FROM person")

    def test_order_by_aggregate(self, people_db):
        rows = people_db.execute(
            "SELECT city, COUNT(*) FROM person GROUP BY city ORDER BY COUNT(*) DESC, city"
        ).rows
        assert rows[0] == ("london", 2)

    def test_aggregate_over_join(self, people_db):
        value = people_db.execute(
            "SELECT COUNT(*) FROM person p JOIN knows k ON p.id = k.src"
        ).scalar()
        assert value == 4

    def test_group_by_join_result(self, people_db):
        rows = people_db.execute(
            "SELECT p.name, COUNT(*) FROM person p JOIN knows k ON p.id = k.src "
            "GROUP BY p.name ORDER BY p.name"
        ).rows
        assert rows == [("ada", 2), ("alan", 1), ("grace", 1)]
