"""Tests for the export/load/open pipelines (Table 3 machinery)."""

import os

import pytest

from repro.baselines.janus import JanusLikeStore
from repro.baselines.kvstore import DiskModel
from repro.baselines.loader import (
    export_tables_to_csv,
    load_into_store,
    measure_baseline_pipeline,
    measure_db2graph_open,
    relational_disk_usage,
)
from repro.baselines.native import NativeGraphStore
from repro.core.overlay import OverlayConfig
from repro.core.topology import Topology
from repro.graph import GraphTraversalSource
from tests.conftest import HEALTHCARE_TINY_OVERLAY


@pytest.fixture
def topology(paper_db):
    return Topology(paper_db, OverlayConfig.from_dict(HEALTHCARE_TINY_OVERLAY))


TABLES = ["Patient", "Disease", "HasDisease", "DiseaseOntology"]


class TestExport:
    def test_csv_files_created(self, paper_db, tmp_path):
        result = export_tables_to_csv(paper_db, TABLES, str(tmp_path))
        assert len(result.files) == 4
        assert result.csv_bytes > 0
        assert result.seconds >= 0
        patient_csv = (tmp_path / "patient.csv").read_text()
        assert "Alice" in patient_csv
        result.cleanup()
        assert not any(os.path.exists(f) for f in result.files)

    def test_relational_disk_usage(self, paper_db):
        assert relational_disk_usage(paper_db, TABLES) > 0


class TestLoad:
    def test_load_native_via_topology(self, paper_db, topology):
        store = NativeGraphStore(disk_model=DiskModel(0.0))
        seconds = load_into_store(store, topology, paper_db)
        assert seconds >= 0
        assert store.vertex_count() == 7
        assert store.edge_count() == 6
        # the loaded graph answers the same queries
        g = GraphTraversalSource(store)
        assert g.V("patient::1").out("hasDisease").values("conceptName").toList() == [
            "type 2 diabetes"
        ]
        store.close()

    def test_load_janus_via_topology(self, paper_db, topology):
        store = JanusLikeStore(disk_model=DiskModel(0.0))
        load_into_store(store, topology, paper_db)
        g = GraphTraversalSource(store)
        assert g.V().count().next() == 7
        assert g.E().hasLabel("isa").count().next() == 3
        store.close()

    def test_loaded_copy_is_stale_after_relational_update(self, paper_db, topology):
        """The paper's core criticism of reload-based systems: the copy
        does not see later SQL updates."""
        store = NativeGraphStore(disk_model=DiskModel(0.0))
        load_into_store(store, topology, paper_db)
        paper_db.execute("INSERT INTO HasDisease VALUES (1, 10, 'late dx')")
        g = GraphTraversalSource(store)
        assert g.V("patient::1").out("hasDisease").count().next() == 1  # stale!
        from repro.core import Db2Graph

        live = Db2Graph.open(paper_db, HEALTHCARE_TINY_OVERLAY)
        assert live.traversal().V("patient::1").out("hasDisease").count().next() == 2
        store.close()


class TestPipelines:
    def test_baseline_pipeline_report(self, paper_db, topology):
        store = NativeGraphStore(disk_model=DiskModel(0.0))
        report = measure_baseline_pipeline("GDB-X", store, topology, paper_db, TABLES)
        assert report.system == "GDB-X"
        assert report.export_seconds > 0
        assert report.load_seconds > 0
        assert report.disk_usage_bytes > 0
        assert report.total_seconds == pytest.approx(
            report.export_seconds + report.load_seconds + report.open_seconds
        )
        store.close()

    def test_db2graph_open_report(self, paper_db):
        report = measure_db2graph_open(
            paper_db, HEALTHCARE_TINY_OVERLAY, TABLES
        )
        assert report.export_seconds == 0.0
        assert report.load_seconds == 0.0
        assert report.open_seconds > 0
        assert report.disk_usage_bytes > 0
