"""Integration tests for the trickier overlay shapes the paper calls
out: star-schema fact tables serving as several edge tables, vertex
tables with column-derived labels, views as overlay members, and
concurrent graph readers vs SQL writers."""

import threading

import pytest

from repro.core import Db2Graph
from repro.graph import P, __
from repro.relational import Database


class TestStarSchema:
    """Paper §5: 'sometimes one table can serve as multiple edge tables,
    which is very common for the fact table in a star schema.'"""

    @pytest.fixture
    def star(self, db):
        db.execute("CREATE TABLE customer (cid BIGINT PRIMARY KEY, name VARCHAR)")
        db.execute("CREATE TABLE product (pid BIGINT PRIMARY KEY, title VARCHAR)")
        db.execute(
            "CREATE TABLE sale (sid BIGINT PRIMARY KEY, cid BIGINT, pid BIGINT, "
            "amount DOUBLE, "
            "FOREIGN KEY (cid) REFERENCES customer (cid), "
            "FOREIGN KEY (pid) REFERENCES product (pid))"
        )
        db.execute("INSERT INTO customer VALUES (1, 'c1'), (2, 'c2')")
        db.execute("INSERT INTO product VALUES (10, 'p10'), (11, 'p11')")
        db.execute(
            "INSERT INTO sale VALUES (100, 1, 10, 5.0), (101, 1, 11, 7.5), "
            "(102, 2, 10, 2.0)"
        )
        overlay = {
            "v_tables": [
                {"table_name": "customer", "prefixed_id": True, "id": "'c'::cid",
                 "fix_label": True, "label": "'customer'"},
                {"table_name": "product", "prefixed_id": True, "id": "'p'::pid",
                 "fix_label": True, "label": "'product'"},
                {"table_name": "sale", "prefixed_id": True, "id": "'s'::sid",
                 "fix_label": True, "label": "'sale'", "properties": ["amount"]},
            ],
            "e_tables": [
                # the fact table twice: sale->customer and sale->product
                {"table_name": "sale", "config_name": "sale_customer",
                 "src_v_table": "sale", "src_v": "'s'::sid",
                 "dst_v_table": "customer", "dst_v": "'c'::cid",
                 "implicit_edge_id": True, "fix_label": True, "label": "'soldTo'",
                 "properties": []},
                {"table_name": "sale", "config_name": "sale_product",
                 "src_v_table": "sale", "src_v": "'s'::sid",
                 "dst_v_table": "product", "dst_v": "'p'::pid",
                 "implicit_edge_id": True, "fix_label": True, "label": "'ofProduct'",
                 "properties": []},
            ],
        }
        return db, Db2Graph.open(db, overlay)

    def test_fact_table_as_two_edge_tables(self, star):
        _db, graph = star
        g = graph.traversal()
        assert g.E().hasLabel("soldTo").count().next() == 3
        assert g.E().hasLabel("ofProduct").count().next() == 3

    def test_traverse_both_relationship_kinds(self, star):
        _db, graph = star
        g = graph.traversal()
        # products bought by customer c1, through the fact vertex
        products = (
            g.V("c::1").in_("soldTo").out("ofProduct").dedup().values("title").toList()
        )
        assert sorted(products) == ["p10", "p11"]

    def test_sale_is_both_vertex_and_edge(self, star):
        _db, graph = star
        g = graph.traversal()
        sale = g.V("s::100").next()
        assert sale.value("amount") == 5.0
        # vertex-from-edge: outV of a soldTo edge is the sale vertex itself
        edge = g.V("s::100").outE("soldTo").next()
        vertex = next(graph.provider.edge_vertex(edge, __import__("repro.graph.model", fromlist=["Direction"]).Direction.OUT))
        assert vertex.label == "sale" and vertex.is_materialized

    def test_aggregate_amount_through_graph(self, star):
        _db, graph = star
        total = graph.traversal().V().hasLabel("sale").values("amount").sum_().next()
        assert total == pytest.approx(14.5)


class TestColumnLabels:
    """One physical table holding multiple vertex labels via a column."""

    @pytest.fixture
    def entities(self, db):
        db.execute(
            "CREATE TABLE entity (eid BIGINT PRIMARY KEY, etype VARCHAR, name VARCHAR)"
        )
        db.execute("CREATE TABLE rel (src BIGINT, dst BIGINT, kind VARCHAR)")
        db.execute(
            "INSERT INTO entity VALUES (1, 'person', 'ada'), (2, 'person', 'bob'), "
            "(3, 'company', 'acme')"
        )
        db.execute("INSERT INTO rel VALUES (1, 3, 'worksAt'), (2, 3, 'worksAt'), (1, 2, 'knows')")
        overlay = {
            "v_tables": [
                {"table_name": "entity", "id": "eid", "label": "etype",
                 "properties": ["name"]},
            ],
            "e_tables": [
                {"table_name": "rel", "src_v_table": "entity", "src_v": "src",
                 "dst_v_table": "entity", "dst_v": "dst",
                 "prefixed_edge_id": True, "id": "'r'::src::dst", "label": "kind"},
            ],
        }
        return db, Db2Graph.open(db, overlay)

    def test_labels_come_from_column(self, entities):
        _db, graph = entities
        g = graph.traversal()
        assert g.V().hasLabel("person").count().next() == 2
        assert g.V().hasLabel("company").count().next() == 1

    def test_label_pushdown_becomes_sql_predicate(self, entities):
        _db, graph = entities
        graph.dialect.log = []
        graph.traversal().V().hasLabel("person").toList()
        assert any("etype" in sql and "WHERE" in sql for sql in graph.dialect.log)
        graph.dialect.log = None

    def test_edge_labels_from_column(self, entities):
        _db, graph = entities
        g = graph.traversal()
        assert g.V(1).out("worksAt").values("name").toList() == ["acme"]
        assert g.V(1).outE("knows").count().next() == 1

    def test_group_by_label(self, entities):
        _db, graph = entities
        counts = graph.traversal().V().label().groupCount().next()
        assert counts == {"person": 2, "company": 1}


class TestConcurrentAccess:
    """Graph readers never block behind SQL writers (MVCC), and see
    committed writes immediately — the paper's timeliness story."""

    @pytest.fixture
    def live(self, db):
        db.execute("CREATE TABLE n (id BIGINT PRIMARY KEY, v INT)")
        db.execute("CREATE TABLE e (src BIGINT, dst BIGINT)")
        db.execute("INSERT INTO n VALUES (1, 0), (2, 0)")
        db.execute("INSERT INTO e VALUES (1, 2)")
        overlay = {
            "v_tables": [{"table_name": "n", "id": "id", "fix_label": True, "label": "'n'"}],
            "e_tables": [{"table_name": "e", "src_v_table": "n", "src_v": "src",
                          "dst_v_table": "n", "dst_v": "dst", "implicit_edge_id": True,
                          "fix_label": True, "label": "'e'"}],
        }
        return db, Db2Graph.open(db, overlay)

    def test_reader_does_not_block_behind_open_writer(self, live):
        db, graph = live
        writer = db.connect()
        writer.begin()
        writer.execute("UPDATE n SET v = 99 WHERE id = 1")
        results = []

        def read():
            results.append(graph.traversal().V(1).values("v").next())

        thread = threading.Thread(target=read)
        thread.start()
        thread.join(timeout=2)
        assert not thread.is_alive(), "graph reader must not block"
        assert results == [0]
        writer.rollback()

    @pytest.mark.stress
    def test_many_concurrent_readers_with_writer(self, live):
        db, graph = live
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    count = graph.traversal().V().count().next()
                    assert count >= 2
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for i in range(30):
                    db.execute("INSERT INTO n VALUES (?, 0)", [100 + i])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        write_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        write_thread.start()
        write_thread.join()
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
        assert not errors
        assert graph.traversal().V().count().next() == 32

    def test_each_commit_is_immediately_traversable(self, live):
        db, graph = live
        for i in range(5):
            db.execute("INSERT INTO n VALUES (?, ?)", [10 + i, i])
            db.execute("INSERT INTO e VALUES (1, ?)", [10 + i])
            assert graph.traversal().V(1).out("e").count().next() == 2 + i
