"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one table or figure from the
paper's evaluation (§8).  Besides pytest-benchmark's own timing table,
each module writes a paper-style summary to ``benchmarks/results/``
via the ``collector`` fixture.

Scales default to a laptop-friendly shrink of LinkBench-10M/100M; set
``REPRO_LINKBENCH_SMALL`` / ``REPRO_LINKBENCH_LARGE`` to resize.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import build_engines, clear_engine_cache
from repro.workloads.linkbench import LinkBenchConfig

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help="run the fault-injection (chaos) benchmarks",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--chaos"):
        return
    skip_chaos = pytest.mark.skip(reason="chaos benchmarks need --chaos")
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip_chaos)


class ResultCollector:
    """Accumulates paper-style report lines and writes them per module."""

    def __init__(self) -> None:
        self._sections: dict[str, list[str]] = {}

    def add(self, section: str, text: str) -> None:
        self._sections.setdefault(section, []).append(text)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        for section, chunks in self._sections.items():
            path = RESULTS_DIR / f"{section}.txt"
            body = "\n\n".join(chunks) + "\n"
            path.write_text(body)
            print(f"\n===== {section} =====\n{body}")


@pytest.fixture(scope="session")
def collector():
    instance = ResultCollector()
    yield instance
    instance.flush()
    clear_engine_cache()


@pytest.fixture(scope="session")
def small_setup():
    return build_engines(LinkBenchConfig.small())


@pytest.fixture(scope="session")
def large_setup():
    return build_engines(LinkBenchConfig.large())


@pytest.fixture(scope="session")
def small_db2_only():
    config = LinkBenchConfig.small()
    return build_engines(config, include_baselines=False)
