"""The oracle runner: one scenario, every engine configuration.

:func:`run_scenario` materializes the scenario's relational state,
builds the pure-Python reference graph (:mod:`repro.testing.oracle`),
opens the overlay engine once per :class:`Cell` of the configuration
matrix — {strategies on/off} x {runtime opts on/off} x {serial,
parallel} x {batch 1, 64} x {read cache off/on} — and replays the
identical workload on every side:

* traversal chains are checked for multiset-equal results between the
  oracle and every engine cell;
* the optimized serial cell must never issue *more* SQL statements
  than the stripped serial cell for the same chain (trace-derived
  §6.2/§6.3 monotonicity);
* DML (inside transactions, with commit/rollback) and ``addV``/``addE``
  mutations advance both worlds; after every commit the incrementally
  maintained oracle is cross-validated against a from-scratch rebuild
  of the §5 mapping ("oracle-inconsistency" means the mutation path
  and the mapping disagree);
* ``graphQuery`` table-function SQL runs against the real engine and
  against a shadow database whose ``graphQuery`` is backed by the
  oracle graph, comparing the final (joined/aggregated) row sets;
* cells with ``durable=True`` run against a WAL-logged replica of the
  relational state (``repro.durability``) that is crash-killed and
  reopened mid-workload: the recovered store must map §5-identically
  to the incrementally maintained oracle, and every later traversal
  check runs over the *recovered* database.

A :class:`Divergence` is returned for the first mismatch; ``None``
means the scenario is conformant.  :class:`ScenarioInvalid` is raised
when the *scenario itself* cannot be represented (the shrinker uses it
to reject invalid deletion candidates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.db2graph import Db2Graph
from ..core.graph_structure import RuntimeOptimizations
from ..core.table_function import make_graph_query_function
from ..graph.errors import GraphError
from ..graph.gremlin_parser import evaluate_gremlin
from ..graph.memory import InMemoryGraph
from ..graph.traversal import GraphTraversalSource
from ..obs import tracing
from .oracle import OracleError, graphs_equal, materialize_oracle
from .scenario import Scenario, build_database, resolve_overlay
from .workload import apply_chain, normalize_results


class ScenarioInvalid(Exception):
    """The scenario is unrepresentable (NULL ids, dangling endpoints,
    broken DDL...) — a generator/shrinker artifact, not an engine bug."""


@dataclass(frozen=True)
class Cell:
    """One engine configuration of the conformance matrix."""

    optimized: bool
    runtime_on: bool
    parallelism: int
    batch_size: int
    cache_on: bool = False
    # durable=True: the cell's engine runs over a crash-killed-and-
    # recovered durability replica instead of the shared in-memory db.
    durable: bool = False

    @property
    def name(self) -> str:
        return (
            f"{'opt' if self.optimized else 'noopt'}"
            f"/{'rt' if self.runtime_on else 'nort'}"
            f"/p{self.parallelism}/b{self.batch_size}"
            f"{'/cache' if self.cache_on else ''}"
            f"{'/dur' if self.durable else ''}"
        )

    def open(self, db: Any, overlay: dict[str, Any]) -> Db2Graph:
        return Db2Graph.open(
            db,
            overlay,
            optimized=self.optimized,
            runtime_opts=None if self.runtime_on else RuntimeOptimizations.all_off(),
            parallelism=self.parallelism,
            batch_size=self.batch_size,
            # Explicit True/False so the matrix is deterministic even
            # when a CI leg exports REPRO_CACHE_ENABLED=1.
            cache=self.cache_on,
        )


#: The full {strategies} x {runtime opts} x {parallelism} x {batch} x
#: {cache off/on} x {durable off/on} matrix (nightly).
CELL_FULL_MATRIX: tuple[Cell, ...] = tuple(
    Cell(optimized, runtime_on, parallelism, batch_size, cache_on, durable)
    for optimized in (True, False)
    for runtime_on in (True, False)
    for parallelism in (1, 4)
    for batch_size in (1, 64)
    for cache_on in (False, True)
    for durable in (False, True)
)

#: The corners used per-seed in CI: both extremes of the optimization
#: space, serial/batch-1 vs parallel-4/batch-64, plus the same two
#: shape corners with the read cache on — a cached engine replays the
#: whole DML-interleaved workload and must stay multiset-identical to
#: the oracle (and hence to every uncached cell).  The serial uncached
#: corners double as the SQL-count monotonicity pair.
CELL_CORNERS: tuple[Cell, ...] = (
    Cell(True, True, 1, 1),
    Cell(False, False, 1, 1),
    Cell(True, True, 4, 64),
    Cell(False, False, 4, 64),
    Cell(True, True, 1, 1, cache_on=True),
    Cell(True, True, 4, 64, cache_on=True),
    # Durability corners: same two shape extremes over a WAL-logged
    # replica that is crash-killed and reopened mid-workload.
    Cell(True, True, 1, 1, durable=True),
    Cell(False, False, 4, 64, durable=True),
)


@dataclass
class Divergence:
    """The first observed disagreement while replaying a scenario."""

    kind: str  # chain | engine-error | graph-sql | sql-monotonicity |
    #            oracle-inconsistency | open-error | crash-recovery
    seed: int
    op_index: int
    cell: str | None = None
    detail: str = ""
    expected: Any = None
    actual: Any = None
    extras: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        where = f" [{self.cell}]" if self.cell else ""
        return f"{self.kind}{where} at op {self.op_index} (seed {self.seed}): {self.detail}"


def run_scenario(
    scenario: Scenario,
    cells: Sequence[Cell] = CELL_CORNERS,
    check_sql_counts: bool = True,
) -> Divergence | None:
    """Replay ``scenario`` on the oracle and every engine cell."""
    seed = scenario.seed
    try:
        db = build_database(scenario)
        overlay = resolve_overlay(scenario, db)
        shadow_db = build_database(scenario)
    except Exception as exc:  # broken DDL / rows — shrinker artifact
        raise ScenarioInvalid(f"cannot build relational state: {exc}") from exc
    try:
        oracle = materialize_oracle(db, overlay)
    except OracleError as exc:
        raise ScenarioInvalid(str(exc)) from exc

    g_oracle = GraphTraversalSource(oracle)
    shadow_writer = shadow_db.connect("admin")
    shadow_db.register_table_function(
        "graphQuery", make_graph_query_function(_OracleScriptRunner(g_oracle))
    )

    durable: _DurableReplica | None = None
    if any(cell.durable for cell in cells):
        try:
            durable = _DurableReplica(scenario)
        except Exception as exc:
            raise ScenarioInvalid(f"cannot build durable replica: {exc}") from exc

    engines: list[Db2Graph] = []
    try:
        for cell in cells:
            try:
                engines.append(cell.open(durable.db if cell.durable else db, overlay))
            except Exception as exc:
                return Divergence(
                    kind="open-error",
                    seed=seed,
                    op_index=-1,
                    cell=cell.name,
                    detail=f"{type(exc).__name__}: {exc}",
                )
        monotone = _monotonicity_pair(cells) if check_sql_counts else None
        if monotone is not None:
            for index in monotone:
                engines[index].enable_tracing()
        return _replay(
            scenario, db, overlay, oracle, g_oracle,
            shadow_writer, engines, list(cells), monotone, durable,
        )
    finally:
        for engine in engines:
            engine.close()
        if durable is not None:
            durable.cleanup()


class _DurableReplica:
    """The durability-axis replica: the scenario's relational state in a
    WAL-logged database that can be crash-killed and recovered."""

    def __init__(self, scenario: Scenario):
        from ..durability.sim import SimulatedCrash

        self.sim = SimulatedCrash(fsync=False)
        self.db = self.sim.open(enforce_foreign_keys=False)
        for statement in scenario.ddl_statements():
            self.db.execute(statement)
        loader = self.db.connect()
        for table in scenario.tables:
            rows = scenario.rows.get(table.name, [])
            if rows:
                names = [c.lower() for c in table.column_names()]
                loader.insert_rows(
                    table.name, [tuple(r.get(c) for c in names) for r in rows]
                )
        self.writer = self.db.connect("admin")
        self.crashed = False

    def crash_and_recover(
        self,
        oracle: InMemoryGraph,
        overlay: dict[str, Any],
        engines: list[Db2Graph],
        cells: Sequence[Cell],
        seed: int,
        op_index: int,
    ) -> Divergence | None:
        """Hard-kill the replica, crash-recover it, check the recovered
        store against the oracle, and rebuild the durable engines over
        the recovered database."""
        self.crashed = True
        for index, cell in enumerate(cells):
            if cell.durable:
                engines[index].close()
        self.db = self.sim.reopen(enforce_foreign_keys=False)
        self.writer = self.db.connect("admin")
        if not self.db.lock_manager.is_clean():
            return Divergence(
                kind="crash-recovery",
                seed=seed,
                op_index=op_index,
                detail="recovered database has a dirty lock table",
            )
        try:
            rebuilt = materialize_oracle(self.db, overlay)
        except OracleError as exc:
            return Divergence(
                kind="crash-recovery",
                seed=seed,
                op_index=op_index,
                detail=f"recovered store unmappable: {exc}",
            )
        if not graphs_equal(oracle, rebuilt):
            return Divergence(
                kind="crash-recovery",
                seed=seed,
                op_index=op_index,
                detail="recovered graph != oracle after mid-workload crash+reopen",
            )
        for index, cell in enumerate(cells):
            if cell.durable:
                engines[index] = cell.open(self.db, overlay)
        return None

    def cleanup(self) -> None:
        import shutil

        if self.db is not None:
            self.db.close()
        shutil.rmtree(self.sim.dir, ignore_errors=True)


class _OracleScriptRunner:
    """Duck-typed stand-in for Db2Graph inside ``graphQuery``: evaluates
    the Gremlin script on the oracle's traversal source."""

    def __init__(self, g: GraphTraversalSource):
        self._g = g

    def execute(self, script: str) -> Any:
        return evaluate_gremlin(self._g, script)


def _monotonicity_pair(cells: Sequence[Cell]) -> tuple[int, int] | None:
    """(optimized serial batch-1 index, stripped serial batch-1 index).

    Cached cells are excluded: a cache hit legitimately skips the
    ``sql.issued`` event, so statement counts are only comparable
    between uncached engines.  Durable cells are excluded too — their
    engine is torn down and rebuilt at the mid-workload crash, which
    would silently discard the tracked recorder.
    """
    opt = stripped = None
    for index, cell in enumerate(cells):
        if (
            cell.parallelism == 1
            and cell.batch_size == 1
            and not cell.cache_on
            and not cell.durable
        ):
            if cell.optimized and cell.runtime_on and opt is None:
                opt = index
            if not cell.optimized and not cell.runtime_on and stripped is None:
                stripped = index
    if opt is None or stripped is None:
        return None
    return opt, stripped


def _replay(
    scenario: Scenario,
    db: Any,
    overlay: dict[str, Any],
    oracle: InMemoryGraph,
    g_oracle: GraphTraversalSource,
    shadow_writer: Any,
    engines: list[Db2Graph],
    cells: list[Cell],
    monotone: tuple[int, int] | None,
    durable: "_DurableReplica | None" = None,
) -> Divergence | None:
    seed = scenario.seed
    writer = db.connect("admin")  # DML needs admin (or granted) privileges
    pending_mirrors: list[tuple] = []
    in_txn = False
    # The durability axis crashes the replica at the first consistent
    # point past the workload midpoint (and at the end, if the midpoint
    # fell inside an open transaction).
    crash_after = len(scenario.workload) // 2

    def crash_checkpoint(op_index: int) -> Divergence | None:
        if durable is None or durable.crashed or in_txn or op_index < crash_after:
            return None
        return durable.crash_and_recover(
            oracle, overlay, engines, cells, seed, op_index
        )

    def consistency(op_index: int) -> Divergence | None:
        try:
            rebuilt = materialize_oracle(db, overlay)
        except OracleError as exc:
            raise ScenarioInvalid(f"post-mutation state unrepresentable: {exc}") from exc
        if not graphs_equal(oracle, rebuilt):
            return Divergence(
                kind="oracle-inconsistency",
                seed=seed,
                op_index=op_index,
                detail="incremental oracle != rebuilt §5 mapping after commit",
            )
        return None

    for op_index, op in enumerate(scenario.workload):
        tag = op[0]
        if tag == "chain":
            divergence = _check_chain(
                seed, op_index, op[1], g_oracle, engines, cells, monotone
            )
            if divergence is not None:
                return divergence
        elif tag == "begin":
            writer.begin()
            shadow_writer.begin()
            if durable is not None:
                durable.writer.begin()
            in_txn = True
            pending_mirrors = []
        elif tag == "commit":
            writer.commit()
            shadow_writer.commit()
            if durable is not None:
                durable.writer.commit()
            in_txn = False
            _apply_mirrors(oracle, pending_mirrors)
            pending_mirrors = []
            divergence = consistency(op_index)
            if divergence is not None:
                return divergence
        elif tag == "rollback":
            writer.rollback()
            shadow_writer.rollback()
            if durable is not None:
                durable.writer.rollback()
            in_txn = False
            pending_mirrors = []
        elif tag == "sql":
            _sql_tag, sql, params, mirrors = op[:4]
            try:
                writer.execute(sql, params)
                shadow_writer.execute(sql, params)
                if durable is not None:
                    durable.writer.execute(sql, params)
            except Exception as exc:
                raise ScenarioInvalid(f"workload DML failed: {exc}") from exc
            if in_txn:
                pending_mirrors.extend(mirrors)
            else:
                _apply_mirrors(oracle, mirrors)
                divergence = consistency(op_index)
                if divergence is not None:
                    return divergence
        elif tag == "addv":
            _tag, label, props, mirrors, table, full_row = op
            try:
                traversal = engines[0].traversal().addV(label)
                for key, value in props.items():
                    traversal = traversal.property(key, value)
                traversal.toList()
            except Exception as exc:
                return Divergence(
                    kind="engine-error",
                    seed=seed,
                    op_index=op_index,
                    cell=cells[0].name,
                    detail=f"addV({label!r}): {type(exc).__name__}: {exc}",
                )
            _shadow_insert(shadow_writer, table, full_row)
            _mirror_engine_write(writer, durable, cells, table, full_row)
            _apply_mirrors(oracle, mirrors)
            divergence = consistency(op_index)
            if divergence is not None:
                return divergence
        elif tag == "adde":
            _tag, label, src_id, dst_id, props, mirrors, table, full_row = op
            try:
                traversal = engines[0].traversal().addE(label).from_(src_id).to(dst_id)
                for key, value in props.items():
                    traversal = traversal.property(key, value)
                traversal.toList()
            except Exception as exc:
                return Divergence(
                    kind="engine-error",
                    seed=seed,
                    op_index=op_index,
                    cell=cells[0].name,
                    detail=f"addE({label!r}, {src_id!r}, {dst_id!r}): "
                    f"{type(exc).__name__}: {exc}",
                )
            _shadow_insert(shadow_writer, table, full_row)
            _mirror_engine_write(writer, durable, cells, table, full_row)
            _apply_mirrors(oracle, mirrors)
            divergence = consistency(op_index)
            if divergence is not None:
                return divergence
        elif tag == "graph_sql":
            divergence = _check_graph_sql(
                seed, op_index, op[1], shadow_writer, engines, cells
            )
            if divergence is not None:
                return divergence
        else:
            raise ScenarioInvalid(f"unknown workload op {op!r}")
        divergence = crash_checkpoint(op_index)
        if divergence is not None:
            return divergence
    if durable is not None and not durable.crashed:
        # No consistent point fell past the midpoint (or the workload
        # was empty): still exercise one crash+reopen at the end.
        divergence = durable.crash_and_recover(
            oracle, overlay, engines, cells, seed, len(scenario.workload)
        )
        if divergence is not None:
            return divergence
    return None


def _mirror_engine_write(
    writer: Any,
    durable: "_DurableReplica | None",
    cells: Sequence[Cell],
    table: str,
    full_row: dict[str, Any],
) -> None:
    """An ``addV``/``addE`` mutation ran through ``engines[0]`` and so
    landed in exactly one database; insert the identical row into the
    other replica so both stay §5-equal."""
    primary_durable = bool(cells) and cells[0].durable
    if durable is not None and not primary_durable:
        _shadow_insert(durable.writer, table, full_row)
    if primary_durable:
        _shadow_insert(writer, table, full_row)


def _check_chain(
    seed: int,
    op_index: int,
    chain: list[tuple],
    g_oracle: GraphTraversalSource,
    engines: list[Db2Graph],
    cells: list[Cell],
    monotone: tuple[int, int] | None,
) -> Divergence | None:
    try:
        expected = normalize_results(apply_chain(g_oracle, chain))
    except Exception as exc:
        raise ScenarioInvalid(f"oracle rejected chain {chain!r}: {exc}") from exc
    sql_counts: dict[int, int] = {}
    for index, (engine, cell) in enumerate(zip(engines, cells)):
        tracked = monotone is not None and index in monotone
        if tracked:
            engine.trace.clear()
        try:
            actual = normalize_results(apply_chain(engine.traversal(), chain))
        except Exception as exc:
            return Divergence(
                kind="engine-error",
                seed=seed,
                op_index=op_index,
                cell=cell.name,
                detail=f"{type(exc).__name__}: {exc}",
                extras={"chain": chain},
            )
        if tracked:
            sql_counts[index] = engine.trace.count(tracing.SQL_ISSUED)
        if actual != expected:
            return Divergence(
                kind="chain",
                seed=seed,
                op_index=op_index,
                cell=cell.name,
                detail=f"chain {chain!r}",
                expected=expected,
                actual=actual,
                extras={"chain": chain},
            )
    if monotone is not None:
        opt_index, stripped_index = monotone
        if sql_counts.get(opt_index, 0) > sql_counts.get(stripped_index, 0):
            return Divergence(
                kind="sql-monotonicity",
                seed=seed,
                op_index=op_index,
                cell=cells[opt_index].name,
                detail=(
                    f"optimized engine issued {sql_counts[opt_index]} statements, "
                    f"stripped engine only {sql_counts[stripped_index]} "
                    f"for chain {chain!r}"
                ),
                expected=sql_counts[stripped_index],
                actual=sql_counts[opt_index],
                extras={"chain": chain},
            )
    return None


def _check_graph_sql(
    seed: int,
    op_index: int,
    sql: str,
    shadow_writer: Any,
    engines: list[Db2Graph],
    cells: list[Cell],
) -> Divergence | None:
    try:
        expected = sorted(shadow_writer.execute(sql).rows, key=repr)
    except Exception as exc:
        raise ScenarioInvalid(f"oracle-backed graphQuery failed: {exc}") from exc
    for engine, cell in zip(engines, cells):
        engine.register_table_function("graphQuery")
        try:
            actual = sorted(engine.connection.execute(sql).rows, key=repr)
        except Exception as exc:
            return Divergence(
                kind="engine-error",
                seed=seed,
                op_index=op_index,
                cell=cell.name,
                detail=f"graphQuery SQL failed: {type(exc).__name__}: {exc}",
                extras={"sql": sql},
            )
        if actual != expected:
            return Divergence(
                kind="graph-sql",
                seed=seed,
                op_index=op_index,
                cell=cell.name,
                detail=sql,
                expected=expected,
                actual=actual,
                extras={"sql": sql},
            )
    return None


def _apply_mirrors(oracle: InMemoryGraph, mirrors: Sequence[tuple]) -> None:
    for mirror in mirrors:
        kind = mirror[0]
        try:
            if kind == "add_vertex":
                oracle.add_vertex(mirror[1], mirror[2], mirror[3])
            elif kind == "add_edge":
                oracle.add_edge(
                    mirror[2], mirror[3], mirror[4], mirror[5], edge_id=mirror[1]
                )
            elif kind == "remove_vertex":
                oracle.remove_vertex(mirror[1])
            elif kind == "remove_edge":
                oracle.remove_edge(mirror[1])
            elif kind == "set_vprop":
                oracle.set_vertex_property(mirror[1], mirror[2], mirror[3])
            elif kind == "set_eprop":
                oracle.set_edge_property(mirror[1], mirror[2], mirror[3])
            else:
                raise ScenarioInvalid(f"unknown mirror op {mirror!r}")
        except GraphError as exc:
            # a shrunk candidate can orphan mirrors (e.g. the insert that
            # created this element was deleted) — not a conformance bug
            raise ScenarioInvalid(f"mirror {kind} failed: {exc}") from exc


def _shadow_insert(shadow_writer: Any, table: str, full_row: dict[str, Any]) -> None:
    columns = list(full_row)
    sql = (
        f"INSERT INTO {table} ({', '.join(columns)}) "
        f"VALUES ({', '.join('?' * len(columns))})"
    )
    shadow_writer.execute(sql, [full_row[c] for c in columns])


Checker = Callable[[Scenario], "Divergence | None"]


def make_checker(
    baseline: Divergence, cells: Sequence[Cell] = CELL_CORNERS
) -> Checker:
    """A shrinker predicate: does the candidate still fail *the same
    way*?  Invalid candidates (the shrinker deleted something load-
    bearing) count as "no longer failing" and are reverted."""

    def check(candidate: Scenario) -> Divergence | None:
        try:
            divergence = run_scenario(candidate, cells=cells)
        except ScenarioInvalid:
            return None
        except Exception:
            # a candidate that crashes the harness itself is not "the
            # same failure" — revert the mutation rather than abort
            return None
        if divergence is not None and divergence.kind == baseline.kind:
            return divergence
        return None

    return check
