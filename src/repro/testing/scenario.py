"""The generated-scenario model: schema + overlay + rows + workload.

A :class:`Scenario` is fully serializable and self-contained — given
one, :func:`build_database` reconstructs the relational state and
:func:`resolve_overlay` the overlay configuration (either the explicit
config the generator emitted, or the AutoOverlay config derived from
the catalog's PK/FK metadata for ``kind == "auto"`` scenarios).  The
shrinker mutates copies of scenarios, so everything here is plain data.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from ..relational.database import Database


@dataclass
class TableDef:
    """One base table: ordered (column, sql type) pairs + keys."""

    name: str
    columns: list[tuple[str, str]]
    primary_key: list[str] = field(default_factory=list)
    # (columns, ref_table, ref_columns) — declared so AutoOverlay sees
    # them; referential integrity is the generator's job.
    foreign_keys: list[tuple[list[str], str, list[str]]] = field(default_factory=list)

    def ddl(self) -> str:
        parts = [f"{name} {sql_type}" for name, sql_type in self.columns]
        if self.primary_key:
            parts.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        for cols, ref_table, ref_cols in self.foreign_keys:
            parts.append(
                f"FOREIGN KEY ({', '.join(cols)}) "
                f"REFERENCES {ref_table} ({', '.join(ref_cols)})"
            )
        return f"CREATE TABLE {self.name} ({', '.join(parts)})"

    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]


@dataclass
class ViewDef:
    """A view overlay member: ``SELECT * FROM base WHERE pred_col >= pred_min``
    (or an unfiltered projection when ``pred_col`` is None)."""

    name: str
    base: str
    pred_col: str | None = None
    pred_min: int | None = None

    def ddl(self) -> str:
        where = ""
        if self.pred_col is not None:
            where = f" WHERE {self.pred_col} >= {self.pred_min}"
        return f"CREATE VIEW {self.name} AS SELECT * FROM {self.base}{where}"

    def admits(self, row: dict[str, Any]) -> bool:
        """Does a base-table row appear through this view?"""
        if self.pred_col is None:
            return True
        value = row.get(self.pred_col)
        return value is not None and value >= (self.pred_min or 0)


@dataclass
class Scenario:
    """A complete conformance-test case."""

    seed: int
    kind: str  # "explicit" | "auto"
    tables: list[TableDef] = field(default_factory=list)
    views: list[ViewDef] = field(default_factory=list)
    # table name -> row dicts (lowercase column -> value), FK-safe order
    rows: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    # explicit overlay config dict; None => AutoOverlay from the catalog
    overlay: dict[str, Any] | None = None
    auto_tables: list[str] | None = None
    workload: list[tuple] = field(default_factory=list)

    def clone(self) -> "Scenario":
        return copy.deepcopy(self)

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.rows.values())

    def ddl_statements(self) -> list[str]:
        return [t.ddl() for t in self.tables] + [v.ddl() for v in self.views]


def build_database(scenario: Scenario) -> Database:
    """Materialize the scenario's relational state in a fresh engine.

    Foreign keys are declared (AutoOverlay reads them from the catalog)
    but not enforced — the workload generator keeps data consistent
    itself, and enforcement would reject the deliberately-exotic
    explicit scenarios (edge tables without declared keys, etc.)."""
    db = Database(enforce_foreign_keys=False)
    for statement in scenario.ddl_statements():
        db.execute(statement)
    connection = db.connect()
    for table in scenario.tables:
        rows = scenario.rows.get(table.name, [])
        if rows:
            names = [c.lower() for c in table.column_names()]
            connection.insert_rows(table.name, [tuple(r.get(c) for c in names) for r in rows])
    return db


def resolve_overlay(scenario: Scenario, db: Database) -> dict[str, Any]:
    """The overlay config dict for this scenario (AutoOverlay scenarios
    derive it from the live catalog — Algorithms 1 & 2)."""
    if scenario.overlay is not None:
        return scenario.overlay
    from ..core.auto_overlay import generate_overlay

    return generate_overlay(db, scenario.auto_tables).to_dict()
