"""Access control: users, privileges, GRANT/REVOKE.

Because the graph overlay never copies data, graph queries inherit the
relational grants directly (paper §1: "Db2 Graph directly inherits
Db2's mature access control mechanisms").  A user who lacks SELECT on a
vertex table cannot see those vertices through the graph either — the
integration tests assert exactly that.
"""

from __future__ import annotations

import threading

from .errors import AccessDeniedError, DatabaseError

PRIVILEGES = ("SELECT", "INSERT", "UPDATE", "DELETE")


class AccessControl:
    def __init__(self, admin_user: str = "admin"):
        self.admin_user = admin_user
        self._grants: dict[tuple[str, str], set[str]] = {}
        self._lock = threading.Lock()

    def grant(self, privileges: list[str], table: str, user: str) -> None:
        expanded = self._expand(privileges)
        with self._lock:
            key = (user.lower(), table.lower())
            self._grants.setdefault(key, set()).update(expanded)

    def revoke(self, privileges: list[str], table: str, user: str) -> None:
        expanded = self._expand(privileges)
        with self._lock:
            key = (user.lower(), table.lower())
            granted = self._grants.get(key)
            if granted:
                granted -= expanded
                if not granted:
                    del self._grants[key]

    def check(self, user: str, privilege: str, table: str, owner: str | None = None) -> None:
        """Raise :class:`AccessDeniedError` unless ``user`` may perform
        ``privilege`` on ``table``.  Admin and the owner always may."""
        if user.lower() == self.admin_user.lower():
            return
        if owner is not None and user.lower() == owner.lower():
            return
        granted = self._grants.get((user.lower(), table.lower()), set())
        if privilege.upper() not in granted:
            raise AccessDeniedError(
                f"user {user!r} lacks {privilege.upper()} privilege on {table!r}"
            )

    def privileges_of(self, user: str, table: str) -> set[str]:
        return set(self._grants.get((user.lower(), table.lower()), set()))

    def dump_grants(self) -> list[list]:
        """``[user, table, [privileges...]]`` rows for checkpointing."""
        with self._lock:
            return [
                [user, table, sorted(privs)]
                for (user, table), privs in self._grants.items()
            ]

    @staticmethod
    def _expand(privileges: list[str]) -> set[str]:
        expanded: set[str] = set()
        for priv in privileges:
            upper = priv.upper()
            if upper == "ALL":
                expanded.update(PRIVILEGES)
            elif upper in PRIVILEGES:
                expanded.add(upper)
            else:
                raise DatabaseError(f"unknown privilege {priv!r}")
        return expanded
