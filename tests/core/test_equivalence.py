"""Differential testing: Db2 Graph (overlay over SQL) must answer every
traversal exactly like the in-memory reference graph holding the same
data.  Hypothesis generates random graphs and traversals."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Db2Graph, RuntimeOptimizations
from repro.graph import GraphTraversalSource, InMemoryGraph, P, __
from repro.relational import Database

N_LABELS = 3


def build_pair(vertices, edges):
    """Install the same random graph in both engines.

    vertices: list of (vid, label_idx, score or None)
    edges:    list of (src_idx, dst_idx, elabel_idx, weight)
    """
    memory = InMemoryGraph()
    db = Database(enforce_foreign_keys=False)
    for t in range(N_LABELS):
        db.execute(f"CREATE TABLE vt{t} (id INT PRIMARY KEY, score INT)")
        db.execute(f"CREATE TABLE et{t} (src INT, dst INT, weight INT)")

    for vid, label_idx, score in vertices:
        memory.add_vertex(vid, f"L{label_idx}", {"score": score} if score is not None else {})
        db.execute(f"INSERT INTO vt{label_idx} VALUES (?, ?)", [vid, score])

    vertex_ids = [v[0] for v in vertices]
    seen = set()
    for src_idx, dst_idx, elabel_idx, weight in edges:
        src = vertex_ids[src_idx % len(vertex_ids)]
        dst = vertex_ids[dst_idx % len(vertex_ids)]
        t = elabel_idx % N_LABELS
        if (src, dst, t) in seen:
            continue
        seen.add((src, dst, t))
        memory.add_edge(f"E{t}", src, dst, {"weight": weight})
        db.execute(f"INSERT INTO et{t} VALUES (?, ?, ?)", [src, dst, weight])

    overlay = {
        "v_tables": [
            {"table_name": f"vt{t}", "id": "id", "fix_label": True,
             "label": f"'L{t}'", "properties": ["score"]}
            for t in range(N_LABELS)
        ],
        "e_tables": [
            {"table_name": f"et{t}", "src_v": "src", "dst_v": "dst",
             "implicit_edge_id": True, "fix_label": True, "label": f"'E{t}'"}
            for t in range(N_LABELS)
        ],
    }
    overlay_graph = Db2Graph.open(db, overlay)
    return GraphTraversalSource(memory), overlay_graph


def normalize(results):
    from repro.graph import Edge, Vertex

    out = []
    for item in results:
        if isinstance(item, Edge):
            # edge ids are backend-specific (implicit src::label::dst vs
            # auto-increment); compare by endpoints + label instead
            out.append(("edge", item.label, str(item.out_v_id), str(item.in_v_id)))
        elif isinstance(item, Vertex):
            out.append(("vertex", str(item.id), item.label))
        elif isinstance(item, dict):
            out.append(tuple(sorted((k, str(v)) for k, v in item.items())))
        else:
            out.append(item)
    return sorted(out, key=repr)


vertices_strategy = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, N_LABELS - 1), st.one_of(st.none(), st.integers(0, 9))),
    min_size=2,
    max_size=12,
    unique_by=lambda v: v[0],
)
edges_strategy = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11), st.integers(0, 2), st.integers(0, 5)),
    max_size=25,
)


TRAVERSALS = [
    ("V().count", lambda g: g.V().count()),
    ("E().count", lambda g: g.E().count()),
    ("V().hasLabel", lambda g: g.V().hasLabel("L1")),
    ("V().has score", lambda g: g.V().has("score", P.gte(5))),
    ("V().out", lambda g: g.V().out()),
    ("V().out(E0)", lambda g: g.V().out("E0")),
    ("V().in(E1)", lambda g: g.V().in_("E1")),
    ("V().both", lambda g: g.V().both()),
    ("V().outE.weight", lambda g: g.V().outE().values("weight")),
    ("V().outE(E2).inV", lambda g: g.V().outE("E2").inV()),
    ("2-hop", lambda g: g.V().out().out()),
    ("dedup", lambda g: g.V().out().dedup()),
    ("values score", lambda g: g.V().values("score")),
    ("sum score", lambda g: g.V().values("score").sum_()),
    ("groupCount label", lambda g: g.V().label().groupCount()),
    ("repeat out", lambda g: g.V().hasLabel("L0").repeat(__.out()).times(2)),
    ("edge has weight", lambda g: g.E().has("weight", P.lt(3))),
    ("filter inV", lambda g: g.E().filter_(__.inV().hasLabel("L2"))),
]


@given(vertices_strategy, edges_strategy)
@settings(max_examples=25, deadline=None)
def test_overlay_equals_memory_reference(vertices, edges):
    g_memory, overlay_graph = build_pair(vertices, edges)
    for name, build in TRAVERSALS:
        expected = normalize(build(g_memory).toList())
        actual = normalize(build(overlay_graph.traversal()).toList())
        assert actual == expected, f"{name}: overlay={actual} memory={expected}"


@given(vertices_strategy, edges_strategy)
@settings(max_examples=10, deadline=None)
def test_runtime_optimizations_never_change_results(vertices, edges):
    g_memory, overlay_graph = build_pair(vertices, edges)
    stripped = Db2Graph.open(
        overlay_graph.connection,
        overlay_graph.topology.config,
        optimized=False,
        runtime_opts=RuntimeOptimizations.all_off(),
    )
    for name, build in TRAVERSALS:
        fast = normalize(build(overlay_graph.traversal()).toList())
        slow = normalize(build(stripped.traversal()).toList())
        assert fast == slow, f"{name}: optimized={fast} stripped={slow}"


@given(vertices_strategy, edges_strategy, st.integers(0, 40))
@settings(max_examples=25, deadline=None)
def test_id_lookup_equivalence(vertices, edges, probe_id):
    g_memory, overlay_graph = build_pair(vertices, edges)
    expected = normalize(g_memory.V(probe_id).toList())
    actual = normalize(overlay_graph.traversal().V(probe_id).toList())
    assert actual == expected
