"""Mutation-testing the harness itself: every known-wrong §6.3 variant
must be (a) detected by the sweep and (b) minimized by the shrinker to
the acceptance bounds — at most 3 tables, 10 rows, 4 workload steps."""

from __future__ import annotations

import pytest

from repro.testing import (
    BUGS,
    ScenarioInvalid,
    generate_scenario,
    injected_bug,
    make_checker,
    render_repro,
    run_scenario,
    shrink,
)

# first sweep seed known to expose each bug (found once, pinned here so
# the test doesn't re-scan hundreds of seeds)
FIRST_CATCH = {
    "implicit-id-swap": 5,
    "property-elimination": 10,
    "label-elimination": 62,
}


def catch_and_shrink(bug: str):
    seed = FIRST_CATCH[bug]
    with injected_bug(bug):
        scenario = generate_scenario(seed)
        divergence = run_scenario(scenario)
        assert divergence is not None, f"{bug} not caught at pinned seed {seed}"
        shrunk, final = shrink(scenario, make_checker(divergence))
        return shrunk, final


@pytest.mark.parametrize("bug", sorted(BUGS))
def test_injected_bug_is_caught_and_minimized(bug):
    shrunk, final = catch_and_shrink(bug)
    assert final is not None
    assert len(shrunk.tables) <= 3, f"{bug}: {len(shrunk.tables)} tables"
    assert shrunk.total_rows() <= 10, f"{bug}: {shrunk.total_rows()} rows"
    assert len(shrunk.workload) <= 4, f"{bug}: {len(shrunk.workload)} ops"


def test_repro_is_paste_able():
    shrunk, final = catch_and_shrink("implicit-id-swap")
    text = render_repro(shrunk, final)
    assert "CREATE TABLE" in text
    assert "INSERT INTO" in text
    assert "run_scenario" in text  # the replay snippet
    assert final.detail in text or final.kind in text


def test_bugs_do_not_leak_after_context_exit():
    """The monkeypatch must restore the original behavior."""
    seed = FIRST_CATCH["implicit-id-swap"]
    with injected_bug("implicit-id-swap"):
        assert run_scenario(generate_scenario(seed)) is not None
    assert run_scenario(generate_scenario(seed)) is None


def test_unknown_bug_name_raises():
    with pytest.raises(KeyError):
        with injected_bug("nonexistent-bug"):
            pass
