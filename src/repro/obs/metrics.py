"""Named counters and histograms — the observability substrate.

The ad-hoc counter dataclasses that used to live on ``SqlDialect``
(``DialectStats``) and ``OverlayGraph`` (``StructureStats``) are now
views over a shared :class:`MetricsRegistry`, so that

* :meth:`Db2Graph.stats` reads one coherent snapshot,
* trace/stats consistency is testable (every counter increment has a
  matching trace event, see :mod:`repro.obs.tracing`), and
* the bench harness can break latency into *translate* (Gremlin -> SQL
  text), *execute* (relational engine), and *materialize* (rows ->
  graph elements) phases via histograms.

Counters used to be plain integer cells mutated with a bare ``+= 1``;
that read-modify-write races once fan-out statements run on a worker
pool, so each cell now increments under its own lock.  Reads stay
lock-free (``value`` is a single attribute load) and phase timing is
gated by ``MetricsRegistry.timing_enabled`` (off by default) so Tier-1
latency is unchanged unless a caller opts in.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator


class Counter:
    """A named monotonically-increasing integer (resettable).

    Increment is atomic under ``_lock`` so worker threads of a parallel
    fan-out never lose updates; reading ``value`` needs no lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A named streaming summary: count / total / min / max.

    Enough to report mean phase latency and extremes without keeping
    every observation (benchmarks observe millions of spans).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.reset()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.6f})"


class MetricsRegistry:
    """Create-on-demand registry of named counters and histograms.

    One registry is shared by the SQL Dialect and Graph Structure
    modules of a :class:`~repro.core.db2graph.Db2Graph` instance; the
    facade's ``stats()`` / ``reset_stats()`` and the bench harness all
    read and reset the same cells.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        # Guards create-on-demand registration: two fan-out workers
        # asking for the same new counter must share one cell.
        self._lock = threading.Lock()
        # Gate for phase timing (perf_counter calls around translate /
        # execute / materialize).  Off by default: counters alone cost
        # one integer add; timing costs clock reads.
        self.timing_enabled = False

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        cell = self._counters.get(name)
        if cell is None:
            with self._lock:
                cell = self._counters.get(name)
                if cell is None:
                    cell = self._counters[name] = Counter(name)
        return cell

    def histogram(self, name: str) -> Histogram:
        cell = self._histograms.get(name)
        if cell is None:
            with self._lock:
                cell = self._histograms.get(name)
                if cell is None:
                    cell = self._histograms[name] = Histogram(name)
        return cell

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Flat dict of every counter value and histogram summary."""
        out: dict[str, Any] = {c.name: c.value for c in self._counters.values()}
        for h in self._histograms.values():
            out[h.name] = h.summary()
        return out

    def counter_values(self) -> dict[str, int]:
        return {c.name: c.value for c in self._counters.values()}

    def reset(self) -> None:
        for cell in self._counters.values():
            cell.reset()
        for cell in self._histograms.values():
            cell.reset()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)})"
        )


# Canonical metric names — keep in sync with DESIGN.md's observability
# section.  Using constants avoids typo'd never-read counters.
SQL_QUERIES = "sql.queries_issued"
SQL_ROWS = "sql.rows_fetched"
SQL_PREPARED_HITS = "sql.prepared_hits"
# Parallel fan-out + traverser batching.
SQL_BATCHED = "sql.batched"  # statements that coalesced >1 traverser id
BATCH_IDS = "batch.size"  # total ids carried by those batched statements
FANOUT_PARALLEL = "fanout.parallel"  # fan-outs dispatched on the worker pool
VERTEX_TABLE_QUERIES = "structure.vertex_table_queries"
EDGE_TABLE_QUERIES = "structure.edge_table_queries"
TABLES_ELIMINATED = "structure.tables_eliminated"
VERTICES_FROM_EDGES = "structure.vertices_from_edges"
LAZY_VERTICES = "structure.lazy_vertices"
PHASE_TRANSLATE = "phase.translate_seconds"
PHASE_EXECUTE = "phase.execute_seconds"
PHASE_MATERIALIZE = "phase.materialize_seconds"
# Resilience counters (lock manager / retry / budgets / fault injection).
LOCK_WAITS = "lock.waits"
LOCK_DEADLOCKS = "lock.deadlocks"
SQL_ERRORS = "sql.errors"
RETRY_ATTEMPTS = "retry.attempts"
RETRY_EXHAUSTED = "retry.exhausted"
BUDGET_EXCEEDED = "budget.exceeded"
FAULTS_INJECTED = "fault.injected"
# Graph read cache (repro.cache) — each mirrors a 1:1 trace event.
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_EVICTIONS = "cache.evictions"
CACHE_INVALIDATIONS = "cache.invalidations"
CACHE_BYPASS_TXN = "cache.bypass_txn"
# Durability (repro.durability) — each mirrors a 1:1 trace event.
WAL_APPENDS = "wal.appends"
WAL_FLUSHES = "wal.flushes"
CHECKPOINTS_WRITTEN = "checkpoint.written"
RECOVERY_REPLAYED = "recovery.replayed"
RECOVERY_DISCARDED = "recovery.discarded"
# Service layer (repro.service) — each mirrors a 1:1 trace event; the
# queue-depth histogram is sampled once per admission (its count equals
# the number of ``service.queued`` events).
SERVICE_ADMITTED = "service.admitted"
SERVICE_REJECTED = "service.rejected"
SERVICE_SHED = "service.shed"
SERVICE_QUEUE_DEPTH = "service.queue_depth"
SERVICE_SESSIONS_OPENED = "service.session.open"
SERVICE_SESSIONS_CLOSED = "service.session.close"
# Bulk analytics engine (repro.analytics) — the step counter and the
# frontier-size histogram each mirror a 1:1 trace event (the histogram
# follows the service.queue_depth pattern: its observation count equals
# the number of ``frontier.size`` events).
ANALYTICS_STEPS = "analytics.step"
ANALYTICS_CONVERGED = "analytics.converged"
FRONTIER_SIZE = "frontier.size"
# Replication & failover (repro.replication) — each counter mirrors a
# 1:1 trace event; the replication-lag histogram follows the
# service.queue_depth pattern (its observation count equals the number
# of ``repl.lag`` events, one sample per processed ack).
REPL_SHIPPED = "repl.shipped"
REPL_APPLIED = "repl.applied"
REPL_ACKED = "repl.acked"
REPL_FENCED = "repl.fenced"
REPL_RETRANSMITS = "repl.retransmits"
REPL_READ_FALLTHROUGH = "repl.read.fallthrough"
FAILOVER_PROMOTIONS = "failover.promotions"
REPL_LAG = "repl.lag"


def eliminated_counter_name(rule: str) -> str:
    """Per-§6.3-rule elimination counter, e.g.
    ``structure.eliminated.label_values``."""
    return f"structure.eliminated.{rule}"
