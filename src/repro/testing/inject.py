"""Deliberate engine-bug injection for validating the conformance loop.

Each named bug is a context manager that monkeypatches one §6.3
translation rule into a *plausible but wrong* variant — the classic
mutation-testing check that the oracle + shrinker actually catch and
minimize real translation bugs.  Used by the runner's ``--inject-bug``
mode and the acceptance tests.

* ``label-elimination`` — ``OverlayGraph._candidate_vertex_tables``
  also eliminates column-label tables under a label filter (the paper
  explicitly warns that tables *without* fixed labels must always be
  searched).
* ``implicit-id-swap`` — ``ImplicitEdgeId.render`` emits
  ``dst::label::src``, so every implicit edge id the engine
  materializes is reversed.
* ``property-elimination`` — ``OverlayGraph._eliminate_by_properties``
  eliminates any table with more than one property column, dropping
  valid result tables from ``has()`` fan-outs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from ..core import graph_structure as _gs
from ..core import ids as _ids


def _bug_label_elimination() -> tuple[Any, str, Callable]:
    original = _gs.OverlayGraph._candidate_vertex_tables

    def _candidate_vertex_tables(self, pushdown, record=True):
        candidates, eliminated = original(self, pushdown, record)
        labels = _gs._label_values(pushdown)
        if self.opts.use_label_values and labels is not None:
            # BUG: column-label tables (fixed_label None) are dropped
            # too — the paper warns they must always be searched
            candidates = [v for v in candidates if v.fixed_label is not None]
        return candidates, eliminated

    return _gs.OverlayGraph, "_candidate_vertex_tables", _candidate_vertex_tables


def _bug_implicit_id_swap() -> tuple[Any, str, Callable]:
    def render(self, row):
        src = _ids._segment(self.src_template.render(row))
        dst = _ids._segment(self.dst_template.render(row))
        # BUG: segments joined destination-first
        return _ids.SEPARATOR.join([dst, self.label, src])

    return _ids.ImplicitEdgeId, "render", render


def _bug_property_elimination() -> tuple[Any, str, Callable]:
    original = _gs.OverlayGraph._eliminate_by_properties

    def _eliminate_by_properties(self, candidates, pushdown):
        survivors = original(self, candidates, pushdown)
        required = {
            key.lower() for key, _p in pushdown.predicates if not key.startswith("~")
        }
        if required:
            # BUG: over-aggressive — multi-property tables are eliminated
            survivors = [s for s in survivors if len(s.property_columns) <= 1]
        return survivors

    return _gs.OverlayGraph, "_eliminate_by_properties", _eliminate_by_properties


BUGS: dict[str, Callable[[], tuple[Any, str, Callable]]] = {
    "label-elimination": _bug_label_elimination,
    "implicit-id-swap": _bug_implicit_id_swap,
    "property-elimination": _bug_property_elimination,
}


@contextmanager
def injected_bug(name: str) -> Iterator[None]:
    """Temporarily install the named translation bug."""
    try:
        target, attribute, replacement = BUGS[name]()
    except KeyError:
        raise KeyError(f"unknown bug {name!r}; known: {sorted(BUGS)}") from None
    original = getattr(target, attribute)
    setattr(target, attribute, replacement)
    try:
        yield
    finally:
        setattr(target, attribute, original)
