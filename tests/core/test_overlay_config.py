"""Tests for overlay configuration parsing and validation (paper §5)."""

import json

import pytest

from repro.core.overlay import (
    EdgeTableConfig,
    LabelSpec,
    OverlayConfig,
    OverlayError,
    VertexTableConfig,
)

PAPER_JSON = """
{
  "v_tables": [
    {"table_name": "Patient", "prefixed_id": true, "id": "'patient'::patientID",
     "fix_label": true, "label": "'patient'",
     "properties": ["patientID", "name", "address", "subscriptionID"]},
    {"table_name": "Disease", "id": "diseaseID", "fix_label": true,
     "label": "'disease'", "properties": ["diseaseID", "conceptCode", "conceptName"]}
  ],
  "e_tables": [
    {"table_name": "DiseaseOntology", "src_v_table": "Disease", "src_v": "sourceID",
     "dst_v_table": "Disease", "dst_v": "targetID", "prefixed_edge_id": true,
     "id": "'ontology'::sourceID::targetID", "label": "type"},
    {"table_name": "HasDisease", "src_v_table": "Patient",
     "src_v": "'patient'::patientID", "dst_v_table": "Disease", "dst_v": "diseaseID",
     "implicit_edge_id": true, "fix_label": true, "label": "'hasDisease'"}
  ]
}
"""


class TestPaperConfig:
    def test_parses(self):
        config = OverlayConfig.from_json(PAPER_JSON)
        assert [v.table_name for v in config.v_tables] == ["Patient", "Disease"]
        assert [e.table_name for e in config.e_tables] == ["DiseaseOntology", "HasDisease"]

    def test_fixed_vs_column_labels(self):
        config = OverlayConfig.from_json(PAPER_JSON)
        assert config.vertex_table("Patient").label.constant == "patient"
        ontology = config.edge_table("DiseaseOntology")
        assert ontology.label.column == "type"
        assert not ontology.label.is_fixed

    def test_prefixed_flags(self):
        config = OverlayConfig.from_json(PAPER_JSON)
        assert config.vertex_table("Patient").prefixed_id is True
        assert config.vertex_table("Disease").prefixed_id is False
        assert config.edge_table("DiseaseOntology").prefixed_edge_id is True

    def test_properties_default_none_means_infer(self):
        config = OverlayConfig.from_json(PAPER_JSON)
        assert config.edge_table("HasDisease").properties is None
        assert config.vertex_table("Patient").properties == [
            "patientID", "name", "address", "subscriptionID",
        ]

    def test_json_roundtrip(self):
        config = OverlayConfig.from_json(PAPER_JSON)
        again = OverlayConfig.from_json(config.to_json())
        assert again.to_dict() == config.to_dict()

    def test_save_and_load(self, tmp_path):
        config = OverlayConfig.from_json(PAPER_JSON)
        path = tmp_path / "overlay.json"
        config.save(path)
        assert OverlayConfig.from_file(path).to_dict() == config.to_dict()


class TestValidation:
    def base(self):
        return json.loads(PAPER_JSON)

    def test_missing_required_key(self):
        data = self.base()
        del data["v_tables"][0]["id"]
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_missing_label(self):
        data = self.base()
        del data["v_tables"][0]["label"]
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_no_vertex_tables(self):
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict({"v_tables": [], "e_tables": []})

    def test_duplicate_vertex_table(self):
        data = self.base()
        data["v_tables"].append(dict(data["v_tables"][0]))
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_prefixed_id_requires_constant_prefix(self):
        data = self.base()
        data["v_tables"][1]["prefixed_id"] = True  # id is bare "diseaseID"
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_implicit_edge_id_excludes_explicit(self):
        data = self.base()
        data["e_tables"][1]["id"] = "'x'::patientID"
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_edge_needs_some_id(self):
        data = self.base()
        del data["e_tables"][0]["id"]
        data["e_tables"][0]["prefixed_edge_id"] = False
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_implicit_id_requires_fixed_label(self):
        data = self.base()
        data["e_tables"][0]["implicit_edge_id"] = True
        del data["e_tables"][0]["id"]
        data["e_tables"][0]["prefixed_edge_id"] = False
        # DiseaseOntology has a column label -> invalid
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_src_v_table_must_be_vertex_table(self):
        data = self.base()
        data["e_tables"][1]["src_v_table"] = "Nowhere"
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_endpoint_spec_must_match_vertex_id_shape(self):
        # paper: "the source/destination vertex id definition has to
        # match exactly with the id definition of the corresponding
        # vertex table"
        data = self.base()
        data["e_tables"][1]["src_v"] = "patientID"  # missing the 'patient' prefix
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)

    def test_matching_spec_with_different_column_name_ok(self):
        # DiseaseOntology.sourceID matches Disease.diseaseID (both one
        # bare column) despite different column names — paper example
        OverlayConfig.from_json(PAPER_JSON)

    def test_same_table_as_multiple_edge_tables_needs_config_name(self):
        data = self.base()
        clone = dict(data["e_tables"][1])
        data["e_tables"].append(clone)
        with pytest.raises(OverlayError):
            OverlayConfig.from_dict(data)
        clone["config_name"] = "second"
        OverlayConfig.from_dict(data)  # now fine


class TestLabelSpec:
    def test_quoted_is_constant(self):
        spec = LabelSpec.parse("'person'", fixed=False)
        assert spec.constant == "person"

    def test_unquoted_with_fix_label_is_constant(self):
        spec = LabelSpec.parse("person", fixed=True)
        assert spec.constant == "person"

    def test_unquoted_without_fix_is_column(self):
        spec = LabelSpec.parse("type", fixed=False)
        assert spec.column == "type"
        assert not spec.is_fixed

    def test_spec_rendering(self):
        assert LabelSpec(constant="x").spec() == "'x'"
        assert LabelSpec(column="c").spec() == "c"
