"""Engine fixtures and latency measurement.

``build_engines`` constructs all three systems over the *same*
LinkBench dataset — Db2 Graph on the relational tables, the baselines
on their own storage — so every benchmark queries identical data.
Engine construction is cached per (scale, seed) within a process
because dataset generation and loading dominate benchmark setup.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..baselines.janus import JanusLikeStore
from ..baselines.kvstore import DiskModel
from ..baselines.native import NativeGraphStore
from ..core.db2graph import Db2Graph
from ..obs import metrics as M
from ..graph.traversal import GraphTraversalSource
from ..relational.database import Database
from ..workloads.linkbench import LinkBenchConfig, LinkBenchDataset, LinkBenchWorkload

# Cache capacity chosen between the small and large datasets' record
# counts, reproducing Fig. 5's "fits in cache" vs "doesn't" regimes
# (paper: 10M dataset cached entirely, 100M's 327GB could not be).
NATIVE_CACHE_RECORDS = 40_000
JANUS_CACHE_BLOBS = 8_000


@dataclass
class EngineUnderTest:
    name: str
    traversal: Callable[[], GraphTraversalSource]
    # exclusive-lock hold time accessor (serial fraction measurement)
    serial_seconds: Callable[[], float] = lambda: 0.0
    close: Callable[[], None] = lambda: None
    raw: Any = None


@dataclass
class BenchSetup:
    dataset: LinkBenchDataset
    workload: LinkBenchWorkload
    database: Database
    db2graph: Db2Graph
    engines: list[EngineUnderTest]


_setup_cache: dict[tuple, BenchSetup] = {}


def build_engines(
    config: LinkBenchConfig,
    include_baselines: bool = True,
    disk_read_latency: float = 100e-6,
    optimized: bool = True,
) -> BenchSetup:
    key = (
        config.name,
        config.n_vertices,
        config.seed,
        include_baselines,
        disk_read_latency,
        optimized,
    )
    if key in _setup_cache:
        return _setup_cache[key]

    dataset = LinkBenchDataset(config)
    database = Database(enforce_foreign_keys=False)
    dataset.install_relational(database)
    db2graph = Db2Graph.open(database, dataset.overlay_config(), optimized=optimized)

    engines: list[EngineUnderTest] = [
        EngineUnderTest(
            name="Db2 Graph",
            traversal=db2graph.traversal,
            serial_seconds=lambda: _relational_serial_seconds(database),
            raw=db2graph,
        )
    ]
    if include_baselines:
        disk = DiskModel(read_latency_seconds=disk_read_latency)
        native = NativeGraphStore(cache_records=NATIVE_CACHE_RECORDS, disk_model=disk)
        dataset.load_into_store(native)
        native.open_graph(prefetch=True)
        engines.append(
            EngineUnderTest(
                name="GDB-X",
                traversal=lambda: GraphTraversalSource(native),
                serial_seconds=native.serialization_lock_seconds,
                close=native.close,
                raw=native,
            )
        )
        janus = JanusLikeStore(
            cache_blobs=JANUS_CACHE_BLOBS,
            disk_model=DiskModel(read_latency_seconds=disk_read_latency),
        )
        dataset.load_into_store(janus)
        janus.open_graph()
        engines.append(
            EngineUnderTest(
                name="JanusGraph",
                traversal=lambda: GraphTraversalSource(janus),
                serial_seconds=janus.serialization_lock_seconds,
                close=janus.close,
                raw=janus,
            )
        )

    setup = BenchSetup(
        dataset=dataset,
        workload=LinkBenchWorkload(dataset),
        database=database,
        db2graph=db2graph,
        engines=engines,
    )
    _setup_cache[key] = setup
    return setup


def _relational_serial_seconds(database: Database) -> float:
    total = database.statement_cache.lock_held_seconds
    for table in database.catalog.tables():
        total += table.lock.exclusive_held_seconds
    return total


# Phase labels -> MetricsRegistry histogram names (SQL Dialect lifecycle:
# Gremlin step -> SQL text, engine execution, row -> graph element).
PHASE_METRICS = {
    "translate": M.PHASE_TRANSLATE,
    "execute": M.PHASE_EXECUTE,
    "materialize": M.PHASE_MATERIALIZE,
}


@dataclass
class LatencyResult:
    engine: str
    query: str
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    samples: int
    # Aggregate seconds spent per SQL-dialect phase across the measured
    # iterations (Db2 Graph only, populated by measure_latency(phases=True)).
    phases: dict[str, float] | None = None

    @property
    def mean_ms(self) -> float:
        return self.mean_seconds * 1e3


def measure_latency(
    engine: EngineUnderTest,
    workload: LinkBenchWorkload,
    kind: str,
    iterations: int = 200,
    warmup: int = 20,
    phases: bool = False,
) -> LatencyResult:
    graph = engine.raw if isinstance(engine.raw, Db2Graph) else None
    calls = [workload.sample(kind) for _ in range(warmup + iterations)]
    for call in calls[:warmup]:
        call.run(engine.traversal())
    phase_before: dict[str, float] = {}
    if phases and graph is not None:
        graph.enable_phase_timing()
        phase_before = {
            label: graph.registry.histogram(name).total
            for label, name in PHASE_METRICS.items()
        }
    timings: list[float] = []
    for call in calls[warmup:]:
        g = engine.traversal()
        start = time.perf_counter()
        call.run(g)
        timings.append(time.perf_counter() - start)
    phase_totals: dict[str, float] | None = None
    if phases and graph is not None:
        phase_totals = {
            label: graph.registry.histogram(name).total - phase_before[label]
            for label, name in PHASE_METRICS.items()
        }
        graph.enable_phase_timing(False)
    timings.sort()
    return LatencyResult(
        engine=engine.name,
        query=kind,
        mean_seconds=statistics.fmean(timings),
        p50_seconds=timings[len(timings) // 2],
        p95_seconds=timings[int(len(timings) * 0.95)],
        samples=len(timings),
        phases=phase_totals,
    )


def clear_engine_cache() -> None:
    for setup in _setup_cache.values():
        for engine in setup.engines:
            engine.close()
    _setup_cache.clear()
