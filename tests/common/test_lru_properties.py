"""Property tests for :class:`repro.common.lru.LruCache`.

These complement ``test_lru.py``'s capacity/recency properties with a
full model-based check (every op compared against a reference
OrderedDict), the eviction-report contract of ``put`` that the graph
read cache's eviction counters rely on, exact hit/miss accounting, and
a multi-thread ``get_or_load`` stampede.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.lru import LruCache

# op := ("put", key, value) | ("get", key) | ("invalidate", key)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 15), st.integers()),
        st.tuples(st.just("get"), st.integers(0, 15)),
        st.tuples(st.just("invalidate"), st.integers(0, 15)),
    ),
    max_size=300,
)


@given(_ops, st.integers(1, 6))
def test_property_matches_reference_model(ops, capacity):
    """The cache agrees with a straight-line OrderedDict model on
    residency, values, recency order, and which keys each put evicts."""
    cache = LruCache(capacity=capacity)
    model: OrderedDict = OrderedDict()
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            if key in model:
                model.move_to_end(key)
            model[key] = value
            expected_evicted = []
            while len(model) > capacity:
                victim, _ = model.popitem(last=False)
                expected_evicted.append(victim)
            assert cache.put(key, value) == expected_evicted
        elif op[0] == "get":
            _, key = op
            expected = model.get(key)
            if key in model:
                model.move_to_end(key)
            assert cache.get(key) == expected
        else:
            _, key = op
            model.pop(key, None)
            cache.invalidate(key)
        assert cache.keys() == list(model.keys())


@given(_ops, st.integers(1, 6))
def test_property_eviction_accounting_is_exact(ops, capacity):
    """``evictions`` equals the total number of keys ever reported
    evicted by ``put``, and a reported victim is no longer resident."""
    cache = LruCache(capacity=capacity)
    reported = 0
    for op in ops:
        if op[0] != "put":
            continue
        _, key, value = op
        evicted = cache.put(key, value)
        reported += len(evicted)
        for victim in evicted:
            assert victim not in cache
        assert len(set(evicted)) == len(evicted)
    assert cache.evictions == reported


@given(_ops)
def test_property_hit_miss_accounting(ops):
    """hits + misses == number of reads; hits are exactly the reads of
    then-resident keys."""
    cache = LruCache(capacity=8)
    resident: OrderedDict = OrderedDict()
    expected_hits = expected_misses = 0
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            if key in resident:
                resident.move_to_end(key)
            resident[key] = value
            while len(resident) > 8:
                resident.popitem(last=False)
            cache.put(key, value)
        elif op[0] == "get":
            _, key = op
            if key in resident:
                expected_hits += 1
                resident.move_to_end(key)
            else:
                expected_misses += 1
            cache.get(key)
        else:
            _, key = op
            resident.pop(key, None)
            cache.invalidate(key)
    assert cache.hits == expected_hits
    assert cache.misses == expected_misses


@given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_property_get_or_load_loads_each_resident_key_once(keys):
    cache = LruCache(capacity=None)
    loads: list[int] = []

    def loader(key):
        loads.append(key)
        return key * 10

    for key in keys:
        assert cache.get_or_load(key, loader) == key * 10
    assert sorted(loads) == sorted(set(keys))
    assert cache.hits == len(keys) - len(set(keys))
    assert cache.misses == len(set(keys))


@pytest.mark.stress
@settings(deadline=None, max_examples=10)
@given(st.integers(0, 2**32 - 1))
def test_property_get_or_load_stampede_loads_once_per_key(seed):
    """8 threads hammer the same key set through ``get_or_load``; the
    loader must run exactly once per key (the loader runs inside the
    stripe lock), every thread must observe the loaded value, and the
    hit/miss tally must equal the number of lookups — nothing lost to
    races."""
    import random

    rng = random.Random(seed)
    universe = list(range(25))
    n_threads, rounds = 8, 60
    cache = LruCache(capacity=None)
    load_counts: dict[int, int] = {}
    count_lock = threading.Lock()

    def loader(key):
        with count_lock:
            load_counts[key] = load_counts.get(key, 0) + 1
        return key * 7

    schedules = [
        [rng.choice(universe) for _ in range(rounds)] for _ in range(n_threads)
    ]
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def worker(schedule):
        try:
            barrier.wait()
            for key in schedule:
                assert cache.get_or_load(key, loader) == key * 7
        except BaseException as exc:  # noqa: BLE001 — surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in schedules]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
        assert not t.is_alive(), "stampede thread wedged"
    assert not errors, errors[:3]
    touched = {key for schedule in schedules for key in schedule}
    assert set(load_counts) == touched
    assert all(count == 1 for count in load_counts.values()), load_counts
    assert cache.misses == len(touched)
    assert cache.hits == n_threads * rounds - len(touched)
