"""Integration tests for INSERT/UPDATE/DELETE and DDL, including
constraint enforcement (PK, NOT NULL, UNIQUE, FK restrict)."""

import pytest

from repro.relational import (
    CatalogError,
    ConstraintViolationError,
    Database,
)


class TestInsert:
    def test_insert_and_rowcount(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR)")
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_insert_with_column_list(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR, c INT)")
        db.execute("INSERT INTO t (c, a) VALUES (3, 1)")
        assert db.execute("SELECT a, b, c FROM t").rows == [(1, None, 3)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INT)")
        db.execute("CREATE TABLE dst (a INT)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        db.execute("INSERT INTO dst SELECT a FROM src WHERE a > 1")
        assert db.execute("SELECT COUNT(*) FROM dst").scalar() == 2

    def test_insert_with_params(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR)")
        db.execute("INSERT INTO t VALUES (?, ?)", [7, "seven"])
        assert db.execute("SELECT * FROM t").rows == [(7, "seven")]

    def test_type_coercion_on_insert(self, db):
        db.execute("CREATE TABLE t (a INT, b DOUBLE)")
        db.execute("INSERT INTO t VALUES ('5', 2)")
        assert db.execute("SELECT * FROM t").rows == [(5, 2.0)]

    def test_wrong_arity_rejected(self, db):
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_primary_key_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_primary_key_null_rejected(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (NULL)")

    def test_not_null_enforced(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR NOT NULL)")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (1, NULL)")

    def test_unique_constraint(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, email VARCHAR, UNIQUE (email))")
        db.execute("INSERT INTO t VALUES (1, 'x@y')")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (2, 'x@y')")
        # NULL never violates a (non-PK) unique constraint
        db.execute("INSERT INTO t VALUES (3, NULL)")
        db.execute("INSERT INTO t VALUES (4, NULL)")

    def test_failed_multi_row_insert_is_atomic(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (2), (1), (3)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


class TestForeignKeys:
    def test_fk_insert_enforced(self, people_db):
        with pytest.raises(ConstraintViolationError):
            people_db.execute("INSERT INTO knows VALUES (99, 1, 2020)")

    def test_fk_null_allowed(self, people_db):
        people_db.execute("INSERT INTO knows VALUES (NULL, 1, 2020)")

    def test_fk_delete_restricted(self, people_db):
        with pytest.raises(ConstraintViolationError):
            people_db.execute("DELETE FROM person WHERE id = 1")

    def test_delete_unreferenced_row_ok(self, people_db):
        people_db.execute("DELETE FROM person WHERE id = 5")  # barbara: no edges
        assert people_db.execute("SELECT COUNT(*) FROM person").scalar() == 4

    def test_fk_update_of_referenced_key_restricted(self, people_db):
        with pytest.raises(ConstraintViolationError):
            people_db.execute("UPDATE person SET id = 100 WHERE id = 1")

    def test_update_nonkey_column_of_referenced_row_ok(self, people_db):
        people_db.execute("UPDATE person SET city = 'cambridge' WHERE id = 1")

    def test_fk_enforcement_can_be_disabled(self):
        db = Database(enforce_foreign_keys=False)
        db.execute("CREATE TABLE p (id INT PRIMARY KEY)")
        db.execute("CREATE TABLE c (p_id INT, FOREIGN KEY (p_id) REFERENCES p (id))")
        db.execute("INSERT INTO c VALUES (42)")  # dangling, but allowed

    def test_fk_referencing_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE c (x INT, FOREIGN KEY (x) REFERENCES nope (id))")


class TestUpdateDelete:
    def test_update_with_where(self, people_db):
        count = people_db.execute(
            "UPDATE person SET city = 'oxford' WHERE city = 'london'"
        ).rowcount
        assert count == 2
        assert people_db.execute(
            "SELECT COUNT(*) FROM person WHERE city = 'oxford'"
        ).scalar() == 2

    def test_update_expression_uses_old_values(self, people_db):
        people_db.execute("UPDATE person SET age = age + 1 WHERE id = 1")
        assert people_db.execute("SELECT age FROM person WHERE id = 1").scalar() == 37

    def test_update_everything(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("UPDATE t SET a = 0").rowcount == 2

    def test_delete_with_where(self, people_db):
        count = people_db.execute("DELETE FROM knows WHERE since < 1960").rowcount
        assert count == 2
        assert people_db.execute("SELECT COUNT(*) FROM knows").scalar() == 2

    def test_update_pk_to_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        with pytest.raises(ConstraintViolationError):
            db.execute("UPDATE t SET a = 1 WHERE a = 2")

    def test_index_reflects_update(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR)")
        db.execute("CREATE INDEX idx_b ON t (b)")
        db.execute("INSERT INTO t VALUES (1, 'old')")
        db.execute("UPDATE t SET b = 'new' WHERE a = 1")
        assert db.execute("SELECT a FROM t WHERE b = 'new'").rows == [(1,)]
        assert db.execute("SELECT a FROM t WHERE b = 'old'").rows == []


class TestDdl:
    def test_duplicate_table_rejected(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (b INT)")

    def test_drop_table(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM t")

    def test_drop_if_exists_is_silent(self, db):
        db.execute("DROP TABLE IF EXISTS nothing")
        db.execute("DROP VIEW IF EXISTS nothing")
        db.execute("DROP INDEX IF EXISTS nothing")

    def test_drop_referenced_table_rejected(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute("DROP TABLE person")

    def test_create_drop_index(self, people_db):
        people_db.execute("CREATE INDEX i ON person (city)")
        assert people_db.catalog.has_index("i")
        people_db.execute("DROP INDEX i")
        assert not people_db.catalog.has_index("i")

    def test_duplicate_index_rejected(self, people_db):
        people_db.execute("CREATE INDEX i ON person (city)")
        with pytest.raises(CatalogError):
            people_db.execute("CREATE INDEX i ON person (age)")

    def test_index_on_unknown_column_rejected(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute("CREATE INDEX i2 ON person (nope)")

    def test_unique_index_enforces(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CREATE UNIQUE INDEX u ON t (a)")
        with pytest.raises(ConstraintViolationError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_ddl_bumps_generation(self, db):
        before = db.ddl_generation
        db.execute("CREATE TABLE t (a INT)")
        assert db.ddl_generation > before


class TestAlterTable:
    def test_add_column_pads_existing_rows(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, a VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("ALTER TABLE t ADD COLUMN b INT")
        assert db.execute("SELECT * FROM t").rows == [(1, "x", None)]

    def test_insert_and_update_new_column(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("ALTER TABLE t ADD b INT")
        db.execute("INSERT INTO t VALUES (2, 5)")
        db.execute("UPDATE t SET b = 9 WHERE id = 1")
        assert sorted(db.execute("SELECT id, b FROM t").rows) == [(1, 9), (2, 5)]

    def test_indexes_survive_alter(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, a VARCHAR)")
        db.execute("CREATE INDEX idx_a ON t (a)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("ALTER TABLE t ADD b INT")
        assert db.execute("SELECT id FROM t WHERE a = 'x'").rows == [(1,)]
        assert db.execute("SELECT id FROM t WHERE id = 1").rows == [(1,)]

    def test_duplicate_column_rejected(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, a VARCHAR)")
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE t ADD a INT")

    def test_alter_invalidates_prepared_plans(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        conn = db.connect()
        ps = conn.prepare("SELECT * FROM t")
        assert ps.execute(conn, []).rows == [(1,)]
        db.execute("ALTER TABLE t ADD b INT")
        assert ps.execute(conn, []).rows == [(1, None)]

    def test_history_visible_after_alter(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, a VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'old')")
        db.execute("ALTER TABLE t ADD b INT")
        db.execute("UPDATE t SET a = 'new', b = 1 WHERE id = 1")
        assert db.execute("SELECT a, b FROM t").rows == [("new", 1)]

    def test_graph_auto_refresh_sees_new_column(self, db):
        from repro.core import Db2Graph

        db.execute("CREATE TABLE t (id INT PRIMARY KEY, a VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        overlay = {
            "v_tables": [{"table_name": "t", "id": "id", "fix_label": True, "label": "'t'"}],
            "e_tables": [],
        }
        graph = Db2Graph.open(db, overlay, auto_refresh=True)
        assert graph.traversal().V(1).next().keys() == ["a"]
        db.execute("ALTER TABLE t ADD c VARCHAR")
        db.execute("UPDATE t SET c = 'fresh' WHERE id = 1")
        assert graph.traversal().V(1).values("c").toList() == ["fresh"]
