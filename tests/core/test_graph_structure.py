"""Tests for the Graph Structure module: overlay-backed traversal
semantics and each §6.3 data-dependent runtime optimization, verified
through both results and SQL/table-access counters."""

import pytest

from repro.core import Db2Graph, RuntimeOptimizations
from repro.graph import P, __
from tests.conftest import HEALTHCARE_TINY_OVERLAY


@pytest.fixture
def graph(paper_graph):
    return paper_graph


class TestBasicSemantics:
    def test_vertex_counts_by_label(self, graph):
        g = graph.traversal()
        assert g.V().count().next() == 7
        assert g.V().hasLabel("patient").count().next() == 3
        assert g.V().hasLabel("disease").count().next() == 4

    def test_edge_counts(self, graph):
        g = graph.traversal()
        assert g.E().count().next() == 6
        assert g.E().hasLabel("hasDisease").count().next() == 3
        assert g.E().hasLabel("isa").count().next() == 3

    def test_vertex_ids(self, graph):
        g = graph.traversal()
        assert g.V("patient::1").next().value("name") == "Alice"
        assert g.V(10).next().value("conceptName") == "diabetes"

    def test_edge_by_implicit_id(self, graph):
        g = graph.traversal()
        edge = g.E("patient::1::hasDisease::11").next()
        assert edge.value("description") == "dx 2019"

    def test_edge_by_prefixed_id(self, graph):
        g = graph.traversal()
        edge = g.E("ontology::11::10").next()
        assert edge.label == "isa"

    def test_out_in_traversal(self, graph):
        g = graph.traversal()
        assert g.V("patient::1").out("hasDisease").values("conceptName").toList() == [
            "type 2 diabetes"
        ]
        assert sorted(
            v.value("patientID") for v in g.V(10).in_("hasDisease")
        ) == [2]

    def test_multi_hop_ontology(self, graph):
        g = graph.traversal()
        roots = g.V("patient::1").out("hasDisease").out("isa").out("isa").toList()
        assert [v.value("conceptName") for v in roots] == ["metabolic disease"]

    def test_both_direction(self, graph):
        g = graph.traversal()
        neighbors = g.V(10).both().toList()
        # in: 11 isa 10, 13 isa 10, patient2 hasDisease 10; out: 10 isa 12
        assert len(neighbors) == 4

    def test_edge_endpoints(self, graph):
        g = graph.traversal()
        assert g.V("patient::1").outE("hasDisease").inV().next().id == 11
        assert g.V("patient::1").outE("hasDisease").outV().next().id == "patient::1"

    def test_property_predicates(self, graph):
        g = graph.traversal()
        assert g.V().has("conceptName", P.within("diabetes", "nope")).count().next() == 1

    def test_column_label_edges(self, graph):
        g = graph.traversal()
        labels = {e.label for e in g.E().toList()}
        assert labels == {"hasDisease", "isa"}

    def test_updates_visible_immediately(self, graph):
        g = graph.traversal()
        graph.connection.database.execute(
            "INSERT INTO HasDisease VALUES (1, 13, 'new dx')"
        )
        assert g.V("patient::1").out("hasDisease").count().next() == 2

    def test_results_identical_with_all_optimizations_off(self, paper_db):
        fast = Db2Graph.open(paper_db, HEALTHCARE_TINY_OVERLAY)
        slow = Db2Graph.open(
            paper_db,
            HEALTHCARE_TINY_OVERLAY,
            optimized=False,
            runtime_opts=RuntimeOptimizations.all_off(),
        )
        probes = [
            lambda g: sorted(g.V().values("name").toList()),
            lambda g: g.V().count().next(),
            lambda g: g.E().count().next(),
            lambda g: sorted(v.id for v in g.V("patient::1").out("hasDisease")),
            lambda g: sorted(e.id for e in g.V(10).inE()),
            lambda g: g.V(11).out("isa").out("isa").values("conceptName").toList(),
            lambda g: g.V().hasLabel("patient").has("name", "Bob").count().next(),
        ]
        for probe in probes:
            assert probe(fast.traversal()) == probe(slow.traversal())


class TestLabelElimination:
    def test_fixed_label_narrows_tables(self, graph):
        graph.provider.stats.reset()
        graph.traversal().V().hasLabel("patient").toList()
        assert graph.provider.stats.vertex_table_queries == 1

    def test_without_opt_queries_all_tables(self, paper_db):
        opts = RuntimeOptimizations.all_off()
        slow = Db2Graph.open(paper_db, HEALTHCARE_TINY_OVERLAY, runtime_opts=opts)
        slow.provider.stats.reset()
        slow.traversal().V().hasLabel("patient").toList()
        assert slow.provider.stats.vertex_table_queries == 2

    def test_column_label_table_still_searched(self, graph):
        graph.provider.stats.reset()
        edges = graph.traversal().E().hasLabel("isa").toList()
        assert len(edges) == 3
        # DiseaseOntology has no fixed label: must be searched; the
        # fixed-label HasDisease table is eliminated
        assert graph.provider.stats.edge_table_queries == 1


class TestPropertyNameElimination:
    def test_predicate_on_missing_property_eliminates_table(self, graph):
        graph.provider.stats.reset()
        graph.traversal().V().has("conceptCode", "D10").toList()
        assert graph.provider.stats.vertex_table_queries == 1

    def test_projection_eliminates_tables_lacking_all_keys(self, graph):
        graph.provider.stats.reset()
        names = graph.traversal().V().values("conceptName").toList()
        assert len(names) == 4
        assert graph.provider.stats.vertex_table_queries == 1


class TestPrefixedIdPinning:
    def test_prefixed_id_queries_one_table(self, graph):
        graph.provider.stats.reset()
        graph.traversal().V("patient::1").toList()
        assert graph.provider.stats.vertex_table_queries == 1

    def test_unprefixed_id_skips_prefixed_tables(self, graph):
        graph.provider.stats.reset()
        graph.traversal().V(10).toList()
        # Disease id is a bare column; Patient is prefixed and can't match
        assert graph.provider.stats.vertex_table_queries == 1

    def test_composite_id_decomposed_into_conjuncts(self, graph):
        graph.dialect.log = []
        graph.traversal().E("ontology::11::10").toList()
        ontology_sql = [s for s in graph.dialect.log if "DiseaseOntology" in s]
        assert any("sourceID = ?" in s and "targetID = ?" in s for s in ontology_sql)
        graph.dialect.log = None


class TestImplicitEdgeIds:
    def test_label_in_id_narrows_edge_tables(self, graph):
        graph.provider.stats.reset()
        graph.traversal().E("patient::1::hasDisease::11").toList()
        assert graph.provider.stats.edge_table_queries == 1

    def test_wrong_label_in_id_finds_nothing(self, graph):
        assert graph.traversal().E("patient::1::wrongLabel::11").toList() == []


class TestSrcDstTables:
    def test_adjacency_skips_mismatched_edge_tables(self, graph):
        graph.provider.stats.reset()
        graph.traversal().V("patient::1").outE().toList()
        # patient vertices can only source HasDisease (src_v_table), and
        # the prefixed id cannot decode under DiseaseOntology's src spec
        assert graph.provider.stats.edge_table_queries == 1

    def test_lazy_endpoint_vertices_carry_table_hint(self, graph):
        edge = graph.traversal().V("patient::1").outE("hasDisease").next()
        assert edge.in_v_table == "Disease"
        assert edge.out_v_table == "Patient"

    def test_endpoint_loads_via_hint(self, graph):
        graph.provider.stats.reset()
        vertex = graph.traversal().V("patient::1").outE("hasDisease").inV().next()
        assert vertex.value("conceptName") == "type 2 diabetes"
        # materializing the lazy vertex queried exactly one table
        assert graph.provider.stats.vertex_table_queries == 1


class TestVertexFromEdge:
    @pytest.fixture
    def fact_graph(self, db):
        db.execute(
            "CREATE TABLE orders (orderID BIGINT PRIMARY KEY, customerID BIGINT, note VARCHAR)"
        )
        db.execute("CREATE TABLE customer (customerID BIGINT PRIMARY KEY, name VARCHAR)")
        db.execute("INSERT INTO customer VALUES (1, 'c1'), (2, 'c2')")
        db.execute("INSERT INTO orders VALUES (100, 1, 'first'), (101, 2, 'second')")
        overlay = {
            "v_tables": [
                {"table_name": "orders", "prefixed_id": True, "id": "'o'::orderID",
                 "fix_label": True, "label": "'order'", "properties": ["note"]},
                {"table_name": "customer", "prefixed_id": True, "id": "'c'::customerID",
                 "fix_label": True, "label": "'customer'"},
            ],
            "e_tables": [
                {"table_name": "orders", "src_v_table": "orders", "src_v": "'o'::orderID",
                 "dst_v_table": "customer", "dst_v": "'c'::customerID",
                 "implicit_edge_id": True, "fix_label": True, "label": "'placedBy'"},
            ],
        }
        return Db2Graph.open(db, overlay)

    def test_vertex_built_from_edge_row_without_sql(self, fact_graph):
        g = fact_graph.traversal()
        edges = g.E().hasLabel("placedBy").toList()
        fact_graph.dialect.stats.reset()
        fact_graph.provider.stats.reset()
        for edge in edges:
            vertex = next(fact_graph.provider.edge_vertex(edge, __import__("repro.graph.model", fromlist=["Direction"]).Direction.OUT))
            assert vertex.label == "order"
            assert vertex.is_materialized
        assert fact_graph.dialect.stats.queries_issued == 0
        assert fact_graph.provider.stats.vertices_from_edges == len(edges)

    def test_disabled_falls_back_to_lazy(self, fact_graph, db):
        slow = Db2Graph.open(
            db,
            fact_graph.topology.config,
            runtime_opts=RuntimeOptimizations(use_vertex_from_edge=False),
        )
        g = slow.traversal()
        result = g.E().hasLabel("placedBy").outV().values("note").toList()
        assert sorted(result) == ["first", "second"]
        assert slow.provider.stats.vertices_from_edges == 0


class TestAggregatesAcrossTables:
    @pytest.fixture
    def two_table_graph(self, db):
        db.execute("CREATE TABLE ta (id INT PRIMARY KEY, score INT)")
        db.execute("CREATE TABLE tb (id INT PRIMARY KEY, score INT)")
        db.execute("INSERT INTO ta VALUES (1, 10), (2, 20)")
        db.execute("INSERT INTO tb VALUES (10, 30), (11, NULL)")
        overlay = {
            "v_tables": [
                {"table_name": "ta", "prefixed_id": True, "id": "'a'::id",
                 "fix_label": True, "label": "'a'", "properties": ["score"]},
                {"table_name": "tb", "prefixed_id": True, "id": "'b'::id",
                 "fix_label": True, "label": "'b'", "properties": ["score"]},
            ],
            "e_tables": [],
        }
        overlay["e_tables"] = []
        from repro.core import OverlayConfig

        config = OverlayConfig.from_dict(overlay)
        return Db2Graph.open(db, config)

    def test_count_sums_over_tables(self, two_table_graph):
        assert two_table_graph.traversal().V().count().next() == 4

    def test_sum_over_tables(self, two_table_graph):
        assert two_table_graph.traversal().V().values("score").sum_().next() == 60

    def test_mean_over_tables_weighted_correctly(self, two_table_graph):
        # (10+20+30) / 3 non-null values, NOT the mean of per-table means
        assert two_table_graph.traversal().V().values("score").mean().next() == pytest.approx(20.0)

    def test_min_max_over_tables(self, two_table_graph):
        assert two_table_graph.traversal().V().values("score").min_().next() == 10
        assert two_table_graph.traversal().V().values("score").max_().next() == 30
