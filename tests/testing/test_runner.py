"""The sweep CLI: exit codes, budget handling, artifact output."""

from __future__ import annotations

import pytest

from repro.testing.runner import main


def test_clean_sweep_exits_zero(capsys):
    assert main(["--seeds", "10", "--quiet"]) == 0


def test_progress_output(capsys):
    assert main(["--seeds", "30"]) == 0
    out = capsys.readouterr().out
    assert "25 seeds conformant" in out
    assert "OK:" in out


def test_budget_stops_early(capsys):
    assert main(["--seeds", "100000", "--budget", "0.2s"]) == 0
    assert "budget exhausted" in capsys.readouterr().out


def test_injected_bug_mode_exits_zero_when_caught(tmp_path, capsys):
    artifact = tmp_path / "repro.txt"
    code = main(
        ["--inject-bug", "implicit-id-swap", "--seeds", "40",
         "--artifact", str(artifact)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "CAUGHT" in out
    assert artifact.exists()
    text = artifact.read_text()
    assert "CREATE TABLE" in text and "run_scenario" in text


def test_injected_bug_mode_exits_one_when_missed(capsys):
    # one seed is (deliberately) not enough to catch this bug
    code = main(["--inject-bug", "label-elimination", "--seeds", "1", "--quiet"])
    assert code == 1
