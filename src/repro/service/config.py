"""Service configuration and environment knobs.

``REPRO_SERVICE_SESSIONS`` caps concurrently-open logical sessions and
``REPRO_SERVICE_QUEUE`` bounds the admission queue, mirroring the
``REPRO_PARALLELISM``/``REPRO_BATCH_SIZE`` convention of the fan-out
layer: explicit arguments win, then the environment, then defaults.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

SESSIONS_ENV = "REPRO_SERVICE_SESSIONS"
QUEUE_ENV = "REPRO_SERVICE_QUEUE"

DEFAULT_MAX_SESSIONS = 64
DEFAULT_QUEUE_DEPTH = 256
DEFAULT_WORKERS = 4


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError:
        return fallback


def resolve_max_sessions(max_sessions: int | None) -> int:
    """Explicit argument, else ``REPRO_SERVICE_SESSIONS``, else 64."""
    if max_sessions is None:
        max_sessions = _env_int(SESSIONS_ENV, DEFAULT_MAX_SESSIONS)
    return max(1, int(max_sessions))


def resolve_queue_depth(queue_depth: int | None) -> int:
    """Explicit argument, else ``REPRO_SERVICE_QUEUE``, else 256."""
    if queue_depth is None:
        queue_depth = _env_int(QUEUE_ENV, DEFAULT_QUEUE_DEPTH)
    return max(1, int(queue_depth))


@dataclass
class ServiceConfig:
    """Knobs for one :class:`~repro.service.GraphService`.

    * ``max_sessions`` — concurrently-open logical sessions
      (``None`` = ``REPRO_SERVICE_SESSIONS`` or 64).
    * ``queue_depth`` — admission-queue bound (``None`` =
      ``REPRO_SERVICE_QUEUE`` or 256); a full queue rejects with
      :class:`~repro.service.errors.AdmissionRejectedError`.
    * ``workers`` — dispatch worker threads (the shared
      :class:`~repro.core.fanout.FanoutPool`'s size).
    * ``default_retry_after`` — backpressure hint before any request
      has completed (no service-time average exists yet).
    * ``clock`` — injectable monotonic clock; queue timestamps and
      deadline shedding read it, so tests advance time manually.
    """

    max_sessions: int | None = None
    queue_depth: int | None = None
    workers: int = DEFAULT_WORKERS
    default_retry_after: float = 0.05
    clock: Callable[[], float] = field(default=time.monotonic)

    def resolved_max_sessions(self) -> int:
        return resolve_max_sessions(self.max_sessions)

    def resolved_queue_depth(self) -> int:
        return resolve_queue_depth(self.queue_depth)
