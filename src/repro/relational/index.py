"""Secondary indexes: hash (equality) and sorted (range).

Index entries map a key tuple to the set of rowids whose *some* version
carried that key.  Because rows are multi-versioned, an index probe is
a superset: the executor re-checks the visible version's actual column
values after the probe ("index post-verification").  This keeps index
maintenance trivial under MVCC while remaining correct.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Sequence

from .errors import CatalogError


class Index:
    """Base index over ``columns`` of one table."""

    kind = "abstract"

    def __init__(self, name: str, table_name: str, columns: Sequence[str], unique: bool = False):
        if not columns:
            raise CatalogError("index requires at least one column")
        self.name = name
        self.table_name = table_name
        self.columns = tuple(columns)
        self.unique = unique
        self.probes = 0

    def add(self, key: tuple[Any, ...], rowid: int) -> None:
        raise NotImplementedError

    def discard(self, key: tuple[Any, ...], rowid: int) -> None:
        raise NotImplementedError

    def lookup(self, key: tuple[Any, ...]) -> Iterator[int]:
        raise NotImplementedError

    def supports_range(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name} ON {self.table_name}{self.columns})"


class HashIndex(Index):
    """Equality-probe index backed by a dict of rowid sets."""

    kind = "hash"

    def __init__(self, name: str, table_name: str, columns: Sequence[str], unique: bool = False):
        super().__init__(name, table_name, columns, unique)
        self._buckets: dict[tuple[Any, ...], set[int]] = {}

    def add(self, key: tuple[Any, ...], rowid: int) -> None:
        self._buckets.setdefault(key, set()).add(rowid)

    def discard(self, key: tuple[Any, ...], rowid: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple[Any, ...]) -> Iterator[int]:
        self.probes += 1
        return iter(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class SortedIndex(Index):
    """B-tree-like index: a sorted key list supporting range scans.

    Keys containing NULL are not indexed for ranges (SQL comparisons
    with NULL are UNKNOWN), matching real engines that exclude NULL
    keys from range predicates.
    """

    kind = "sorted"

    def __init__(self, name: str, table_name: str, columns: Sequence[str], unique: bool = False):
        super().__init__(name, table_name, columns, unique)
        self._keys: list[tuple[Any, ...]] = []
        self._rowids: dict[tuple[Any, ...], set[int]] = {}

    def supports_range(self) -> bool:
        return True

    def add(self, key: tuple[Any, ...], rowid: int) -> None:
        if any(part is None for part in key):
            return
        if key not in self._rowids:
            bisect.insort(self._keys, key)
            self._rowids[key] = set()
        self._rowids[key].add(rowid)

    def discard(self, key: tuple[Any, ...], rowid: int) -> None:
        bucket = self._rowids.get(key)
        if bucket is None:
            return
        bucket.discard(rowid)
        if not bucket:
            del self._rowids[key]
            pos = bisect.bisect_left(self._keys, key)
            if pos < len(self._keys) and self._keys[pos] == key:
                del self._keys[pos]

    def lookup(self, key: tuple[Any, ...]) -> Iterator[int]:
        self.probes += 1
        return iter(self._rowids.get(key, ()))

    def range(
        self,
        low: tuple[Any, ...] | None = None,
        high: tuple[Any, ...] | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield rowids whose key falls in [low, high] (bounds optional)."""
        self.probes += 1
        start = 0
        if low is not None:
            start = (
                bisect.bisect_left(self._keys, low)
                if low_inclusive
                else bisect.bisect_right(self._keys, low)
            )
        end = len(self._keys)
        if high is not None:
            end = (
                bisect.bisect_right(self._keys, high)
                if high_inclusive
                else bisect.bisect_left(self._keys, high)
            )
        for pos in range(start, end):
            yield from self._rowids[self._keys[pos]]

    def __len__(self) -> int:
        return sum(len(b) for b in self._rowids.values())


def make_index(
    kind: str, name: str, table_name: str, columns: Sequence[str], unique: bool = False
) -> Index:
    if kind == "hash":
        return HashIndex(name, table_name, columns, unique)
    if kind in ("sorted", "btree"):
        return SortedIndex(name, table_name, columns, unique)
    raise CatalogError(f"unknown index kind {kind!r}")
