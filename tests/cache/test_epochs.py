"""Unit tests for the epoch registry — the invalidation substrate.

The registry's contract is small but load-bearing: lowercase
normalization (the engine's write-lock keys are lowercase), per-bump
deduplication, atomic vector reads, and loss-free concurrent bumps.
"""

from __future__ import annotations

import threading

import pytest

from repro.cache import EpochRegistry


def test_unknown_table_has_epoch_zero():
    reg = EpochRegistry()
    assert reg.epoch("person") == 0
    assert reg.vector(["person", "knows"]) == (0, 0)
    assert reg.snapshot() == {}


def test_bump_increments_and_returns_lowercase_names():
    reg = EpochRegistry()
    assert reg.bump(["Person"]) == ["person"]
    assert reg.epoch("person") == 1
    assert reg.bump(["person", "KNOWS"]) == ["person", "knows"]
    assert reg.epoch("person") == 2
    assert reg.epoch("knows") == 1


def test_case_insensitive_across_all_entry_points():
    reg = EpochRegistry()
    reg.bump(["PeRsOn"])
    assert reg.epoch("PERSON") == reg.epoch("person") == 1
    assert reg.vector(["Person"]) == (1,)
    assert reg.snapshot() == {"person": 1}


def test_bump_deduplicates_within_one_call():
    reg = EpochRegistry()
    assert reg.bump(["a", "A", "b", "a"]) == ["a", "b"]
    assert reg.epoch("a") == 1  # one logical commit = one bump
    assert reg.total_bumps == 2


def test_bump_empty_is_a_noop():
    reg = EpochRegistry()
    assert reg.bump([]) == []
    assert reg.total_bumps == 0


def test_vector_preserves_input_order():
    reg = EpochRegistry()
    reg.bump(["b"])
    reg.bump(["b"])
    reg.bump(["c"])
    assert reg.vector(["a", "b", "c"]) == (0, 2, 1)
    assert reg.vector(["c", "b", "a"]) == (1, 2, 0)


def test_snapshot_is_a_copy():
    reg = EpochRegistry()
    reg.bump(["t"])
    snap = reg.snapshot()
    snap["t"] = 99
    assert reg.epoch("t") == 1


@pytest.mark.stress
def test_concurrent_bumps_lose_nothing():
    reg = EpochRegistry()
    n_threads, rounds = 8, 200
    barrier = threading.Barrier(n_threads)

    def worker(i: int) -> None:
        barrier.wait()
        for _ in range(rounds):
            reg.bump(["shared", f"own{i}"])

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
        assert not t.is_alive()
    assert reg.epoch("shared") == n_threads * rounds
    for i in range(n_threads):
        assert reg.epoch(f"own{i}") == rounds
    assert reg.total_bumps == 2 * n_threads * rounds
