"""The durability manager: WAL buffering, flush-at-commit, checkpoints.

One :class:`DurabilityManager` attaches to one :class:`Database` and
owns one log directory.  The directory holds at most one *current*
generation of files::

    checkpoint-00000003.ckpt    state as of segment 3's creation
    wal-00000003.log            commits since that checkpoint

Ordering guarantees (the heart of the subsystem):

* **Group commit atomicity** — a transaction's ops are buffered
  per-transaction in memory (``note_dml``) and written as one
  contiguous ``begin … commit`` group at commit time.  A group never
  spans segments and never interleaves with another group.
* **Durable before visible** — ``commit_transaction`` appends and
  flushes the group *before* stamping the row versions with their CSN,
  all under the durability lock.  A reader can therefore never observe
  a committed row that a crash could still lose.
* **Checkpoint consistency** — ``checkpoint()`` takes the same lock, so
  it always sees a state where every stamped version is also logged;
  the checkpoint CSN is simply the last logged CSN.
* **Rollbacks are lazy** — a rolled-back transaction's group (ops +
  ``rollback``) is appended to the buffer but not flushed; it rides
  along with the next flush purely for forensics.  Recovery ignores it.
* **DDL is eager** — DDL records flush+fsync immediately (DDL
  autocommits, so there is no commit record to piggyback on).

Crash points (``wal.before_flush``, ``wal.mid_record``,
``wal.after_flush``, ``checkpoint.mid_write``) are consulted through
the database's :class:`~repro.resilience.faults.FaultInjector`; a fired
point leaves the on-disk state exactly as a real crash at that instant
would (including a torn half-written final frame for ``mid_record``)
and raises :class:`~repro.resilience.faults.SimulatedCrashError`.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from .checkpoint import capture_checkpoint
from .codec import encode_record
from .config import DurabilityConfig, checkpoint_filename, parse_segment, wal_filename
from .errors import DurabilityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.database import Database
    from ..relational.transactions import Transaction


class DurabilityManager:
    def __init__(self, database: "Database", config: DurabilityConfig):
        self.database = database
        self.config = config
        self.dir = Path(config.dir)
        self.segment = 0
        # Serializes commits, DDL logging, and checkpoints against each
        # other.  RLock: an auto-checkpoint fires from inside a commit.
        self._lock = threading.RLock()
        # Leaf lock for the per-transaction op buffers: note_dml is
        # called while a TableStorage mutation lock is held, so it must
        # never wait on the durability lock.
        self._buffers_lock = threading.Lock()
        self._txn_ops: dict[int, list[dict[str, Any]]] = {}
        # Encoded frames appended but not yet written to the segment.
        self._pending: list[bytes] = []
        self.last_logged_csn = database.txn_manager.current_csn()
        self.commits_since_checkpoint = 0
        self.dead = False
        # Lifetime stats (tests and benchmarks read these directly).
        self.wal_records = 0
        self.wal_bytes = 0
        self.wal_flush_count = 0
        self.checkpoints_written = 0
        # Replication node handle (repro.replication) or None.  Set by
        # the cluster on the current primary: every durable flush ships
        # its frames into the replication stream, and writes are fenced
        # once the node is deposed.
        self.replication = None

    # -- paths ---------------------------------------------------------------

    def wal_path(self) -> Path:
        return self.dir / wal_filename(self.segment)

    def checkpoint_path(self) -> Path:
        return self.dir / checkpoint_filename(self.segment)

    # -- lifecycle -----------------------------------------------------------

    def start(self, segment: int = 0) -> None:
        """Begin logging at ``segment``: write its checkpoint (capturing
        whatever state the database already holds — this is what makes
        durability *retrofittable* onto a populated in-memory database)
        and prune every older generation."""
        with self._lock:
            self.segment = segment
            self._write_checkpoint_locked(segment)

    def close(self) -> None:
        """Flush any lazily-buffered frames (rollback groups)."""
        with self._lock:
            if not self.dead:
                self._flush_locked()

    def _ensure_alive(self) -> None:
        if self.dead:
            raise DurabilityError("durability manager is dead (crashed database)")

    # -- transaction-side hooks ---------------------------------------------

    def note_dml(self, txn_id: int, record: dict[str, Any]) -> None:
        """Buffer one redo record for an open transaction.

        Leaf path: called under the table's mutation lock; must not
        touch the durability lock or do I/O.
        """
        if self.dead:
            return
        with self._buffers_lock:
            self._txn_ops.setdefault(txn_id, []).append(record)

    def commit_transaction(
        self, txn: "Transaction", csn: int, now: float, stamp: Any
    ) -> None:
        """Make ``txn`` durable, then visible.

        ``stamp`` is the transaction manager's version-stamping closure;
        running it here, after the flush and under the durability lock,
        gives both orderings at once: durable-before-visible, and
        stamped-implies-logged (which checkpoints rely on).
        """
        with self._lock:
            self._ensure_alive()
            if self.replication is not None:
                self.replication.ensure_primary()
            with self._buffers_lock:
                ops = self._txn_ops.pop(txn.txn_id, [])
            if ops:
                self._append_records(
                    [
                        {"k": "begin", "t": txn.txn_id},
                        *ops,
                        {"k": "commit", "t": txn.txn_id, "c": csn, "w": now},
                    ]
                )
                self._flush_locked()
                self.last_logged_csn = csn
            stamp()
            if ops:
                self.commits_since_checkpoint += 1
                if (
                    self.config.checkpoint_every
                    and self.commits_since_checkpoint >= self.config.checkpoint_every
                ):
                    self.checkpoint()

    def rollback_transaction(self, txn: "Transaction") -> None:
        with self._buffers_lock:
            ops = self._txn_ops.pop(txn.txn_id, None)
        if not ops:
            return
        with self._lock:
            if self.dead:
                return
            self._append_records(
                [
                    {"k": "begin", "t": txn.txn_id},
                    *ops,
                    {"k": "rollback", "t": txn.txn_id},
                ]
            )
            # No flush: a rollback group is dead weight for recovery and
            # only reaches disk if a later flush carries it.

    def log_ddl(self, record: dict[str, Any]) -> None:
        """Append one DDL record and flush immediately."""
        with self._lock:
            self._ensure_alive()
            if self.replication is not None:
                self.replication.ensure_primary()
            self._append_records([{"k": "ddl", **record}])
            self._flush_locked()
        if self.replication is not None:
            # DDL has no commit record to piggyback the ack wait on;
            # sync-ack replication waits here instead (outside the
            # durability lock — the pump applies onto replica databases
            # and must not serialize behind this one's WAL).
            self.replication.on_ddl_durable()

    # -- WAL internals -------------------------------------------------------

    def _append_records(self, records: list[dict[str, Any]]) -> None:
        for record in records:
            frame = encode_record(record)
            self._pending.append(frame)
            self.wal_records += 1
            self._emit(
                obs_metrics.WAL_APPENDS,
                obs_tracing.WAL_APPEND,
                kind=record["k"],
                table=record.get("tb"),
            )

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        if self._crash_point("wal.before_flush"):
            self._die("wal.before_flush")
        frames = self._pending
        torn = self._crash_point("wal.mid_record")
        with open(self.wal_path(), "ab") as f:
            if torn:
                # A real crash mid-append leaves a prefix of the last
                # frame on disk; reproduce that torn tail exactly.
                f.write(b"".join(frames[:-1]))
                f.write(frames[-1][: max(1, len(frames[-1]) // 2)])
                f.flush()
            else:
                data = b"".join(frames)
                f.write(data)
                f.flush()
                self.config.do_fsync(f.fileno())
        if torn:
            self._die("wal.mid_record")
        self._pending = []
        self.wal_bytes += sum(len(frame) for frame in frames)
        self.wal_flush_count += 1
        self._emit(
            obs_metrics.WAL_FLUSHES,
            obs_tracing.WAL_FLUSH,
            segment=self.segment,
            records=len(frames),
        )
        if self._crash_point("wal.after_flush"):
            # The flush completed: whatever it carried IS durable and
            # must survive recovery even though the process dies before
            # acknowledging the commit.
            self._die("wal.after_flush")
        if self.replication is not None:
            # Ship strictly *after* the crash points: a primary that
            # dies at wal.after_flush is durable locally but never
            # shipped these frames, so they were never acked and a
            # promoted replica lawfully lacks them.  Conversely every
            # shipped frame is already durable here, so the stream can
            # never run ahead of the primary's own log.
            self.replication.ship(frames)

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a new checkpoint and rotate to the next segment.

        Returns the new segment number.
        """
        with self._lock:
            self._ensure_alive()
            self._flush_locked()
            target = self.segment + 1
            self._write_checkpoint_locked(target)
            self.segment = target
            self.commits_since_checkpoint = 0
            return target

    def _write_checkpoint_locked(self, target: int) -> None:
        frames = capture_checkpoint(self.database, self.last_logged_csn)
        data = b"".join(frames)
        final = self.dir / checkpoint_filename(target)
        tmp = self.dir / (checkpoint_filename(target) + ".tmp")
        torn = self._crash_point("checkpoint.mid_write")
        with open(tmp, "wb") as f:
            if torn:
                f.write(data[: len(data) // 2])
                f.flush()
            else:
                f.write(data)
                f.flush()
                self.config.do_fsync(f.fileno())
        if torn:
            self._die("checkpoint.mid_write")
        os.replace(tmp, final)
        self._prune(target)
        self.checkpoints_written += 1
        self._emit(
            obs_metrics.CHECKPOINTS_WRITTEN,
            obs_tracing.CHECKPOINT_WRITTEN,
            segment=target,
            bytes=len(data),
        )

    def _prune(self, keep: int) -> None:
        """Drop every generation older than ``keep``, plus stale temp
        files from torn checkpoint attempts."""
        for entry in os.listdir(self.dir):
            path = self.dir / entry
            if entry.endswith(".tmp"):
                path.unlink(missing_ok=True)
                continue
            segment = parse_segment(entry)
            if segment is not None and segment < keep:
                path.unlink(missing_ok=True)

    # -- crash plumbing ------------------------------------------------------

    def _crash_point(self, point: str) -> bool:
        injector = self.database.fault_injector
        if injector is None or not hasattr(injector, "on_point"):
            return False
        return injector.on_point(
            point, registry=self.database.obs_registry, trace=self.database.obs_trace
        )

    def _die(self, point: str) -> None:
        from ..resilience.faults import SimulatedCrashError

        self.dead = True
        self._pending = []
        with self._buffers_lock:
            self._txn_ops.clear()
        raise SimulatedCrashError(f"simulated crash at {point!r}")

    # -- observability -------------------------------------------------------

    def _emit(self, counter: str, event: str, **attrs: Any) -> None:
        database = self.database
        database.obs_registry.counter(counter).increment()
        database.obs_trace.emit(event, **attrs)

    def __repr__(self) -> str:
        return (
            f"DurabilityManager(dir={str(self.dir)!r}, segment={self.segment}, "
            f"records={self.wal_records}, dead={self.dead})"
        )
