"""Bounded worker pool for multi-table fan-out (the parallel execution
layer).

One traversal step over the overlay fans out into one SQL statement per
surviving candidate table (after the §6.3 eliminations) — and, with
traverser batching, one statement per ``batch_size`` ids per table.
Those sub-statements are independent reads (the relational engine's
MVCC read path takes no table locks), so a :class:`FanoutPool` may run
them concurrently on a bounded number of worker threads.

Design points, in the order tests rely on them:

* **Determinism** — ``run()`` returns results in *submission order*, no
  matter which worker finished first.  Callers demultiplex results back
  to traversers positionally, so a parallel run is bit-identical to a
  serial one.
* **Serial fast path** — ``parallelism <= 1`` (the default) or a
  single-task fan-out never touches a thread: the task list runs inline
  on the caller's thread, preserving today's behavior and cost exactly.
* **Budget propagation** — the dialect's active
  :class:`~repro.resilience.budget.BudgetTracker` is thread-local;
  ``run(scope=...)`` re-enters it around every task so worker
  sub-statements hit the same checkpoints as serial ones.
* **First-error cancellation** — when a sub-statement raises (budget
  tripped, retries exhausted), not-yet-started tasks are cancelled and
  the earliest failure by submission order propagates.  Already-running
  workers finish their statement; nothing is silently dropped or
  double-counted.

The pool is created lazily on first parallel dispatch and shared for
the lifetime of a :class:`~repro.core.db2graph.Db2Graph`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from ..obs import metrics as M
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_RECORDER, TraceRecorder

#: Traverser-coalescing default: matches the step layer's historical
#: batch of 256 traversers per ``adjacent()`` call, so an unconfigured
#: graph issues exactly the SQL it always did.
DEFAULT_BATCH_SIZE = 256

PARALLELISM_ENV = "REPRO_PARALLELISM"
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"

# Set while a fan-out task runs on a pool worker.  A nested fan-out
# started from inside a worker (e.g. adjacent() resolving endpoint
# vertices) must run inline: re-submitting to a saturated pool and
# blocking on the results would deadlock the workers against each other.
_worker_state = threading.local()


def in_fanout_worker() -> bool:
    return getattr(_worker_state, "active", False)


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError:
        return fallback


def resolve_parallelism(parallelism: int | None) -> int:
    """Explicit argument, else ``REPRO_PARALLELISM``, else serial."""
    if parallelism is None:
        parallelism = _env_int(PARALLELISM_ENV, 1)
    return max(1, int(parallelism))


def resolve_batch_size(batch_size: int | None) -> int:
    """Explicit argument, else ``REPRO_BATCH_SIZE``, else 256."""
    if batch_size is None:
        batch_size = _env_int(BATCH_SIZE_ENV, DEFAULT_BATCH_SIZE)
    return max(1, int(batch_size))


class FanoutPool:
    """Runs a fan-out's per-table tasks on at most ``parallelism``
    threads, returning results in submission order."""

    def __init__(
        self,
        parallelism: int = 1,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder = NULL_RECORDER,
    ):
        self.parallelism = max(1, int(parallelism))
        self.registry = registry
        self.trace = trace
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="repro-fanout",
                )
            return self._executor

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # -- dispatch ------------------------------------------------------------

    def submit(
        self,
        task: Callable[[], Any],
        scope: Callable[[Callable[[], Any]], Any] | None = None,
    ):
        """Run one task asynchronously on a pool worker; returns its
        :class:`~concurrent.futures.Future`.

        This is the service layer's dispatch primitive: admitted
        requests execute on the same workers that fan-out statements
        would use.  The worker is marked active for its duration, so a
        traversal's nested fan-outs run inline on that worker instead
        of re-entering a possibly-saturated pool and deadlocking.
        ``scope`` wraps the task exactly as in :meth:`run`.
        """

        def run_in_worker() -> Any:
            _worker_state.active = True
            try:
                return scope(task) if scope is not None else task()
            finally:
                _worker_state.active = False

        return self._ensure_executor().submit(run_in_worker)

    def run(
        self,
        tasks: Sequence[Callable[[], Any]],
        scope: Callable[[Callable[[], Any]], Any] | None = None,
    ) -> list[Any]:
        """Run ``tasks`` and return their results in submission order.

        ``scope`` wraps each task at the call site (used to re-enter the
        caller's thread-local budget scope inside workers).  On the
        serial path ``scope`` is skipped — the caller's context is
        already active on its own thread.
        """
        if not tasks:
            return []
        if self.parallelism <= 1 or len(tasks) == 1 or in_fanout_worker():
            return [task() for task in tasks]

        if self.registry is not None:
            self.registry.counter(M.FANOUT_PARALLEL).increment()
        self.trace.emit(
            tracing.FANOUT_PARALLEL,
            tasks=len(tasks),
            parallelism=self.parallelism,
        )

        def wrap(task: Callable[[], Any]) -> Callable[[], Any]:
            def run_in_worker() -> Any:
                _worker_state.active = True
                try:
                    return scope(task) if scope is not None else task()
                finally:
                    _worker_state.active = False

            return run_in_worker

        executor = self._ensure_executor()
        futures = [executor.submit(wrap(task)) for task in tasks]
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            if first_error is not None:
                # Outstanding work is cancelled; tasks a worker already
                # picked up run to completion (their statements were
                # issued — dropping them mid-flight could tear state).
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — propagated below
                first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return f"FanoutPool(parallelism={self.parallelism}, {state})"


def chunked(values: Sequence[Any], size: int) -> list[Sequence[Any]]:
    """Split ``values`` into ``len(values)//size (+1)`` runs of at most
    ``size``, preserving order — the traverser-batching unit."""
    if size <= 0 or len(values) <= size:
        return [values]
    return [values[i : i + size] for i in range(0, len(values), size)]
