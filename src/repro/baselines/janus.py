"""The JanusGraph-like baseline: adjacency lists serialized into a
key-value store.

The paper (§1): "JanusGraph stores the entire adjacency list of a
vertex in a somewhat *encrypted* form in one column."  We mirror that:
one KV entry per vertex containing its properties **and its entire
adjacency list** (with each incident edge's label, endpoints, and
properties inlined).  Every vertex access therefore deserializes the
whole blob — the cost that makes JanusGraph the slowest system in
Figs. 5 and 6 — and every edge is stored twice (once per endpoint),
inflating disk usage as in Table 3.

A small blob cache exists (JanusGraph has one too), but the dominant
cost is deserialization, which the cache only avoids for hot vertices.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Mapping, Sequence

from ..common.lru import LruCache
from ..graph.errors import ElementNotFoundError, GraphError
from ..graph.model import Direction, Edge, GraphProvider, Pushdown, Vertex
from .kvstore import DiskModel, LogStructuredKVStore

DEFAULT_BLOB_CACHE = 10_000


class JanusLikeStore(GraphProvider):
    def __init__(
        self,
        cache_blobs: int = DEFAULT_BLOB_CACHE,
        disk_model: DiskModel | None = None,
        path: str | None = None,
    ):
        self._store = LogStructuredKVStore(path=path, disk_model=disk_model)
        self.cache: LruCache[Any, dict] = LruCache(cache_blobs)
        self._staging: dict[Any, dict] = {}
        self._finalized = False
        self._vertex_ids: list[Any] = []
        self._edge_index: dict[Any, Any] = {}  # edge id -> out vertex id
        self._vertex_labels: dict[str, list[Any]] = {}
        self._edge_id_counter = itertools.count(1)
        self._edge_count = 0

    def describe(self) -> str:
        return "JanusGraph(kv)"

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def add_vertex(self, vertex_id: Any, label: str, properties: Mapping[str, Any] | None = None) -> None:
        if self._finalized:
            raise GraphError("store is finalized")
        if vertex_id in self._staging:
            raise GraphError(f"vertex {vertex_id!r} already exists")
        self._staging[vertex_id] = {
            "id": vertex_id,
            "label": label,
            "properties": dict(properties or {}),
            # full adjacency inlined; edges duplicated on both endpoints
            "adjacency": [],  # entries: {dir, edge_id, label, out_v, in_v, properties}
        }

    def add_edge(
        self,
        label: str,
        out_v: Any,
        in_v: Any,
        properties: Mapping[str, Any] | None = None,
        edge_id: Any = None,
    ) -> Any:
        if self._finalized:
            raise GraphError("store is finalized")
        if out_v not in self._staging or in_v not in self._staging:
            raise ElementNotFoundError(f"edge endpoints {out_v!r}->{in_v!r} not loaded")
        if edge_id is None:
            edge_id = next(self._edge_id_counter)
        entry = {
            "edge_id": edge_id,
            "label": label,
            "out_v": out_v,
            "in_v": in_v,
            "properties": dict(properties or {}),
        }
        self._staging[out_v]["adjacency"].append({**entry, "dir": "out"})
        self._staging[in_v]["adjacency"].append({**entry, "dir": "in"})
        self._edge_index[edge_id] = out_v
        self._edge_count += 1
        return edge_id

    def finalize(self) -> None:
        if self._finalized:
            return
        for vertex_id, blob in self._staging.items():
            self._store.put(vertex_id, blob)
            self._vertex_labels.setdefault(blob["label"], []).append(vertex_id)
            self._vertex_ids.append(vertex_id)
        self._store.flush()
        self._staging.clear()
        self._finalized = True

    def open_graph(self, prefetch: bool = False) -> None:
        self.finalize()
        if prefetch:
            budget = self.cache.capacity or len(self._vertex_ids)
            for vertex_id in self._vertex_ids[:budget]:
                self._blob(vertex_id)

    # ------------------------------------------------------------------
    # Blob access
    # ------------------------------------------------------------------

    def _blob(self, vertex_id: Any) -> dict | None:
        return self.cache.get_or_load(vertex_id, self._store.get)

    def _vertex_from_blob(self, blob: dict) -> Vertex:
        return Vertex(blob["id"], blob["label"], blob["properties"], provider=self)

    @staticmethod
    def _edge_from_entry(entry: dict, provider: "JanusLikeStore") -> Edge:
        return Edge(
            entry["edge_id"],
            entry["label"],
            out_v_id=entry["out_v"],
            in_v_id=entry["in_v"],
            properties=entry["properties"],
            provider=provider,
        )

    # ------------------------------------------------------------------
    # GraphProvider interface
    # ------------------------------------------------------------------

    def graph_step(
        self, return_type: str, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> Iterator[Any]:
        if return_type == "vertex":
            candidate_ids = self._candidate_vertex_ids(ids, pushdown)
            elements: Iterator[Any] = (
                self._vertex_from_blob(blob)
                for blob in (self._blob(i) for i in candidate_ids)
                if blob is not None
                and self._passes(blob["properties"], blob["label"], blob["id"], pushdown)
            )
        else:
            elements = self._edge_scan(ids, pushdown)
        if pushdown.aggregate is not None:
            yield _aggregate(elements, pushdown)
            return
        yield from elements

    def _candidate_vertex_ids(
        self, ids: Sequence[Any] | None, pushdown: Pushdown
    ) -> list[Any]:
        if ids is not None:
            return list(ids)
        labels = pushdown.labels
        for key, p in pushdown.predicates:
            if key == "~label" and p.op == "eq":
                labels = (p.value,) if labels is None else tuple(set(labels) & {p.value})
        if labels is not None:
            out: list[Any] = []
            for label in labels:
                out.extend(self._vertex_labels.get(label, ()))
            return out
        return list(self._vertex_ids)

    def _edge_scan(self, ids: Sequence[Any] | None, pushdown: Pushdown) -> Iterator[Edge]:
        if ids is not None:
            for edge_id in ids:
                out_v = self._edge_index.get(edge_id)
                if out_v is None:
                    continue
                blob = self._blob(out_v)
                if blob is None:
                    continue
                for entry in blob["adjacency"]:
                    if entry["dir"] == "out" and entry["edge_id"] == edge_id:
                        if self._passes(
                            entry["properties"], entry["label"], edge_id, pushdown
                        ):
                            yield self._edge_from_entry(entry, self)
            return
        for vertex_id in self._vertex_ids:
            blob = self._blob(vertex_id)
            if blob is None:
                continue
            for entry in blob["adjacency"]:
                if entry["dir"] != "out":
                    continue  # each edge only from its out endpoint
                if self._passes(entry["properties"], entry["label"], entry["edge_id"], pushdown):
                    yield self._edge_from_entry(entry, self)

    def adjacent(
        self,
        vertices: Sequence[Vertex],
        direction: Direction,
        edge_labels: tuple[str, ...] | None,
        return_type: str,
        pushdown: Pushdown,
    ) -> dict[Any, list[Any]]:
        wanted_dirs = (
            ("out", "in") if direction is Direction.BOTH else
            ("out",) if direction is Direction.OUT else ("in",)
        )
        aggregating = pushdown.aggregate is not None
        collected: list[Any] = []
        result: dict[Any, list[Any]] = {}
        for vertex in vertices:
            blob = self._blob(vertex.id)
            if blob is None:
                result[vertex.id] = []
                continue
            elements: list[Any] = []
            for entry in blob["adjacency"]:
                if entry["dir"] not in wanted_dirs:
                    continue
                if edge_labels is not None and entry["label"] not in edge_labels:
                    continue
                if return_type == "edge":
                    if self._passes(
                        entry["properties"], entry["label"], entry["edge_id"], pushdown
                    ):
                        elements.append(self._edge_from_entry(entry, self))
                else:
                    other_id = entry["in_v"] if entry["dir"] == "out" else entry["out_v"]
                    other = self._blob(other_id)
                    if other is not None and self._passes(
                        other["properties"], other["label"], other["id"], pushdown
                    ):
                        elements.append(self._vertex_from_blob(other))
            if aggregating:
                collected.extend(elements)
            else:
                result[vertex.id] = elements
        if aggregating:
            return {None: [_aggregate(iter(collected), pushdown)]}
        return result

    def edge_vertex(self, edge: Edge, direction: Direction) -> Iterator[Vertex]:
        if direction is Direction.BOTH:
            yield from self.edge_vertex(edge, Direction.OUT)
            yield from self.edge_vertex(edge, Direction.IN)
            return
        blob = self._blob(edge.endpoint_id(direction))
        if blob is None:
            raise ElementNotFoundError(f"vertex {edge.endpoint_id(direction)!r} not found")
        yield self._vertex_from_blob(blob)

    def load_vertex(self, vertex_id: Any, table_hint: str | None = None) -> Vertex | None:
        blob = self._blob(vertex_id)
        return self._vertex_from_blob(blob) if blob else None

    def load_edge(self, edge_id: Any) -> Edge | None:
        for edge in self._edge_scan([edge_id], Pushdown()):
            return edge
        return None

    # ------------------------------------------------------------------
    # Stats / admin
    # ------------------------------------------------------------------

    def vertex_count(self) -> int:
        return len(self._vertex_ids) + len(self._staging)

    def edge_count(self) -> int:
        return self._edge_count

    def disk_usage_bytes(self) -> int:
        return self._store.disk_usage_bytes()

    def serialization_lock_seconds(self) -> float:
        return self.cache.lock_held_seconds + self._store.lock_held_seconds

    def close(self) -> None:
        self._store.close()

    @staticmethod
    def _passes(properties: Mapping[str, Any], label: str, element_id: Any, pushdown: Pushdown) -> bool:
        if not pushdown.matches_labels(label):
            return False
        return pushdown.matches_predicates(properties, label, element_id)


def _aggregate(elements: Iterator[Any], pushdown: Pushdown) -> Any:
    if pushdown.aggregate == "count":
        return sum(1 for _ in elements)
    key = pushdown.aggregate_key
    values = [e.value(key) for e in elements if key and e.has_property(key)]
    if pushdown.aggregate == "mean":
        return sum(values) / len(values) if values else None
    if not values:
        return None
    if pushdown.aggregate == "sum":
        return sum(values)
    if pushdown.aggregate == "min":
        return min(values)
    if pushdown.aggregate == "max":
        return max(values)
    raise GraphError(f"unknown aggregate {pushdown.aggregate!r}")
