"""Chaos under the service layer: seeded faults injected into ONE
session of a multiplexed :class:`GraphService` must stay inside that
session — other sessions' results never change, no locks leak, and the
shared worker pool and admission queue keep serving.

Fault injectors are per-connection (``connection.fault_injector``), so
a session's faults fire only for its own statements even though every
session's requests run on the same pool workers.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.relational import Database, LockTimeoutError
from repro.resilience import FaultInjector, RetryPolicy
from repro.resilience.faults import InjectedTransientError
from repro.service import GraphService, ServiceConfig
from tests.conftest import HEALTHCARE_TINY_OVERLAY

pytestmark = [pytest.mark.chaos, pytest.mark.service]


def no_sleep_retry(max_attempts: int = 4) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=max_attempts, sleep=lambda _s: None, rng=random.Random(0)
    )


def paper_database() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, "
        "address VARCHAR, subscriptionID BIGINT)"
    )
    db.execute(
        "CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, "
        "conceptName VARCHAR)"
    )
    db.execute("CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR)")
    db.execute("CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR)")
    db.execute(
        "INSERT INTO Patient VALUES (1, 'Alice', '1 Main St', 100), "
        "(2, 'Bob', '2 Oak Ave', 200), (3, 'Carol', '3 Elm St', 300)"
    )
    db.execute(
        "INSERT INTO Disease VALUES (10, 'D10', 'diabetes'), "
        "(11, 'D11', 'type 2 diabetes'), (13, 'D13', 'type 1 diabetes')"
    )
    db.execute(
        "INSERT INTO HasDisease VALUES (1, 11, 'dx 2019'), (2, 10, 'dx 2018'), "
        "(3, 13, 'dx 2020')"
    )
    db.execute("INSERT INTO DiseaseOntology VALUES (11, 10, 'isa'), (13, 10, 'isa')")
    return db


QUERY = "g.V().hasLabel('patient').out('hasDisease').values('conceptName')"


def test_faulty_session_never_poisons_its_neighbors():
    db = paper_database()
    service = GraphService(db, HEALTHCARE_TINY_OVERLAY, ServiceConfig(workers=2))
    try:
        clean = service.open_session()
        baseline = sorted(clean.execute(QUERY))
        assert baseline  # the differential reference, fault-free

        faulty = service.open_session()  # no retry policy: faults surface
        injector = FaultInjector(seed=11)
        injector.add("error", probability=0.4, times=None)
        faulty.connection.fault_injector = injector

        failures = 0
        for _ in range(20):
            try:
                assert sorted(faulty.execute(QUERY)) == baseline
            except InjectedTransientError:
                failures += 1
            # after every faulty attempt the clean session still gets
            # exactly the fault-free answer
            assert sorted(clean.execute(QUERY)) == baseline
        assert failures > 0, "chaos session never failed — seed mismatch?"
        assert injector.fires == failures
        assert db.lock_manager.is_clean()
    finally:
        service.shutdown(timeout=10)
    assert db.lock_manager.is_clean()


def test_per_session_retries_mask_faults_under_concurrency():
    db = paper_database()
    service = GraphService(db, HEALTHCARE_TINY_OVERLAY, ServiceConfig(workers=4))
    try:
        baseline_session = service.open_session()
        baseline = sorted(baseline_session.execute(QUERY))

        sessions = []
        for i in range(3):
            session = service.open_session(retry_policy=no_sleep_retry(6))
            injector = FaultInjector(seed=100 + i)
            injector.add("lock_timeout", probability=0.15, times=None)
            session.connection.fault_injector = injector
            sessions.append(session)

        errors: list[BaseException] = []

        def hammer(session, rounds=15):
            try:
                for _ in range(rounds):
                    assert sorted(session.execute(QUERY)) == baseline
            except BaseException as exc:  # noqa: BLE001 — surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in sessions]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "hammer thread wedged"
        assert not errors, errors[:3]
        # faults really fired and were masked by each session's policy
        assert any(s.connection.fault_injector.fires > 0 for s in sessions)
        stats = service.stats()
        assert stats["failed"] == 0
        assert db.lock_manager.is_clean()
    finally:
        service.shutdown(timeout=10)


def test_fault_mid_transaction_leaves_only_that_session_rolled_back():
    db = paper_database()
    service = GraphService(db, HEALTHCARE_TINY_OVERLAY, ServiceConfig(workers=2))
    try:
        chaotic = service.open_session()
        bystander = service.open_session()

        def doomed_txn(s):
            s.connection.begin()
            s.connection.execute(
                "INSERT INTO Patient VALUES (4, 'Dave', '4 Pine', 400)"
            )
            injector = FaultInjector(seed=5)
            injector.add("lock_timeout", at_statement=1, times=1)
            s.connection.fault_injector = injector
            try:
                s.connection.execute("UPDATE Patient SET name = 'X' WHERE patientID = 4")
            finally:
                s.connection.fault_injector = None

        with pytest.raises(LockTimeoutError):
            chaotic.run(doomed_txn)
        # the transaction is still open on the chaotic session; the
        # bystander neither sees the uncommitted row nor blocks
        assert bystander.run(lambda s: s.g.V().hasLabel("patient").count().next()) == 3
        chaotic.close(timeout=5)  # close rolls the abandoned txn back
        assert chaotic.rolled_back_on_close
        assert db.lock_manager.is_clean()
        assert bystander.run(lambda s: s.g.V().hasLabel("patient").count().next()) == 3
        # the table is writable again — no leaked write lock
        bystander.run(
            lambda s: s.connection.execute(
                "INSERT INTO Patient VALUES (5, 'Eve', '5 Elm', 500)"
            )
        )
        assert bystander.run(lambda s: s.g.V().hasLabel("patient").count().next()) == 4
    finally:
        service.shutdown(timeout=10)
