"""Errors raised by the bulk analytics engine."""

from __future__ import annotations

from ..graph.errors import GraphError


class AnalyticsError(GraphError):
    """Invalid analytics request (unknown source vertex, negative edge
    weight, malformed table-function spec, ...)."""
