#!/usr/bin/env python3
"""Quickstart: overlay a property graph onto existing relational tables
and query it with Gremlin — no copy, no transformation.

Walks the smallest possible end-to-end path:

1. create ordinary relational tables and fill them with SQL;
2. write an overlay configuration mapping them to a property graph;
3. open the graph with ``Db2Graph.open`` and traverse it;
4. update a table with SQL and watch the graph see it immediately.
"""

from repro.core import Db2Graph
from repro.relational import Database


def main() -> None:
    # 1. ordinary relational data -----------------------------------------
    db = Database()
    db.execute(
        "CREATE TABLE Person (id BIGINT PRIMARY KEY, name VARCHAR, city VARCHAR)"
    )
    db.execute(
        "CREATE TABLE Knows (src BIGINT, dst BIGINT, since INT, "
        "FOREIGN KEY (src) REFERENCES Person (id), "
        "FOREIGN KEY (dst) REFERENCES Person (id))"
    )
    db.execute(
        "INSERT INTO Person VALUES (1, 'ada', 'london'), (2, 'grace', 'nyc'), "
        "(3, 'alan', 'london'), (4, 'edsger', 'austin')"
    )
    db.execute(
        "INSERT INTO Knows VALUES (1, 2, 1950), (1, 3, 1940), (2, 4, 1968), (3, 4, 1970)"
    )

    # 2. the graph overlay (paper §5): a JSON-shaped mapping ----------------
    overlay = {
        "v_tables": [
            {
                "table_name": "Person",
                "id": "id",
                "fix_label": True,
                "label": "'person'",
                "properties": ["name", "city"],
            }
        ],
        "e_tables": [
            {
                "table_name": "Knows",
                "src_v_table": "Person",
                "src_v": "src",
                "dst_v_table": "Person",
                "dst_v": "dst",
                "implicit_edge_id": True,
                "fix_label": True,
                "label": "'knows'",
            }
        ],
    }

    # 3. open and traverse ----------------------------------------------------
    graph = Db2Graph.open(db, overlay)
    g = graph.traversal()

    print("people:", g.V().hasLabel("person").values("name").toList())
    print("ada knows:", g.V(1).out("knows").values("name").toList())
    print(
        "friends-of-friends of ada:",
        g.V(1).out("knows").out("knows").dedup().values("name").toList(),
    )
    print("knows edges since <1960:", g.E().has("since", None).count().next(), "(none)")
    print(
        "early friendships:",
        [(e.out_v_id, e.in_v_id) for e in g.E().toList() if e.value("since") < 1965],
    )
    print("londoners:", g.V().has("city", "london").values("name").toList())

    # Gremlin as a string, too (the Gremlin-console interface)
    print("via string:", graph.execute("g.V(1).out('knows').values('name')"))

    # 4. SQL writes are immediately visible to the graph -------------------------
    db.execute("INSERT INTO Person VALUES (5, 'barbara', 'boston')")
    db.execute("INSERT INTO Knows VALUES (1, 5, 1971)")
    print("after SQL insert, ada knows:", g.V(1).out("knows").values("name").toList())

    print("\ngenerated SQL statistics:", graph.stats())


if __name__ == "__main__":
    main()
