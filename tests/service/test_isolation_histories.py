"""The isolation-history battery: seeded concurrent mixed DML+traversal
workloads over a multi-session :class:`GraphService`, every operation
recorded, the whole history checked against snapshot-isolation
semantics (no lost updates, no aborted/intermediate reads, no read
skew within a transaction, monotonic per-session snapshots, real-time
commit order, append integrity).

The full battery records well over 10k operations across its seeds.
Zero violations is the acceptance bar — one counterexample in any
seeded run is an isolation bug in the engine or the service layer.
"""

from __future__ import annotations

import pytest

from repro.service.history import check_history

from .workload import run_counter_workload

pytestmark = [pytest.mark.service, pytest.mark.stress]


def _run_and_check(**kw):
    recorder, final_state, markers, stats, errors = run_counter_workload(**kw)
    assert errors == [], f"workload drivers raised: {errors[:3]}"
    result = check_history(recorder.ops, final_state, markers)
    assert result.ok, (
        f"isolation violations over {len(recorder.ops)} ops: "
        + "; ".join(result.violations[:5])
    )
    assert stats["failed"] == 0
    assert stats["admitted"] == stats["completed"]
    return recorder, result


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_contended_counter_history(seed):
    """High contention: 8 sessions over 3 registers — write-write
    conflicts and aborts are guaranteed, and none may leak."""
    recorder, result = _run_and_check(
        n_sessions=8, n_keys=3, iterations=120, seed=seed,
        workers=4, queue_depth=32,
    )
    assert len(recorder.ops) >= 2000
    # Contention must actually have happened for this test to mean
    # anything: first-committer-wins aborts and deliberate rollbacks.
    assert result.aborted_txns > 0
    assert result.reads_checked > 200
    assert result.commits > 200


def test_wide_low_contention_history():
    """Low contention, more sessions: mostly-disjoint keys still go
    through one shared database and cache."""
    recorder, result = _run_and_check(
        n_sessions=6, n_keys=32, iterations=190, seed=11,
        workers=4, queue_depth=64,
    )
    assert len(recorder.ops) >= 3000


def test_ten_thousand_op_history():
    """The headline run: a single seeded history of >= 10k recorded
    operations with zero isolation violations."""
    recorder, result = _run_and_check(
        n_sessions=8, n_keys=6, iterations=420, seed=42,
        workers=4, queue_depth=64,
    )
    assert len(recorder.ops) >= 10_000
    assert result.commits >= 1000
