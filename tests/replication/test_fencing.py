"""Fenced failover: a deposed primary's writes are rejected before any
local effect, its late flushes are dropped at the ship boundary, and its
in-flight old-epoch frames are rejected by replicas on append.  The
split-brain write path is *rejected*, not merged.
"""

from __future__ import annotations

import pytest

from repro.durability.config import DurabilityConfig
from repro.obs import metrics as obs_metrics
from repro.relational import Database
from repro.replication import (
    FencedWriteError,
    ReplicationCluster,
    ReplicationConfig,
    ReplicationError,
    check_divergence,
)

pytestmark = pytest.mark.replication


def make_cluster(tmp_path, replicas=2, **cfg):
    db = Database(
        name="primary",
        durability=DurabilityConfig(dir=str(tmp_path / "primary"), fsync=False),
    )
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)")
    db.execute("INSERT INTO t VALUES (1, 'one')")
    cluster = ReplicationCluster(db, ReplicationConfig(replicas=replicas, **cfg))
    return db, cluster


def fenced_count(db):
    return db.obs_registry.counter(obs_metrics.REPL_FENCED).value


def test_promotion_bumps_epoch_and_new_primary_accepts_writes(tmp_path):
    old_db, cluster = make_cluster(tmp_path)
    report = cluster.promote()
    assert report["epoch"] == 2 and report["lost_commits"] == 0
    assert cluster.epoch == 2
    assert cluster.database is not old_db
    cluster.database.execute("INSERT INTO t VALUES (2, 'two')")
    survivor = cluster.live_replicas()[0]
    assert survivor.epoch == 2
    rows = survivor.database.execute("SELECT v FROM t WHERE id = 2").rows
    assert rows == [("two",)]
    check_divergence(cluster)


def test_deposed_primary_write_rejected_before_local_effect(tmp_path):
    old_db, cluster = make_cluster(tmp_path)
    history_before = old_db.txn_manager.commit_history()
    cluster.promote()
    with pytest.raises(FencedWriteError) as exc:
        old_db.execute("INSERT INTO t VALUES (99, 'split-brain')")
    assert exc.value.epoch == 1 and exc.value.current_epoch == 2
    # Before any local effect: no CSN allocated, nothing logged, and the
    # failed row is not visible on the deposed node either.
    assert old_db.txn_manager.commit_history() == history_before
    assert old_db.execute("SELECT * FROM t WHERE id = 99").rows == []
    assert fenced_count(cluster.database) >= 1


def test_deposed_primary_ddl_rejected(tmp_path):
    old_db, cluster = make_cluster(tmp_path)
    cluster.promote()
    with pytest.raises(FencedWriteError):
        old_db.execute("CREATE TABLE late (id INT)")
    assert not cluster.database.catalog.has_table("late")


def test_late_flush_from_deposed_primary_is_dropped_at_ship_boundary(tmp_path):
    old_db, cluster = make_cluster(tmp_path)
    old_handle = cluster.handle
    cluster.promote()
    frames_before = len(cluster.log)
    chain_before = cluster.ship_chain
    # A flush the deposed node still manages to push (e.g. the close()
    # rollback-group flush) must not reach the stream.
    old_handle.ship([b"zombie-frame"])
    old_db.close()
    assert len(cluster.log) == frames_before
    assert cluster.ship_chain == chain_before


def test_old_epoch_inflight_frames_rejected_on_append(tmp_path):
    _, cluster = make_cluster(tmp_path, replicas=2)
    replica = cluster.live_replicas()[0]
    stale = {"kind": "frames", "epoch": cluster.epoch - 1 or 0, "base": 0, "frames": [b"x"]}
    seq_before = replica.next_seq
    fenced_before = fenced_count(cluster.database)
    replica.on_message("primary", dict(stale, epoch=0))
    assert replica.rejected_batches == 1
    assert replica.next_seq == seq_before  # nothing appended
    assert fenced_count(cluster.database) == fenced_before + 1


def test_replica_adopts_higher_epoch_from_stream(tmp_path):
    _, cluster = make_cluster(tmp_path, replicas=1)
    replica = cluster.live_replicas()[0]
    assert replica.epoch == 1
    replica.on_message(
        "primary", {"kind": "frames", "epoch": 5, "base": replica.next_seq, "frames": []}
    )
    assert replica.epoch == 5
    # ...and now rejects frames from every epoch below 5.
    replica.on_message(
        "primary", {"kind": "frames", "epoch": 4, "base": replica.next_seq, "frames": [b"x"]}
    )
    assert replica.rejected_batches == 1


def test_promote_picks_most_caught_up_replica_by_default(tmp_path):
    db, cluster = make_cluster(tmp_path, replicas=2, ack="async")
    lagging = cluster.live_replicas()[0]
    lagging.alive = False  # stop it fetching while writes flow
    db.execute("INSERT INTO t VALUES (2, 'two')")
    cluster.pump(8)
    lagging.alive = True
    report = cluster.promote()
    assert report["promoted"] == "replica-1"
    assert cluster.database.execute("SELECT * FROM t WHERE id = 2").rows


def test_promote_named_and_error_cases(tmp_path):
    _, cluster = make_cluster(tmp_path, replicas=2)
    with pytest.raises(ReplicationError):
        cluster.promote("replica-7")
    dead = cluster.get_replica("replica-0")
    dead.kill()
    with pytest.raises(ReplicationError):
        cluster.promote("replica-0")
    report = cluster.promote("replica-1")
    assert report["promoted"] == "replica-1"
    with pytest.raises(ReplicationError):  # only the dead one remains
        cluster.promote()


def test_async_promotion_loss_is_within_advertised_window(tmp_path):
    db, cluster = make_cluster(tmp_path, replicas=1, ack="async")
    replica = cluster.live_replicas()[0]
    replica.alive = False  # partition the standby away from the stream
    for i in range(2, 6):
        db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
    window = cluster.unacked_window()
    assert window >= 4
    replica.alive = True
    report = cluster.promote("replica-0")
    assert 0 < report["lost_commits"] <= window
    # The survivor's timeline simply never had the unshipped commits.
    assert cluster.database.execute("SELECT * FROM t WHERE id = 5").rows == []
    # The truncated stream and fresh WAL accept new writes cleanly.
    cluster.database.execute("INSERT INTO t VALUES (100, 'post')")
    assert cluster.database.execute("SELECT v FROM t WHERE id = 100").rows == [("post",)]
