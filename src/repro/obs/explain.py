"""``explain()``: the original and strategy-mutated step plans plus the
SQL each GSA step would issue.

TinkerPop ships ``explain()`` as a first-class terminal step; here it
is reproduced over the Db2 Graph translation layer so the paper's §6.2
claims — *which SQL the strategies cause and avoid* — are directly
inspectable:

* the **original** plan (after repeat/until merging, before strategies),
* one :class:`PlanStage` per strategy whose application changed the
  plan (before/after step lists), and
* for every Graph-Structure-Accessing step of the final plan, the SQL
  statement(s) it would issue per surviving table — with table
  eliminations (§6.3) annotated inline.

Nothing here executes SQL: previews are rendered through
``SqlDialect.build_select`` against the live topology, so the text is
exactly what the runtime would send, minus data-dependent batching.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..graph.steps import Step
    from ..graph.traversal import Traversal


@dataclass
class PlanStage:
    """One strategy application that changed the plan."""

    strategy: str
    before: list[str]
    after: list[str]


@dataclass
class StepSql:
    """SQL preview for one step of the final plan."""

    step: str
    statements: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


@dataclass
class ExplainResult:
    """The output of ``traversal.explain()``.

    Supports ``"GraphStep" in result`` and ``str(result)`` so it can be
    read like the plain-text explain it replaced.
    """

    original: list[str]
    final: list[str]
    stages: list[PlanStage]
    step_sql: list[StepSql]
    strategies: list[str]

    def __contains__(self, item: str) -> bool:
        return item in str(self)

    def __str__(self) -> str:
        lines = ["=== Original plan ==="]
        lines += [f"  {s}" for s in self.original]
        for stage in self.stages:
            lines.append(f"=== After {stage.strategy} ===")
            lines += [f"  {s}" for s in stage.after]
        lines.append("=== Final plan ===")
        lines += [f"  {s}" for s in self.final]
        if any(entry.statements or entry.notes for entry in self.step_sql):
            lines.append("=== SQL per step ===")
            for entry in self.step_sql:
                if not entry.statements and not entry.notes:
                    continue
                lines.append(f"  {entry.step}")
                for note in entry.notes:
                    lines.append(f"    -- {note}")
                for sql in entry.statements:
                    lines.append(f"    {sql}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ExplainResult({len(self.original)} -> {len(self.final)} steps)"


def describe_plan(steps: list["Step"]) -> list[str]:
    return [step.name() for step in steps]


def build_explain(traversal: "Traversal") -> ExplainResult:
    """Compute an explain plan without executing or mutating
    ``traversal`` (strategies run on a deep-copied plan)."""
    from ..graph.traversal import Traversal

    working = Traversal(traversal.source)
    working.steps = copy.deepcopy(traversal.steps)
    working._merge_pending_repeats()
    original = describe_plan(working.steps)

    stages: list[PlanStage] = []
    strategy_names: list[str] = []
    if traversal.source is not None:
        for strategy in traversal.source.strategies.in_order():
            strategy_names.append(strategy.name)
            before = describe_plan(working.steps)
            strategy.apply(working)
            after = describe_plan(working.steps)
            if before != after:
                stages.append(PlanStage(strategy.name, before, after))
    final = describe_plan(working.steps)

    provider = traversal.source.provider if traversal.source is not None else None
    step_sql = [preview_step_sql(provider, step) for step in working.steps]
    return ExplainResult(original, final, stages, step_sql, strategy_names)


# ---------------------------------------------------------------------------
# SQL previews (OverlayGraph only; other providers issue no SQL)
# ---------------------------------------------------------------------------


def preview_step_sql(provider: Any, step: "Step") -> StepSql:
    from ..core.graph_structure import OverlayGraph
    from ..graph.steps import GraphStep, VertexStep

    entry = StepSql(step.name())
    if not isinstance(provider, OverlayGraph):
        return entry
    if isinstance(step, GraphStep):
        if step.endpoint_filter is not None:
            _preview_endpoint_graph_step(provider, step, entry)
        elif step.return_type == "vertex":
            _preview_vertex_graph_step(provider, step, entry)
        else:
            _preview_edge_graph_step(provider, step, entry)
    elif isinstance(step, VertexStep):
        _preview_vertex_step(provider, step, entry)
    return entry


def _render(dialect: Any, table: str, columns: Any, predicates: list, pushdown: Any) -> str:
    aggregate = None
    if pushdown.aggregate is not None:
        kind = "sum_count" if pushdown.aggregate == "mean" else pushdown.aggregate
        key = None if pushdown.aggregate == "count" else pushdown.aggregate_key
        aggregate = (kind, key)
        columns = None
    sql, params = dialect.build_select(table, columns, predicates, aggregate)
    if params:
        return f"{sql}  [params: {', '.join(repr(p) for p in params)}]"
    return sql


def _preview_vertex_graph_step(provider: Any, step: Any, entry: StepSql) -> None:
    from ..core.sql_dialect import SqlPredicate

    pushdown = step.pushdown
    candidates, eliminated = provider._candidate_vertex_tables(pushdown, record=False)
    for table, rule in eliminated:
        entry.notes.append(f"table {table} eliminated ({rule})")
    for vtop in candidates:
        base = provider._sql_predicates(vtop, pushdown)
        columns = vtop.required_columns(provider._effective_projection(pushdown))
        if step.ids is None:
            entry.statements.append(
                _render(provider.dialect, vtop.table_name, columns, base, pushdown)
            )
            continue
        strict = provider.opts.use_prefixed_ids
        decoded = [
            values
            for vertex_id in step.ids
            if (values := vtop.id_template.decode(vertex_id, strict=strict)) is not None
        ]
        if not decoded:
            entry.notes.append(
                f"table {vtop.table_name} eliminated (prefixed_ids: no id decodes)"
            )
            continue
        if len(vtop.id_template.columns) == 1:
            column = vtop.relation.canonical(vtop.id_template.columns[0])
            values = tuple(
                dict.fromkeys(d[vtop.id_template.columns[0]] for d in decoded)
            )
            op = "=" if len(values) == 1 else "IN"
            probe = SqlPredicate(column, op, (values[0],) if op == "=" else values)
            entry.statements.append(
                _render(provider.dialect, vtop.table_name, columns, [probe] + base, pushdown)
            )
        else:
            for values_map in decoded:
                group = [
                    SqlPredicate(vtop.relation.canonical(col), "=", (value,))
                    for col, value in values_map.items()
                ]
                entry.statements.append(
                    _render(provider.dialect, vtop.table_name, columns, group + base, pushdown)
                )


def _preview_edge_graph_step(provider: Any, step: Any, entry: StepSql) -> None:
    pushdown = step.pushdown
    candidates, eliminated = provider._candidate_edge_tables(
        pushdown, edge_labels=None, record=False
    )
    for table, rule in eliminated:
        entry.notes.append(f"table {table} eliminated ({rule})")
    for etop in candidates:
        base = provider._sql_predicates(etop, pushdown)
        base.extend(provider._endpoint_predicates(etop, pushdown))
        columns = etop.required_columns(provider._effective_projection(pushdown))
        if step.ids is not None:
            entry.notes.append(
                f"table {etop.table_name}: one conjunctive lookup per decodable edge id "
                f"{step.ids!r}"
            )
        entry.statements.append(
            _render(provider.dialect, etop.table_name, columns, base, pushdown)
        )


def _preview_endpoint_graph_step(provider: Any, step: Any, entry: StepSql) -> None:
    """GraphStep::VertexStep-mutated step: edges fetched by endpoint."""
    from ..core.sql_dialect import SqlPredicate
    from ..graph.model import Direction, Vertex

    direction, vertex_ids = step.endpoint_filter
    pushdown = step.pushdown
    candidates, eliminated = provider._candidate_edge_tables(
        pushdown, pushdown.labels, record=False
    )
    for table, rule in eliminated:
        entry.notes.append(f"table {table} eliminated ({rule})")
    directions = (
        (Direction.OUT, Direction.IN) if direction is Direction.BOTH else (direction,)
    )
    vertices = [Vertex(v, provider=provider) for v in vertex_ids]
    for etop in candidates:
        for d in directions:
            matching = provider._vertices_matching_endpoint(etop, vertices, d)
            if not matching:
                entry.notes.append(
                    f"table {etop.table_name} eliminated for {d.value} endpoints "
                    f"(src_dst_tables/prefixed_ids)"
                )
                continue
            base = provider._sql_predicates(etop, pushdown)
            base.extend(provider._endpoint_predicates(etop, pushdown))
            base.extend(provider._edge_label_sql(etop, pushdown.labels))
            columns = etop.required_columns(provider._effective_projection(pushdown))
            for id_group in provider._endpoint_id_predicates(etop, matching, d):
                entry.statements.append(
                    _render(provider.dialect, etop.table_name, columns, id_group + base, pushdown)
                )


def _preview_vertex_step(provider: Any, step: Any, entry: StepSql) -> None:
    """out()/in()/outE()/... — SQL depends on the runtime vertex batch,
    so the endpoint predicate is shown with a placeholder IN-list."""
    from ..core.sql_dialect import SqlPredicate
    from ..graph.model import Direction, Pushdown

    edge_pushdown = step.pushdown if step.return_type == "edge" else Pushdown(labels=None)
    candidates, eliminated = provider._candidate_edge_tables(
        edge_pushdown, step.edge_labels, record=False
    )
    for table, rule in eliminated:
        entry.notes.append(f"table {table} eliminated ({rule})")
    directions = (
        (Direction.OUT, Direction.IN)
        if step.direction is Direction.BOTH
        else (step.direction,)
    )
    for etop in candidates:
        for d in directions:
            template = etop.src_template if d is Direction.OUT else etop.dst_template
            column = etop.relation.canonical(template.columns[0])
            base = provider._sql_predicates(etop, edge_pushdown)
            base.extend(provider._endpoint_predicates(etop, edge_pushdown))
            base.extend(provider._edge_label_sql(etop, step.edge_labels))
            columns = etop.required_columns(
                provider._effective_projection(edge_pushdown)
            )
            probe = SqlPredicate(column, "IN", ("<input vertex ids>",))
            entry.statements.append(
                _render(provider.dialect, etop.table_name, columns, [probe] + base, edge_pushdown)
            )
