"""Tests for graph mutation through the overlay (addV/addE -> SQL
INSERT) and the automatic catalog integration (§5.1 future work)."""

import pytest

from repro.core import Db2Graph
from repro.graph import TraversalError, __
from repro.relational import ConstraintViolationError, Database


@pytest.fixture
def social(db):
    db.execute("CREATE TABLE Person (id BIGINT PRIMARY KEY, name VARCHAR, city VARCHAR)")
    db.execute(
        "CREATE TABLE Knows (src BIGINT, dst BIGINT, since INT, "
        "FOREIGN KEY (src) REFERENCES Person (id), "
        "FOREIGN KEY (dst) REFERENCES Person (id))"
    )
    db.execute("INSERT INTO Person VALUES (1, 'ada', 'london')")
    overlay = {
        "v_tables": [
            {"table_name": "Person", "id": "id", "fix_label": True, "label": "'person'"}
        ],
        "e_tables": [
            {"table_name": "Knows", "src_v_table": "Person", "src_v": "src",
             "dst_v_table": "Person", "dst_v": "dst", "implicit_edge_id": True,
             "fix_label": True, "label": "'knows'"}
        ],
    }
    return db, Db2Graph.open(db, overlay)


class TestAddVertex:
    def test_addv_inserts_sql_row(self, social):
        db, graph = social
        vertex = (
            graph.traversal()
            .addV("person")
            .property("id", 2)
            .property("name", "grace")
            .next()
        )
        assert vertex.id == 2 and vertex.value("name") == "grace"
        assert db.execute("SELECT name FROM Person WHERE id = 2").rows == [("grace",)]

    def test_addv_visible_to_next_traversal(self, social):
        _db, graph = social
        graph.traversal().addV("person").property("id", 3).property("name", "alan").iterate()
        assert graph.traversal().V(3).values("name").toList() == ["alan"]

    def test_addv_unknown_label_rejected(self, social):
        _db, graph = social
        with pytest.raises(TraversalError):
            graph.traversal().addV("robot").next()

    def test_addv_unknown_property_rejected(self, social):
        _db, graph = social
        with pytest.raises(TraversalError):
            graph.traversal().addV("person").property("id", 9).property("nope", 1).next()

    def test_addv_pk_violation_surfaces(self, social):
        _db, graph = social
        with pytest.raises(ConstraintViolationError):
            graph.traversal().addV("person").property("id", 1).next()  # duplicate


class TestAddEdge:
    def test_adde_inserts_sql_row(self, social):
        db, graph = social
        graph.traversal().addV("person").property("id", 2).iterate()
        edge = (
            graph.traversal().addE("knows").from_(1).to(2).property("since", 1950).next()
        )
        assert edge.out_v_id == 1 and edge.in_v_id == 2
        assert db.execute("SELECT since FROM Knows").rows == [(1950,)]
        assert graph.traversal().V(1).out("knows").count().next() == 1

    def test_adde_from_traversals(self, social):
        _db, graph = social
        graph.traversal().addV("person").property("id", 2).property("name", "g").iterate()
        graph.traversal().addE("knows").from_(
            __.V().has("name", "ada")
        ).to(__.V().has("name", "g")).iterate()
        assert graph.traversal().V(1).out("knows").values("name").toList() == ["g"]

    def test_adde_fk_violation_surfaces(self, social):
        _db, graph = social
        with pytest.raises(ConstraintViolationError):
            graph.traversal().addE("knows").from_(1).to(99).next()

    def test_adde_respects_transactions(self, social):
        db, graph = social
        conn = graph.connection
        conn.begin()
        graph.traversal().addV("person").property("id", 5).iterate()
        conn.rollback()
        assert db.execute("SELECT COUNT(*) FROM Person").scalar() == 1

    def test_adde_mid_traversal(self, social):
        _db, graph = social
        graph.traversal().addV("person").property("id", 2).iterate()
        # every person adds a self-referential marker edge to ada
        graph.traversal().V(2).addE("knows").to(1).iterate()
        assert graph.traversal().V(2).out("knows").count().next() == 1


class TestAutoRefresh:
    def test_manual_overlay_picks_up_new_columns(self, db):
        db.execute("CREATE TABLE T (id INT PRIMARY KEY, a VARCHAR)")
        db.execute("INSERT INTO T VALUES (1, 'x')")
        overlay = {
            "v_tables": [
                # properties omitted -> inferred from remaining columns
                {"table_name": "T", "id": "id", "fix_label": True, "label": "'t'"}
            ],
            "e_tables": [],
        }
        graph = Db2Graph.open(db, overlay, auto_refresh=True)
        assert graph.traversal().V(1).next().keys() == ["a"]
        # widen the table: recreate with an extra column (no ALTER in
        # our SQL subset) — the refresh picks it up
        db.execute("DROP TABLE T")
        db.execute("CREATE TABLE T (id INT PRIMARY KEY, a VARCHAR, b INT)")
        db.execute("INSERT INTO T VALUES (1, 'x', 7)")
        vertex = graph.traversal().V(1).next()
        assert vertex.value("b") == 7
        assert graph.refresh_count >= 1

    def test_no_refresh_when_disabled(self, db):
        db.execute("CREATE TABLE T (id INT PRIMARY KEY, a VARCHAR)")
        overlay = {
            "v_tables": [
                {"table_name": "T", "id": "id", "fix_label": True, "label": "'t'"}
            ],
            "e_tables": [],
        }
        graph = Db2Graph.open(db, overlay, auto_refresh=False)
        db.execute("CREATE TABLE Unrelated (x INT)")
        graph.traversal().V().toList()
        assert graph.refresh_count == 0

    def test_open_auto_regenerates_on_new_table(self, db):
        db.execute("CREATE TABLE A (id INT PRIMARY KEY, v VARCHAR)")
        db.execute("INSERT INTO A VALUES (1, 'a')")
        graph = Db2Graph.open_auto(db)
        assert graph.traversal().V().count().next() == 1
        # a brand-new table with a PK+FK appears in the graph automatically
        db.execute(
            "CREATE TABLE B (id INT PRIMARY KEY, a_id INT, "
            "FOREIGN KEY (a_id) REFERENCES A (id))"
        )
        db.execute("INSERT INTO B VALUES (10, 1)")
        g = graph.traversal()
        assert g.V().count().next() == 2
        assert g.V("B::10").out("B_A").count().next() == 1
        assert graph.refresh_count >= 1

    def test_open_auto_with_subset_stays_scoped(self, db):
        db.execute("CREATE TABLE A (id INT PRIMARY KEY)")
        db.execute("CREATE TABLE Z (id INT PRIMARY KEY)")
        db.execute("INSERT INTO A VALUES (1)")
        db.execute("INSERT INTO Z VALUES (9)")
        graph = Db2Graph.open_auto(db, ["A"])
        db.execute("CREATE TABLE Newcomer (id INT PRIMARY KEY)")
        assert graph.traversal().V().count().next() == 1  # still just A
