"""Unit tests for three-valued logic and SQL operators."""

import pytest
from hypothesis import given, strategies as st

from repro.relational import values as V
from repro.relational.errors import ExecutionError


class TestComparisons:
    def test_eq_basics(self):
        assert V.sql_eq(1, 1) is True
        assert V.sql_eq(1, 2) is False
        assert V.sql_eq("a", "a") is True

    def test_eq_int_float(self):
        assert V.sql_eq(1, 1.0) is True

    def test_null_propagates_unknown(self):
        for func in (V.sql_eq, V.sql_ne, V.sql_lt, V.sql_le, V.sql_gt, V.sql_ge):
            assert func(None, 1) is None
            assert func(1, None) is None
            assert func(None, None) is None

    def test_ordering(self):
        assert V.sql_lt(1, 2) is True
        assert V.sql_le(2, 2) is True
        assert V.sql_gt(3, 2) is True
        assert V.sql_ge(2, 3) is False

    def test_string_ordering(self):
        assert V.sql_lt("apple", "banana") is True

    def test_cross_type_comparison_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_lt(1, "a")

    def test_bool_vs_int_comparison_raises(self):
        with pytest.raises(ExecutionError):
            V._compare(True, 1)


class TestBooleanLogic:
    def test_and_truth_table(self):
        assert V.sql_and(True, True) is True
        assert V.sql_and(True, False) is False
        assert V.sql_and(False, None) is False  # False dominates UNKNOWN
        assert V.sql_and(True, None) is None
        assert V.sql_and(None, None) is None

    def test_or_truth_table(self):
        assert V.sql_or(False, False) is False
        assert V.sql_or(True, None) is True  # True dominates UNKNOWN
        assert V.sql_or(False, None) is None
        assert V.sql_or(None, None) is None

    def test_not(self):
        assert V.sql_not(True) is False
        assert V.sql_not(False) is True
        assert V.sql_not(None) is None

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_property_de_morgan(self, a, b):
        assert V.sql_not(V.sql_and(a, b)) == V.sql_or(V.sql_not(a), V.sql_not(b))

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_property_commutativity(self, a, b):
        assert V.sql_and(a, b) == V.sql_and(b, a)
        assert V.sql_or(a, b) == V.sql_or(b, a)

    @given(
        st.sampled_from([True, False, None]),
        st.sampled_from([True, False, None]),
        st.sampled_from([True, False, None]),
    )
    def test_property_associativity(self, a, b, c):
        assert V.sql_and(V.sql_and(a, b), c) == V.sql_and(a, V.sql_and(b, c))
        assert V.sql_or(V.sql_or(a, b), c) == V.sql_or(a, V.sql_or(b, c))

    @given(st.sampled_from([True, False, None]))
    def test_property_double_negation(self, a):
        assert V.sql_not(V.sql_not(a)) == a


class TestLike:
    def test_percent_wildcard(self):
        assert V.sql_like("hello", "he%") is True
        assert V.sql_like("hello", "%lo") is True
        assert V.sql_like("hello", "%ell%") is True
        assert V.sql_like("hello", "x%") is False

    def test_underscore_wildcard(self):
        assert V.sql_like("cat", "c_t") is True
        assert V.sql_like("cart", "c_t") is False

    def test_regex_metacharacters_are_literal(self):
        assert V.sql_like("a.b", "a.b") is True
        assert V.sql_like("axb", "a.b") is False

    def test_null_is_unknown(self):
        assert V.sql_like(None, "a%") is None
        assert V.sql_like("a", None) is None

    def test_non_string_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_like(1, "%")

    # Alphabet excludes the LIKE metacharacters so prefixes are literal.
    _literal = st.text(
        alphabet=st.characters(blacklist_characters="%_", blacklist_categories=("Cs",)),
        max_size=10,
    )

    @given(_literal, _literal)
    def test_property_literal_prefix(self, prefix, rest):
        value = prefix + rest
        assert V.sql_like(value, prefix + "%") is True
        assert V.sql_like(value, value) is True

    @given(_literal, _literal)
    def test_property_literal_suffix(self, rest, suffix):
        assert V.sql_like(rest + suffix, "%" + suffix) is True

    @given(_literal)
    def test_property_underscore_matches_exactly_one(self, value):
        # '_' per character matches the string itself; one extra '_'
        # (wrong length) never does.
        assert V.sql_like(value, "_" * len(value)) is True
        assert V.sql_like(value, "_" * (len(value) + 1)) is False


class TestArithmetic:
    def test_add_sub_mul(self):
        assert V.sql_add(2, 3) == 5
        assert V.sql_sub(5, 3) == 2
        assert V.sql_mul(4, 3) == 12

    def test_null_propagates(self):
        assert V.sql_add(None, 1) is None
        assert V.sql_div(1, None) is None

    def test_integer_division_truncates_toward_zero(self):
        assert V.sql_div(7, 2) == 3
        assert V.sql_div(-7, 2) == -3

    def test_float_division(self):
        assert V.sql_div(7.0, 2) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_div(1, 0)

    def test_non_numeric_raises(self):
        with pytest.raises(ExecutionError):
            V.sql_add("a", 1)
        with pytest.raises(ExecutionError):
            V.sql_mul(True, 2)

    def test_concat(self):
        assert V.sql_concat("a", "b") == "ab"
        assert V.sql_concat("a", 1) == "a1"
        assert V.sql_concat(None, "b") is None
        assert V.sql_concat(True, "!") == "TRUE!"

    @given(st.integers(), st.integers(min_value=1))
    def test_property_division_identity(self, a, b):
        q = V.sql_div(a, b)
        r = a - q * b
        assert abs(r) < b
        # truncation toward zero: remainder has the dividend's sign
        assert r == 0 or (r > 0) == (a > 0)


_numbers = st.one_of(
    st.integers(-10**6, 10**6), st.floats(-1e6, 1e6, allow_nan=False)
)


class TestComparisonProperties:
    @given(_numbers, _numbers)
    def test_trichotomy(self, a, b):
        # Exactly one of <, =, > holds for comparable non-NULL values.
        assert [V.sql_lt(a, b), V.sql_eq(a, b), V.sql_gt(a, b)].count(True) == 1

    @given(_numbers, _numbers, _numbers)
    def test_transitivity(self, a, b, c):
        if V.sql_le(a, b) is True and V.sql_le(b, c) is True:
            assert V.sql_le(a, c) is True

    @given(_numbers, _numbers)
    def test_duality(self, a, b):
        assert V.sql_lt(a, b) == V.sql_gt(b, a)
        assert V.sql_le(a, b) == V.sql_ge(b, a)
        assert V.sql_ne(a, b) == V.sql_not(V.sql_eq(a, b))


class TestNullPropagationProperties:
    @given(st.one_of(st.none(), _numbers))
    def test_every_operator_is_strict_in_null(self, x):
        # NULL on either side makes every comparison and arithmetic
        # operator yield NULL (UNKNOWN), whatever the other operand.
        for func in (
            V.sql_eq, V.sql_ne, V.sql_lt, V.sql_le, V.sql_gt, V.sql_ge,
            V.sql_add, V.sql_sub, V.sql_mul, V.sql_div,
        ):
            assert func(None, x) is None
            assert func(x, None) is None
        assert V.sql_concat(None, x) is None
        assert V.sql_concat(x, None) is None
