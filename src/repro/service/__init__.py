"""Multi-session graph service layer.

Multiplexes many logical graph sessions — each with its own
connection, transaction scope, budget, and retry policy — over one
shared :class:`~repro.relational.database.Database`, with bounded
admission control, deadline-aware shedding, fair dispatch onto a
shared worker pool, and graceful drain/shutdown.
"""

from .admission import AdmissionQueue, Request
from .config import (
    DEFAULT_MAX_SESSIONS,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_WORKERS,
    QUEUE_ENV,
    SESSIONS_ENV,
    ServiceConfig,
    resolve_max_sessions,
    resolve_queue_depth,
)
from .errors import (
    AdmissionRejectedError,
    RequestShedError,
    ServiceDrainingError,
    ServiceError,
    SessionClosedError,
    SessionLimitError,
)
from .history import (
    HistoryCheckResult,
    HistoryOp,
    HistoryRecorder,
    check_history,
)
from .service import GraphService
from .session import GraphSession

__all__ = [
    "AdmissionQueue",
    "AdmissionRejectedError",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_WORKERS",
    "GraphService",
    "GraphSession",
    "HistoryCheckResult",
    "HistoryOp",
    "HistoryRecorder",
    "QUEUE_ENV",
    "Request",
    "RequestShedError",
    "SESSIONS_ENV",
    "ServiceConfig",
    "ServiceDrainingError",
    "ServiceError",
    "SessionClosedError",
    "SessionLimitError",
    "check_history",
    "resolve_max_sessions",
    "resolve_queue_depth",
]
