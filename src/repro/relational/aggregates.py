"""Aggregate function accumulators (COUNT, SUM, AVG, MIN, MAX).

Each accumulator follows SQL NULL semantics: NULL inputs are skipped,
and SUM/AVG/MIN/MAX over an empty (or all-NULL) group yield NULL while
COUNT yields 0.
"""

from __future__ import annotations

from typing import Any

from .errors import ExecutionError
from .values import _compare  # total-order compare with type checking


class Accumulator:
    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """COUNT(expr) counts non-NULL values; COUNT(*) counts rows."""

    def __init__(self, count_rows: bool = False):
        self.count_rows = count_rows
        self._count = 0

    def add(self, value: Any) -> None:
        if self.count_rows or value is not None:
            self._count += 1

    def result(self) -> int:
        return self._count


class SumAccumulator(Accumulator):
    def __init__(self) -> None:
        self._sum: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"SUM requires numeric input, got {value!r}")
        self._sum = value if self._sum is None else self._sum + value

    def result(self) -> Any:
        return self._sum


class AvgAccumulator(Accumulator):
    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"AVG requires numeric input, got {value!r}")
        self._sum += value
        self._count += 1

    def result(self) -> float | None:
        return self._sum / self._count if self._count else None


class MinAccumulator(Accumulator):
    def __init__(self) -> None:
        self._min: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._min is None or _compare(value, self._min) < 0:
            self._min = value

    def result(self) -> Any:
        return self._min


class MaxAccumulator(Accumulator):
    def __init__(self) -> None:
        self._max: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._max is None or _compare(value, self._max) > 0:
            self._max = value

    def result(self) -> Any:
        return self._max


def make_accumulator(name: str, star: bool = False) -> Accumulator:
    upper = name.upper()
    if upper == "COUNT":
        return CountAccumulator(count_rows=star)
    if upper == "SUM":
        return SumAccumulator()
    if upper == "AVG":
        return AvgAccumulator()
    if upper == "MIN":
        return MinAccumulator()
    if upper == "MAX":
        return MaxAccumulator()
    raise ExecutionError(f"unknown aggregate {name!r}")
