"""Query planner and physical plan operators.

The planner turns a SELECT AST into a tree of iterator-style plan
nodes.  Planning resolves column references to tuple positions and
picks indexes; execution then only runs compiled closures per row.

Optimizations implemented (the ones the paper's generated SQL relies
on — the graph layer counts on the relational engine doing its part):

* WHERE-conjunct pushdown into single-table scans;
* index selection: equality conjuncts (including IN lists) probe hash
  or sorted indexes; range conjuncts use sorted indexes;
* hash joins for equi-join conditions, nested loops otherwise;
* aggregation without materializing input (streaming accumulators).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from . import sql_ast as A
from .aggregates import make_accumulator
from .catalog import Table, View
from .errors import CatalogError, ExecutionError, SqlSyntaxError
from .expressions import (
    BinaryOp,
    Between,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Param,
    Scope,
    UnaryOp,
    contains_aggregate,
    split_conjuncts,
)
from .values import _compare


@dataclass
class ExecContext:
    """Everything a running statement needs at execution time."""

    database: Any  # Database (untyped to avoid import cycle)
    session: Any  # Connection
    params: Sequence[Any] = ()
    snapshot_csn: int = 0
    txn_id: int | None = None

    def scalar(self, expr: Expression, scope: Scope | None = None) -> Any:
        """Evaluate an expression that needs no input row."""
        compiled = expr.compile(scope or Scope([]))
        return compiled((), self)


ColumnList = list[tuple[str | None, str]]


class PlanNode:
    """Base class: ``columns`` (qualifier, name) and a row iterator."""

    columns: ColumnList

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        raise NotImplementedError

    def scope(self) -> Scope:
        return Scope(self.columns)

    def explain(self, depth: int = 0) -> str:
        lines = ["  " * depth + self._describe()]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> list["PlanNode"]:
        return []


class ConstantRowNode(PlanNode):
    """FROM-less SELECT: a single empty row."""

    def __init__(self) -> None:
        self.columns: ColumnList = []

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        yield ()


class TableScanNode(PlanNode):
    """Scan of a base table, with index selection and residual filter.

    Index strategy is chosen at plan time from the pushed-down
    conjuncts; key *values* are computed at run time, so the same plan
    works for prepared statements with parameter markers.
    """

    def __init__(self, table: Table, alias: str, conjuncts: list[Expression], as_of: Expression | None):
        self.table = table
        self.alias = alias
        self.as_of = as_of
        schema = table.schema
        self.columns = [(alias, c.name) for c in schema.columns]
        scope = self.scope()

        self._access_path = "scan"
        self._index = None
        self._key_fns: list[Callable] = []
        self._in_fns: list[Callable] | None = None
        self._range_low: tuple[Callable, bool] | None = None
        self._range_high: tuple[Callable, bool] | None = None
        residual = list(conjuncts)

        eq_map: dict[str, Expression] = {}
        in_map: dict[str, InList] = {}
        range_map: dict[str, list[tuple[str, Expression]]] = {}
        for conjunct in conjuncts:
            kind = _classify_conjunct(conjunct, alias, schema)
            if kind is None:
                continue
            form, column, payload = kind
            if form == "eq" and column not in eq_map:
                eq_map[column] = payload
            elif form == "in" and column not in in_map and column not in eq_map:
                in_map[column] = payload
            elif form == "range":
                range_map.setdefault(column, []).append(payload)

        # NOTE: conjuncts that select the index key deliberately STAY in
        # the residual filter — index entries are never removed under
        # MVCC (a row version may have changed the key), so every probe
        # is post-verified against the visible version's actual values.

        # 1) full equality cover of an index -> point lookups
        best: tuple[Any, list[str]] | None = None
        for index in table.storage.indexes.values():
            cols = [c.lower() for c in index.columns]
            if all(c in eq_map for c in cols):
                if best is None or len(cols) > len(best[1]):
                    best = (index, cols)
        if best is not None:
            index, cols = best
            self._access_path = "index_eq"
            self._index = index
            self._key_fns = [eq_map[c].compile(scope) for c in cols]
        else:
            # 2) single-column index + IN list -> multiple probes
            for index in table.storage.indexes.values():
                cols = [c.lower() for c in index.columns]
                if len(cols) == 1 and cols[0] in in_map:
                    in_list = in_map[cols[0]]
                    self._access_path = "index_in"
                    self._index = index
                    self._in_fns = [item.compile(scope) for item in in_list.items]
                    break
            else:
                # 3) sorted index + range conjunct(s) on its first column
                for index in table.storage.indexes.values():
                    if not index.supports_range():
                        continue
                    first = index.columns[0].lower()
                    if first in range_map:
                        self._access_path = "index_range"
                        self._index = index
                        for op, value_expr in range_map[first]:
                            compiled = value_expr.compile(scope)
                            if op in (">", ">="):
                                self._range_low = (compiled, op == ">=")
                            else:
                                self._range_high = (compiled, op == "<=")
                        # range conjuncts stay in the residual filter —
                        # the index probe is a superset under MVCC.
                        break

        self._residual_fns = [c.compile(scope) for c in residual]
        self.rows_scanned = 0

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        storage = self.table.storage
        as_of_ts: float | None = None
        if self.as_of is not None:
            as_of_ts = ctx.scalar(self.as_of)
            if as_of_ts is None:
                raise ExecutionError("AS OF timestamp evaluated to NULL")
            as_of_ts = float(as_of_ts)

        if self._access_path == "index_eq":
            key = tuple(fn((), ctx) for fn in self._key_fns)
            candidates: Iterable[int] = sorted(self._index.lookup(key))
        elif self._access_path == "index_in":
            ids: set[int] = set()
            for fn in self._in_fns or ():
                value = fn((), ctx)
                ids.update(self._index.lookup((value,)))
            candidates = sorted(ids)
        elif self._access_path == "index_range":
            low = high = None
            low_inc = high_inc = True
            if self._range_low is not None:
                low = (self._range_low[0]((), ctx),)
                low_inc = self._range_low[1]
            if self._range_high is not None:
                high = (self._range_high[0]((), ctx),)
                high_inc = self._range_high[1]
            candidates = sorted(set(self._index.range(low, high, low_inc, high_inc)))
        else:
            candidates = None  # full scan

        if candidates is None:
            iterator = storage.scan(ctx.snapshot_csn, ctx.txn_id, as_of_ts)
        else:
            iterator = (
                (rowid, values)
                for rowid in candidates
                if (values := storage.fetch(rowid, ctx.snapshot_csn, ctx.txn_id, as_of_ts))
                is not None
            )

        residuals = self._residual_fns
        for _rowid, values in iterator:
            self.rows_scanned += 1
            if all(fn(values, ctx) is True for fn in residuals):
                yield values

    def _describe(self) -> str:
        detail = self._access_path
        if self._index is not None:
            detail += f" via {self._index.name}"
        return f"TableScan({self.table.name} AS {self.alias}, {detail})"


def _classify_conjunct(
    conjunct: Expression, alias: str, schema
) -> tuple[str, str, Any] | None:
    """Recognize index-usable conjunct shapes on this table's columns."""
    alias_l = alias.lower()

    def own_column(expr: Expression) -> str | None:
        if not isinstance(expr, ColumnRef):
            return None
        if expr.qualifier is not None and expr.qualifier.lower() != alias_l:
            return None
        if not schema.has_column(expr.name):
            return None
        return expr.name.lower()

    def is_value(expr: Expression) -> bool:
        return not expr.references()

    if isinstance(conjunct, BinaryOp) and conjunct.op in ("=", "<", "<=", ">", ">="):
        left_col = own_column(conjunct.left)
        if left_col is not None and is_value(conjunct.right):
            if conjunct.op == "=":
                return ("eq", left_col, conjunct.right)
            return ("range", left_col, (conjunct.op, conjunct.right))
        right_col = own_column(conjunct.right)
        if right_col is not None and is_value(conjunct.left):
            if conjunct.op == "=":
                return ("eq", right_col, conjunct.left)
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[conjunct.op]
            return ("range", right_col, (flipped, conjunct.left))
    if isinstance(conjunct, InList) and not conjunct.negated:
        column = own_column(conjunct.expr)
        if column is not None and all(is_value(i) for i in conjunct.items):
            return ("in", column, conjunct)
    return None


class AliasNode(PlanNode):
    """Re-qualifies a child's output columns under a new alias (views,
    subqueries)."""

    def __init__(self, child: PlanNode, alias: str):
        self.child = child
        self.alias = alias
        self.columns = [(alias, name) for _q, name in child.columns]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        return self.child.rows(ctx)

    def _describe(self) -> str:
        return f"Alias({self.alias})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class TableFunctionNode(PlanNode):
    """TABLE(func(args)) AS alias (col type, ...) — calls a registered
    polymorphic table function and coerces rows to the declared types."""

    def __init__(self, func: Callable, args: list[Expression], alias: str, columns: list[tuple[str, Any]]):
        self.func = func
        self.args = args
        self.alias = alias
        self.declared = columns
        self.columns = [(alias, name) for name, _t in columns]
        self._arg_fns = [a.compile(Scope([])) for a in args]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        arg_values = [fn((), ctx) for fn in self._arg_fns]
        width = len(self.declared)
        for row in self.func(ctx.session, *arg_values):
            row = tuple(row)
            if len(row) != width:
                raise ExecutionError(
                    f"table function returned {len(row)} columns, expected {width}"
                )
            yield tuple(t.coerce(v) for (_n, t), v in zip(self.declared, row))

    def _describe(self) -> str:
        return f"TableFunction({self.alias})"


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self.columns = child.columns
        self._fn = predicate.compile(child.scope())

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        fn = self._fn
        for row in self.child.rows(ctx):
            if fn(row, ctx) is True:
                yield row

    def _describe(self) -> str:
        return f"Filter({self.predicate.sql()})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class NestedLoopJoinNode(PlanNode):
    def __init__(self, left: PlanNode, right: PlanNode, kind: str, on: Expression | None):
        self.left = left
        self.right = right
        self.kind = kind
        self.columns = left.columns + right.columns
        self._on_fn = on.compile(self.scope()) if on is not None else None

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        right_rows = list(self.right.rows(ctx))
        pad = (None,) * len(self.right.columns)
        for lrow in self.left.rows(ctx):
            matched = False
            for rrow in right_rows:
                combined = lrow + rrow
                if self._on_fn is None or self._on_fn(combined, ctx) is True:
                    matched = True
                    yield combined
            if self.kind == "LEFT" and not matched:
                yield lrow + pad

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.kind})"

    def _children(self) -> list[PlanNode]:
        return [self.left, self.right]


class HashJoinNode(PlanNode):
    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[Expression],
        right_keys: list[Expression],
        kind: str,
        residual: Expression | None,
    ):
        self.left = left
        self.right = right
        self.kind = kind
        self.columns = left.columns + right.columns
        self._left_fns = [k.compile(left.scope()) for k in left_keys]
        self._right_fns = [k.compile(right.scope()) for k in right_keys]
        self._residual_fn = residual.compile(self.scope()) if residual is not None else None

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        for rrow in self.right.rows(ctx):
            key = tuple(fn(rrow, ctx) for fn in self._right_fns)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(rrow)
        pad = (None,) * len(self.right.columns)
        for lrow in self.left.rows(ctx):
            key = tuple(fn(lrow, ctx) for fn in self._left_fns)
            matched = False
            if not any(part is None for part in key):
                for rrow in table.get(key, ()):
                    combined = lrow + rrow
                    if self._residual_fn is None or self._residual_fn(combined, ctx) is True:
                        matched = True
                        yield combined
            if self.kind == "LEFT" and not matched:
                yield lrow + pad

    def _describe(self) -> str:
        return f"HashJoin({self.kind})"

    def _children(self) -> list[PlanNode]:
        return [self.left, self.right]


class ProjectNode(PlanNode):
    def __init__(self, child: PlanNode, items: list[tuple[Expression, str]]):
        self.child = child
        self.columns = [(None, name) for _e, name in items]
        scope = child.scope()
        self._fns = [expr.compile(scope) for expr, _name in items]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        fns = self._fns
        for row in self.child.rows(ctx):
            yield tuple(fn(row, ctx) for fn in fns)

    def _describe(self) -> str:
        return f"Project({[n for _q, n in self.columns]})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class _AggSpec:
    call: FunctionCall
    arg_fn: Callable | None  # None for COUNT(*)


class AggregateNode(PlanNode):
    """Hash aggregation producing the final select-item outputs.

    Select items and HAVING are rewritten so group expressions and
    aggregate calls become references into the per-group result row.
    """

    def __init__(
        self,
        child: PlanNode,
        group_exprs: list[Expression],
        items: list[tuple[Expression, str]],
        having: Expression | None,
    ):
        self.child = child
        self.group_exprs = group_exprs
        child_scope = child.scope()
        self._group_fns = [g.compile(child_scope) for g in group_exprs]

        # Discover aggregate calls across select items and HAVING.
        self._agg_specs: list[_AggSpec] = []
        agg_index: dict[str, int] = {}

        def register(call: FunctionCall) -> int:
            key = call.sql()
            if key not in agg_index:
                arg_fn = None
                if not call.star:
                    if len(call.args) != 1:
                        raise SqlSyntaxError(
                            f"aggregate {call.name.upper()} expects one argument"
                        )
                    arg_fn = call.args[0].compile(child_scope)
                agg_index[key] = len(self._agg_specs)
                self._agg_specs.append(_AggSpec(call, arg_fn))
            return agg_index[key]

        group_sql = {g.sql(): i for i, g in enumerate(group_exprs)}
        n_groups = len(group_exprs)

        def rewrite(expr: Expression) -> Expression:
            if expr.sql() in group_sql:
                return ColumnRef(None, f"__g{group_sql[expr.sql()]}")
            if isinstance(expr, FunctionCall) and expr.is_aggregate:
                return ColumnRef(None, f"__a{register(expr)}")
            if isinstance(expr, BinaryOp):
                return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
            if isinstance(expr, UnaryOp):
                return UnaryOp(expr.op, rewrite(expr.operand))
            if isinstance(expr, FunctionCall):
                return FunctionCall(expr.name, tuple(rewrite(a) for a in expr.args))
            if isinstance(expr, InList):
                return InList(rewrite(expr.expr), tuple(rewrite(i) for i in expr.items), expr.negated)
            if isinstance(expr, Between):
                return Between(rewrite(expr.expr), rewrite(expr.low), rewrite(expr.high), expr.negated)
            if isinstance(expr, IsNull):
                return IsNull(rewrite(expr.expr), expr.negated)
            if isinstance(expr, (Literal, Param)):
                return expr
            if isinstance(expr, ColumnRef):
                raise SqlSyntaxError(
                    f"column {expr.sql()!r} must appear in GROUP BY or an aggregate"
                )
            return expr

        rewritten_items = [(rewrite(e), name) for e, name in items]
        rewritten_having = rewrite(having) if having is not None else None

        internal_columns: ColumnList = [(None, f"__g{i}") for i in range(n_groups)]
        internal_columns += [(None, f"__a{i}") for i in range(len(self._agg_specs))]
        internal_scope = Scope(internal_columns)
        self._item_fns = [e.compile(internal_scope) for e, _n in rewritten_items]
        self._having_fn = (
            rewritten_having.compile(internal_scope) if rewritten_having is not None else None
        )
        self.columns = [(None, name) for _e, name in items]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        for row in self.child.rows(ctx):
            key = tuple(fn(row, ctx) for fn in self._group_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [make_accumulator(s.call.name, s.call.star) for s in self._agg_specs]
                groups[key] = accumulators
            for spec, acc in zip(self._agg_specs, accumulators):
                acc.add(True if spec.arg_fn is None else spec.arg_fn(row, ctx))
        if not groups and not self.group_exprs:
            groups[()] = [make_accumulator(s.call.name, s.call.star) for s in self._agg_specs]
        for key, accumulators in groups.items():
            internal = key + tuple(acc.result() for acc in accumulators)
            if self._having_fn is not None and self._having_fn(internal, ctx) is not True:
                continue
            yield tuple(fn(internal, ctx) for fn in self._item_fns)

    def _describe(self) -> str:
        return f"Aggregate(groups={len(self.group_exprs)}, aggs={len(self._agg_specs)})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class SortNode(PlanNode):
    def __init__(self, child: PlanNode, order_items: list[A.OrderItem]):
        self.child = child
        self.columns = child.columns
        scope = child.scope()
        self._keys = [(item.expr.compile(scope), item.descending) for item in order_items]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        materialized = list(self.child.rows(ctx))
        keys = self._keys

        def compare(a: tuple, b: tuple) -> int:
            for fn, descending in keys:
                va, vb = fn(a, ctx), fn(b, ctx)
                if va is None and vb is None:
                    continue
                if va is None:
                    result = -1
                elif vb is None:
                    result = 1
                else:
                    result = _compare(va, vb)
                if result:
                    return -result if descending else result
            return 0

        materialized.sort(key=functools.cmp_to_key(compare))
        return iter(materialized)

    def _describe(self) -> str:
        return f"Sort({len(self._keys)} keys)"

    def _children(self) -> list[PlanNode]:
        return [self.child]


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode):
        self.child = child
        self.columns = child.columns

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows(ctx):
            if row not in seen:
                seen.add(row)
                yield row

    def _children(self) -> list[PlanNode]:
        return [self.child]


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, limit: int):
        self.child = child
        self.limit = limit
        self.columns = child.columns

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        count = 0
        for row in self.child.rows(ctx):
            if count >= self.limit:
                return
            count += 1
            yield row

    def _describe(self) -> str:
        return f"Limit({self.limit})"

    def _children(self) -> list[PlanNode]:
        return [self.child]


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


@dataclass
class PlannedSelect:
    root: PlanNode
    output_names: list[str]
    # Relations touched, as (name, privilege) — checked per execution so
    # cached prepared plans still honour GRANT/REVOKE changes.
    accessed: list[tuple[str, str]] = field(default_factory=list)
    scanned_tables: list[str] = field(default_factory=list)


class UnionNode(PlanNode):
    """Concatenate branch outputs; branch arity must match (column
    names come from the first branch).  UNION (without ALL) dedups."""

    def __init__(self, branches: list[PlanNode], all_flags: list[bool]):
        widths = {len(b.columns) for b in branches}
        if len(widths) != 1:
            raise SqlSyntaxError(
                f"UNION branches have different column counts: {sorted(widths)}"
            )
        self.branches = branches
        # SQL semantics: a single non-ALL UNION anywhere dedups the result
        self.dedup = not all(all_flags)
        self.columns = [(None, name) for _q, name in branches[0].columns]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        if not self.dedup:
            for branch in self.branches:
                yield from branch.rows(ctx)
            return
        seen: set[tuple] = set()
        for branch in self.branches:
            for row in branch.rows(ctx):
                if row not in seen:
                    seen.add(row)
                    yield row

    def _describe(self) -> str:
        return f"Union({'DISTINCT' if self.dedup else 'ALL'}, {len(self.branches)})"

    def _children(self) -> list[PlanNode]:
        return list(self.branches)


class Planner:
    def __init__(self, database: Any):
        self.database = database

    def plan_select(self, stmt: "A.SelectStmt | A.UnionStmt") -> PlannedSelect:
        accessed: list[tuple[str, str]] = []
        scanned: list[str] = []
        if isinstance(stmt, A.UnionStmt):
            root = self._plan_union(stmt, accessed, scanned)
        else:
            root = self._plan_query(stmt, accessed, scanned)
        names = [name for _q, name in root.columns]
        return PlannedSelect(root, names, accessed, scanned)

    def _plan_select_or_union(
        self, stmt: "A.SelectStmt | A.UnionStmt", accessed: list, scanned: list
    ) -> PlanNode:
        if isinstance(stmt, A.UnionStmt):
            return self._plan_union(stmt, accessed, scanned)
        return self._plan_query(stmt, accessed, scanned)

    def _plan_union(
        self, stmt: A.UnionStmt, accessed: list[tuple[str, str]], scanned: list[str]
    ) -> PlanNode:
        branches = [self._plan_query(s, accessed, scanned) for s in stmt.selects]
        node: PlanNode = UnionNode(branches, stmt.all_flags)
        if stmt.order_by:
            node = SortNode(node, stmt.order_by)
        if stmt.limit is not None:
            node = LimitNode(node, stmt.limit)
        return node

    # -- query block --------------------------------------------------------

    def _plan_query(
        self, stmt: A.SelectStmt, accessed: list[tuple[str, str]], scanned: list[str]
    ) -> PlanNode:
        where_conjuncts = split_conjuncts(stmt.where)

        if stmt.from_first is None:
            node: PlanNode = ConstantRowNode()
            remaining = list(where_conjuncts)
        else:
            node, remaining = self._plan_from_tree(stmt, where_conjuncts, accessed, scanned)

        for conjunct in remaining:
            node = FilterNode(node, conjunct)

        has_aggregates = bool(stmt.group_by) or any(
            isinstance(item, A.SelectItem) and contains_aggregate(item.expr)
            for item in stmt.items
        ) or (stmt.having is not None and contains_aggregate(stmt.having))

        pre_projection = node
        if has_aggregates:
            items = self._named_items(stmt.items, node, allow_star=False)
            node = AggregateNode(node, stmt.group_by, items, stmt.having)
        else:
            if stmt.having is not None:
                raise SqlSyntaxError("HAVING requires GROUP BY or aggregates")
            items = self._named_items(stmt.items, node, allow_star=True)
            node = ProjectNode(node, items)

        if stmt.distinct:
            node = DistinctNode(node)
        if stmt.order_by:
            try:
                node = self._plan_order(node, stmt.order_by, stmt.items, items)
            except CatalogError:
                # ORDER BY references an input column not in the select
                # list (legal SQL): sort before projecting instead
                if has_aggregates or stmt.distinct:
                    raise
                node = ProjectNode(SortNode(pre_projection, stmt.order_by), items)
        if stmt.limit is not None:
            node = LimitNode(node, stmt.limit)
        return node

    def _plan_order(
        self,
        node: PlanNode,
        order_by: list[A.OrderItem],
        raw_items: list[A.SelectItem | A.StarItem],
        named_items: list[tuple[Expression, str]],
    ) -> PlanNode:
        """Sort on the projected output.  ORDER BY may reference output
        aliases or repeat a select-item expression (e.g. an aggregate);
        both resolve to the output column."""
        by_sql = {expr.sql().lower(): name for expr, name in named_items}
        rewritten: list[A.OrderItem] = []
        for item in order_by:
            target = by_sql.get(item.expr.sql().lower())
            if target is not None:
                rewritten.append(A.OrderItem(ColumnRef(None, target), item.descending))
            else:
                rewritten.append(item)
        return SortNode(node, rewritten)

    def _named_items(
        self, items: list[A.SelectItem | A.StarItem], child: PlanNode, allow_star: bool
    ) -> list[tuple[Expression, str]]:
        named: list[tuple[Expression, str]] = []
        for item in items:
            if isinstance(item, A.StarItem):
                if not allow_star:
                    raise SqlSyntaxError("* not allowed with GROUP BY/aggregates")
                for qualifier, name in child.columns:
                    if item.qualifier is None or (
                        qualifier is not None
                        and qualifier.lower() == item.qualifier.lower()
                    ):
                        named.append((ColumnRef(qualifier, name), name))
                continue
            named.append((item.expr, self._output_name(item)))
        return named

    @staticmethod
    def _output_name(item: A.SelectItem) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return item.expr.sql()

    # -- FROM clause ----------------------------------------------------------

    def _plan_from_tree(
        self,
        stmt: A.SelectStmt,
        where_conjuncts: list[Expression],
        accessed: list[tuple[str, str]],
        scanned: list[str],
    ) -> tuple[PlanNode, list[Expression]]:
        # Bucket WHERE conjuncts by the single alias they reference (for
        # scan pushdown); multi-alias conjuncts become join predicates.
        aliases = [stmt.from_first.alias.lower()]
        for join in stmt.joins:
            aliases.append(join.right.alias.lower())

        per_alias: dict[str, list[Expression]] = {a: [] for a in aliases}
        residual: list[Expression] = []
        for conjunct in where_conjuncts:
            refs = {q for q, _n in conjunct.references()}
            refs.discard(None)
            owners = self._owning_aliases(conjunct, aliases, stmt)
            if len(owners) == 1:
                per_alias[next(iter(owners))].append(conjunct)
            else:
                residual.append(conjunct)

        node = self._plan_from_item(stmt.from_first, per_alias[aliases[0]], accessed, scanned)
        placed = {aliases[0]}

        for join in stmt.joins:
            alias = join.right.alias.lower()
            right_pushdown = per_alias[alias] if join.kind != "LEFT" else []
            right = self._plan_from_item(join.right, right_pushdown, accessed, scanned)
            on = join.on
            extra: list[Expression] = []
            if join.kind != "LEFT":
                # pull applicable residual conjuncts into this join
                still: list[Expression] = []
                for conjunct in residual:
                    owners = self._owning_aliases(conjunct, aliases, stmt)
                    if owners <= placed | {alias}:
                        extra.append(conjunct)
                    else:
                        still.append(conjunct)
                residual = still
            node = self._make_join(node, right, join.kind, on, extra)
            placed.add(alias)
            if join.kind == "LEFT" and per_alias[alias]:
                # post-join filters referencing the nullable side
                residual.extend(per_alias[alias])
        return node, residual

    def _owning_aliases(
        self, conjunct: Expression, aliases: list[str], stmt: A.SelectStmt
    ) -> set[str]:
        """Which FROM aliases a conjunct's column references belong to."""
        owners: set[str] = set()
        unqualified: set[str] = set()
        for qualifier, name in conjunct.references():
            if qualifier is not None:
                owners.add(qualifier)
            else:
                unqualified.add(name)
        if unqualified:
            # attribute unqualified columns to the alias that has them
            sources = [stmt.from_first] + [j.right for j in stmt.joins]
            for name in unqualified:
                holders = [
                    s.alias.lower() for s in sources if self._item_has_column(s, name)
                ]
                if len(holders) == 1:
                    owners.add(holders[0])
                else:
                    owners.update(aliases)  # ambiguous/unknown: keep residual
        return owners or set(aliases)

    def _item_has_column(self, item: A.FromItem, name: str) -> bool:
        if isinstance(item, A.FromTable):
            catalog = self.database.catalog
            if catalog.has_table(item.name):
                return catalog.get_table(item.name).schema.has_column(name)
            if catalog.has_view(item.name):
                view_plan = self._view_columns(catalog.get_view(item.name))
                return name.lower() in view_plan
            return False
        if isinstance(item, A.FromTableFunction):
            return name.lower() in {n.lower() for n, _t in item.columns}
        if isinstance(item, A.FromSubquery):
            inner = Planner(self.database).plan_select(item.select)
            return name.lower() in {n.lower() for n in inner.output_names}
        return False

    def _view_columns(self, view: View) -> set[str]:
        if view.columns is None:
            planned = Planner(self.database).plan_select(view.select)
            view.columns = planned.output_names
        return {c.lower() for c in view.columns}

    def _plan_from_item(
        self,
        item: A.FromItem,
        pushdown: list[Expression],
        accessed: list[tuple[str, str]],
        scanned: list[str],
    ) -> PlanNode:
        if isinstance(item, A.FromTable):
            catalog = self.database.catalog
            if catalog.has_table(item.name):
                table = catalog.get_table(item.name)
                accessed.append((table.name, "SELECT"))
                scanned.append(table.name)
                return TableScanNode(table, item.alias, pushdown, item.as_of)
            if catalog.has_view(item.name):
                view = catalog.get_view(item.name)
                accessed.append((view.name, "SELECT"))
                inner = self._plan_select_or_union(view.select, accessed, scanned)
                if view.columns is None:
                    view.columns = [name for _q, name in inner.columns]
                node: PlanNode = AliasNode(inner, item.alias)
                for conjunct in pushdown:
                    node = FilterNode(node, conjunct)
                return node
            raise CatalogError(f"unknown relation {item.name!r}")
        if isinstance(item, A.FromTableFunction):
            func = self.database.catalog.get_function(item.func_name)
            node = TableFunctionNode(func, item.args, item.alias, item.columns)
            for conjunct in pushdown:
                node = FilterNode(node, conjunct)
            return node
        if isinstance(item, A.FromSubquery):
            inner = self._plan_select_or_union(item.select, accessed, scanned)
            node = AliasNode(inner, item.alias)
            for conjunct in pushdown:
                node = FilterNode(node, conjunct)
            return node
        raise SqlSyntaxError(f"unsupported FROM item {item!r}")

    def _make_join(
        self,
        left: PlanNode,
        right: PlanNode,
        kind: str,
        on: Expression | None,
        extra: list[Expression],
    ) -> PlanNode:
        predicates = split_conjuncts(on) + extra
        left_aliases = {q.lower() for q, _n in left.columns if q is not None}
        right_aliases = {q.lower() for q, _n in right.columns if q is not None}

        left_keys: list[Expression] = []
        right_keys: list[Expression] = []
        residual: list[Expression] = []
        for predicate in predicates:
            pair = self._equi_pair(predicate, left, right, left_aliases, right_aliases)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(predicate)

        from .expressions import conjoin

        if left_keys:
            return HashJoinNode(
                left, right, left_keys, right_keys, "LEFT" if kind == "LEFT" else "INNER",
                conjoin(residual),
            )
        return NestedLoopJoinNode(
            left, right, "LEFT" if kind == "LEFT" else "INNER", conjoin(residual)
        )

    def _equi_pair(
        self,
        predicate: Expression,
        left: PlanNode,
        right: PlanNode,
        left_aliases: set[str],
        right_aliases: set[str],
    ) -> tuple[Expression, Expression] | None:
        if not (isinstance(predicate, BinaryOp) and predicate.op == "="):
            return None

        def side_of(expr: Expression) -> str | None:
            refs = expr.references()
            if not refs:
                return None
            owners = set()
            for qualifier, name in refs:
                if qualifier is not None:
                    owners.add(qualifier)
                else:
                    in_left = self._scope_has(left, name)
                    in_right = self._scope_has(right, name)
                    if in_left and not in_right:
                        owners.add("__left__")
                    elif in_right and not in_left:
                        owners.add("__right__")
                    else:
                        return None
            if owners <= (left_aliases | {"__left__"}):
                return "left"
            if owners <= (right_aliases | {"__right__"}):
                return "right"
            return None

        a = side_of(predicate.left)
        b = side_of(predicate.right)
        if a == "left" and b == "right":
            return predicate.left, predicate.right
        if a == "right" and b == "left":
            return predicate.right, predicate.left
        return None

    @staticmethod
    def _scope_has(node: PlanNode, name: str) -> bool:
        name = name.lower()
        return any(n.lower() == name for _q, n in node.columns)
