"""The ``graphQuery`` polymorphic table function (paper §4).

Bridges graph results back into SQL: the function evaluates a Gremlin
script and converts its results into rows, which the SQL layer then
coerces to the column types declared at the call site::

    SELECT patientID, AVG(steps)
    FROM DeviceData AS D,
         TABLE(graphQuery('gremlin', '...')) AS P (patientID BIGINT, subscriptionID BIGINT)
    WHERE D.subscriptionID = P.subscriptionID
    GROUP BY patientID

Only Gremlin results convertible to rows are supported (the paper's
footnote 1): scalars become one-column rows, tuples/lists multi-column
rows, dicts rows of their values, and vertices/edges ``(id, label)``
pairs.

A second language, ``'analytics'``, runs a bulk whole-graph algorithm
(:mod:`repro.analytics`) and returns its result rows — e.g.
``graphQuery('analytics', 'wcc')`` yields ``(vertex_id, component)``
pairs that join back against base tables.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ..graph.errors import GraphError
from ..graph.model import Edge, Element, Vertex


def make_graph_query_function(graph: Any) -> Callable[..., Iterable[tuple]]:
    """Build the table function closure for one opened Db2Graph."""

    def graph_query(session: Any, language: str, script: str) -> Iterator[tuple]:
        lang = str(language).lower()
        if lang == "gremlin":
            result = graph.execute(script)
            yield from rows_from_result(result)
            return
        if lang == "analytics":
            from ..analytics.sqlbridge import evaluate_spec

            yield from evaluate_spec(graph.analytics(), script)
            return
        raise GraphError(
            f"graphQuery supports languages 'gremlin' and 'analytics', "
            f"got {language!r}"
        )

    return graph_query


def rows_from_result(result: Any) -> Iterator[tuple]:
    """Convert a Gremlin result value into a row stream."""
    if result is None:
        return
    if not isinstance(result, (list, tuple, set, frozenset)):
        result = [result]
    for item in result:
        yield _row(item)


def _row(item: Any) -> tuple:
    if isinstance(item, tuple):
        return item
    if isinstance(item, dict):
        return tuple(item.values())
    if isinstance(item, (Vertex, Edge)):
        return (item.id, item.label)
    if isinstance(item, list):
        return tuple(_scalar(x) for x in item)
    return (item,)


def _scalar(value: Any) -> Any:
    if isinstance(value, Element):
        return value.id
    return value
