"""Deterministic fault injection for chaos testing.

A :class:`FaultInjector` installs on a ``Database`` (all sessions) or a
single ``Connection`` (that session only); the executor consults it at
the top of every statement.  Faults match by table name, absolute
statement count, or seeded probability, and fire a bounded number of
times — which is what makes chaos runs reproducible: same seed, same
schedule of faults, same query results after retry.

Injected errors are fresh exception instances per fire (so per-attempt
``sql.error`` accounting stays 1:1) and carry ``injected = True`` plus,
for the generic ``"error"`` kind, ``transient = True`` so the retry
classifier treats them like real transient failures.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_RECORDER, TraceRecorder
from ..relational.errors import DeadlockError, LockTimeoutError

KINDS = ("lock_timeout", "deadlock", "slow", "error")


class InjectedTransientError(Exception):
    """A synthetic transient failure (classified retryable via the
    ``transient`` attribute, not by type)."""

    transient = True
    injected = True


class SimulatedCrashError(Exception):
    """The process "died" at a durability crash point.

    Deliberately NOT transient: a crash is not retryable — the retry
    classifier must let it propagate so the test harness can reopen the
    database through recovery instead of re-running the statement.
    """

    transient = False
    injected = True


@dataclass
class CrashPoint:
    """Fire a simulated crash at the Nth hit of a named program point.

    Crash points are consulted by the durability layer via
    :meth:`FaultInjector.on_point` (``wal.before_flush``,
    ``wal.mid_record``, ``wal.after_flush``, ``checkpoint.mid_write``).
    ``occurrence`` is 1-based and counted per point name *from the
    moment the rule is armed*, which is what makes a crash battery
    enumerable: arm ``occurrence=k`` at open and the run crashes at the
    k-th flush.
    """

    point: str
    occurrence: int = 1
    fired: bool = field(default=False, init=False)
    # Hits of this point already seen when the rule was armed.
    base: int = field(default=0, init=False)


@dataclass
class Fault:
    """One fault rule; ``times=None`` means unlimited fires."""

    kind: str
    table: str | None = None
    at_statement: int | None = None
    times: int | None = 1
    probability: float | None = None
    delay: float = 0.0
    error: Callable[[], BaseException] | None = None
    fired: int = field(default=0, init=False)

    def matches(self, statement_no: int, tables: Sequence[str], rng: random.Random) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.at_statement is not None and statement_no != self.at_statement:
            return False
        if self.table is not None and self.table.lower() not in {
            t.lower() for t in tables
        }:
            return False
        if self.probability is not None and rng.random() >= self.probability:
            return False
        return True


class FaultInjector:
    """Seeded statement-level fault source.

    ::

        injector = FaultInjector(seed=7)
        injector.add("lock_timeout", table="knows", times=1)
        injector.add("slow", at_statement=3, delay=0.05)
        db.fault_injector = injector        # or connection.fault_injector

    ``sleep`` is injectable so "slow statement" faults can be simulated
    without real waiting in tests.
    """

    def __init__(self, seed: int = 0, sleep: Callable[[float], None] = time.sleep):
        self.rng = random.Random(seed)
        self.sleep = sleep
        self.faults: list[Fault] = []
        self.crash_points: list[CrashPoint] = []
        self.statements_seen = 0
        self.point_hits: dict[str, int] = {}
        self.fires = 0
        # Statement numbering, rule fire-counts, and the shared rng must
        # stay exact when fan-out sub-statements arrive from the pool.
        self._lock = threading.Lock()

    def add(
        self,
        kind: str,
        table: str | None = None,
        at_statement: int | None = None,
        times: int | None = 1,
        probability: float | None = None,
        delay: float = 0.0,
        error: Callable[[], BaseException] | None = None,
    ) -> Fault:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {KINDS}")
        fault = Fault(kind, table, at_statement, times, probability, delay, error)
        self.faults.append(fault)
        return fault

    def add_crash(self, point: str, occurrence: int = 1) -> CrashPoint:
        """Arm a simulated crash at the ``occurrence``-th hit of
        ``point`` (see :class:`CrashPoint`)."""
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        rule = CrashPoint(point, occurrence)
        with self._lock:
            rule.base = self.point_hits.get(point, 0)
            self.crash_points.append(rule)
        return rule

    def reset(self) -> None:
        self.statements_seen = 0
        self.fires = 0
        self.point_hits.clear()
        for fault in self.faults:
            fault.fired = 0
        for rule in self.crash_points:
            rule.fired = False

    # -- executor hook -------------------------------------------------------

    def on_statement(
        self,
        kind: str,
        tables: Sequence[str],
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder = NULL_RECORDER,
    ) -> None:
        """Called by the executor before running each statement; raises
        the injected error (or sleeps, for ``slow``) when a rule fires."""
        error: BaseException | None = None
        delays: list[float] = []
        with self._lock:
            self.statements_seen += 1
            statement_no = self.statements_seen
            for fault in self.faults:
                if not fault.matches(statement_no, tables, self.rng):
                    continue
                fault.fired += 1
                self.fires += 1
                if registry is not None:
                    registry.counter(obs_metrics.FAULTS_INJECTED).increment()
                trace.emit(
                    tracing.FAULT_INJECTED,
                    kind=fault.kind,
                    table=fault.table,
                    statement=statement_no,
                )
                if fault.kind == "slow":
                    delays.append(fault.delay)
                    continue
                error = self._build_error(fault, statement_no)
                break
        # Sleep/raise outside the lock so a slow fault on one worker
        # doesn't serialize the whole pool behind the injector.
        for delay in delays:
            self.sleep(delay)
        if error is not None:
            raise error

    # -- durability hook -----------------------------------------------------

    def on_point(
        self,
        point: str,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder = NULL_RECORDER,
    ) -> bool:
        """Called by the durability layer at each named crash point.

        Returns True when an armed :class:`CrashPoint` fires; the caller
        then reproduces the on-disk state of a crash at that instant and
        raises :class:`SimulatedCrashError`.  Every fire is accounted
        like any other injected fault (``fault.injected`` counter/event)
        so chaos-run bookkeeping stays 1:1.
        """
        with self._lock:
            hits = self.point_hits.get(point, 0) + 1
            self.point_hits[point] = hits
            for rule in self.crash_points:
                if (
                    rule.point != point
                    or rule.fired
                    or hits - rule.base != rule.occurrence
                ):
                    continue
                rule.fired = True
                self.fires += 1
                if registry is not None:
                    registry.counter(obs_metrics.FAULTS_INJECTED).increment()
                trace.emit(
                    tracing.FAULT_INJECTED,
                    kind=f"crash:{point}",
                    table=None,
                    statement=hits,
                )
                return True
        return False

    def _build_error(self, fault: Fault, statement_no: int) -> BaseException:
        # Fresh instance per fire: each retry attempt gets its own
        # exception object, so once-per-instance accounting stays exact.
        where = f"statement #{statement_no}" + (
            f" on {fault.table!r}" if fault.table else ""
        )
        if fault.error is not None:
            error = fault.error()
        elif fault.kind == "lock_timeout":
            error = LockTimeoutError(f"[injected] lock timeout at {where}")
        elif fault.kind == "deadlock":
            error = DeadlockError(f"[injected] deadlock at {where}")
        else:
            error = InjectedTransientError(f"[injected] transient failure at {where}")
        try:
            error.injected = True  # type: ignore[attr-defined]
        except AttributeError:
            pass
        return error

    def __repr__(self) -> str:
        return (
            f"FaultInjector(faults={len(self.faults)}, "
            f"seen={self.statements_seen}, fires={self.fires})"
        )
