"""Export / load / open pipelines for the baseline graph databases —
the machinery behind Table 3.

The paper's scenario: graph data already lives in the relational
database; standalone graph databases must (1) export it, (2) load it
into their own storage format, and (3) open the graph, before a single
query can run.  Db2 Graph skips (1) and (2) entirely and its "open" is
reading the overlay configuration.

The loaders reuse the overlay :class:`~repro.core.topology.Topology`
to interpret rows as vertices/edges, which is exactly the
transformation a migration tool would perform.
"""

from __future__ import annotations

import csv
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.topology import Topology
from ..relational.database import Database


@dataclass
class ExportResult:
    seconds: float
    csv_bytes: int
    files: list[str] = field(default_factory=list)

    def cleanup(self) -> None:
        for path in self.files:
            if os.path.exists(path):
                os.unlink(path)


@dataclass
class LoadReport:
    """One system's Table 3 row."""

    system: str
    export_seconds: float
    load_seconds: float
    open_seconds: float
    disk_usage_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.export_seconds + self.load_seconds + self.open_seconds


def export_tables_to_csv(
    database: Database, table_names: list[str], directory: str | None = None
) -> ExportResult:
    """Dump each table to a CSV file, timing the export ("even exporting
    data out of the relational database takes from 4 minutes to half an
    hour", §8)."""
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro_export_")
    start = time.perf_counter()
    total_bytes = 0
    files: list[str] = []
    connection = database.connect()
    for table_name in table_names:
        result = connection.execute(f"SELECT * FROM {table_name}")
        path = os.path.join(directory, f"{table_name.lower()}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(result.columns)
            writer.writerows(result.rows)
        total_bytes += os.path.getsize(path)
        files.append(path)
    return ExportResult(time.perf_counter() - start, total_bytes, files)


def relational_disk_usage(database: Database, table_names: list[str]) -> int:
    """Approximate the relational footprint as the CSV byte size (the
    paper's Table 2 reports dataset sizes as CSV files)."""
    export = export_tables_to_csv(database, table_names)
    export.cleanup()
    return export.csv_bytes


def load_into_store(store: Any, topology: Topology, database: Database) -> float:
    """Transform relational rows into the store's graph format via the
    overlay mapping.  Returns elapsed seconds (Table 3 'Load Data')."""
    start = time.perf_counter()
    connection = database.connect()
    for vtop in topology.vertex_tables:
        columns = ", ".join(vtop.relation.columns)
        result = connection.execute(f"SELECT {columns} FROM {vtop.table_name}")
        keys = [c.lower() for c in result.columns]
        for values in result.rows:
            row = dict(zip(keys, values))
            store.add_vertex(vtop.row_id(row), vtop.row_label(row), vtop.row_properties(row))
    for etop in topology.edge_tables:
        columns = ", ".join(etop.relation.columns)
        result = connection.execute(f"SELECT {columns} FROM {etop.table_name}")
        keys = [c.lower() for c in result.columns]
        for values in result.rows:
            row = dict(zip(keys, values))
            store.add_edge(
                etop.row_label(row),
                etop.row_src(row),
                etop.row_dst(row),
                etop.row_properties(row),
                edge_id=etop.row_id(row),
            )
    store.finalize()
    return time.perf_counter() - start


def measure_baseline_pipeline(
    system: str,
    store: Any,
    topology: Topology,
    database: Database,
    table_names: list[str],
    prefetch: bool = True,
) -> LoadReport:
    """Full Table 3 pipeline for one baseline: export + load + open."""
    export = export_tables_to_csv(database, table_names)
    export.cleanup()
    load_seconds = load_into_store(store, topology, database)
    start = time.perf_counter()
    store.open_graph(prefetch=prefetch)
    open_seconds = time.perf_counter() - start
    return LoadReport(
        system=system,
        export_seconds=export.seconds,
        load_seconds=load_seconds,
        open_seconds=open_seconds,
        disk_usage_bytes=store.disk_usage_bytes(),
    )


def measure_db2graph_open(
    database: Database, overlay: Any, table_names: list[str]
) -> LoadReport:
    """Db2 Graph's Table 3 row: zero export/load; open = resolving the
    overlay against the catalog."""
    from ..core.db2graph import Db2Graph

    start = time.perf_counter()
    graph = Db2Graph.open(database, overlay)
    open_seconds = time.perf_counter() - start
    graph.close()
    return LoadReport(
        system="Db2 Graph",
        export_seconds=0.0,
        load_seconds=0.0,
        open_seconds=open_seconds,
        disk_usage_bytes=relational_disk_usage(database, table_names),
    )
