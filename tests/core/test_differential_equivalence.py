"""Seeded differential harness: a deterministic corpus of 500+ traversal
chains runs under all four optimization configurations — compile-time
strategies (§6.2) on/off × runtime data-dependent optimizations (§6.3)
on/off — plus the in-memory reference graph.  Every configuration must
return identical (normalized) results, and the fully optimized engine
must never issue *more* SQL than the stripped one (checked through
``sql.issued`` trace events, not wall time, so it is deterministic).

A second, orthogonal matrix locks in the parallel execution layer:
{serial, parallelism=4} × {batch_size 1, 8, 64} × {strategies on, off}
must all return the same result multiset as the in-memory reference,
and the batched engines must issue *strictly fewer* SQL statements
than batch_size=1 over the corpus (again counted from ``sql.issued``
trace events, so deterministic).

Unlike the hypothesis fuzzers (test_fuzz_traversals.py), the corpus
here is generated with a fixed ``random.Random`` seed so every CI run
exercises exactly the same 510 chains — a regression in any one of
them reproduces locally with no shrinking step.  The hand-written
corpus from test_equivalence.py is folded in as well.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Db2Graph, RuntimeOptimizations
from repro.graph import Edge, GraphTraversalSource, InMemoryGraph, P, TextP, Vertex, __
from repro.obs import tracing
from repro.relational import Database

from .test_equivalence import TRAVERSALS as HANDWRITTEN_TRAVERSALS

SEED = 20260806
CORPUS_SIZE = 510
N_LABELS = 3
LABELS = [f"L{i}" for i in range(N_LABELS)]
EDGE_LABELS = [f"E{i}" for i in range(N_LABELS)]


# ---------------------------------------------------------------------------
# One fixed dataset, five engines over it
# ---------------------------------------------------------------------------


def build_dataset():
    memory = InMemoryGraph()
    db = Database(enforce_foreign_keys=False)
    for label in LABELS:
        db.execute(f"CREATE TABLE v_{label} (id INT PRIMARY KEY, score INT, word VARCHAR)")
    for label in EDGE_LABELS:
        db.execute(f"CREATE TABLE e_{label} (src INT, dst INT, weight INT)")

    n = 18
    for i in range(n):
        label = LABELS[i % N_LABELS]
        word = f"w{i % 5}x" if i % 3 else f"q{i}"
        score = i % 7 if i % 4 else None
        memory.add_vertex(i, label, {"score": score, "word": word})
        db.execute(f"INSERT INTO v_{label} VALUES (?, ?, ?)", [i, score, word])

    edges = [(i, (i * 5 + 2) % n, EDGE_LABELS[i % N_LABELS], i % 4) for i in range(n)]
    edges += [
        (i, (i * 3 + 7) % n, EDGE_LABELS[(i + 1) % N_LABELS], (i + 2) % 4)
        for i in range(0, n, 2)
    ]
    for src, dst, label, weight in edges:
        memory.add_edge(label, src, dst, {"weight": weight})
        db.execute(f"INSERT INTO e_{label} VALUES (?, ?, ?)", [src, dst, weight])

    overlay = {
        "v_tables": [
            {"table_name": f"v_{label}", "id": "id", "fix_label": True,
             "label": f"'{label}'", "properties": ["score", "word"]}
            for label in LABELS
        ],
        "e_tables": [
            {"table_name": f"e_{label}", "src_v": "src", "dst_v": "dst",
             "implicit_edge_id": True, "fix_label": True, "label": f"'{label}'",
             "properties": ["weight"]}
            for label in EDGE_LABELS
        ],
    }
    return memory, db, overlay


# The four corners of the (strategies on/off, runtime opts on/off) grid.
CONFIG_GRID = [
    ("strategies+runtime", True, None),
    ("strategies-only", True, RuntimeOptimizations.all_off()),
    ("runtime-only", False, None),
    ("stripped", False, RuntimeOptimizations.all_off()),
]

# The parallel execution matrix: {serial, parallelism=4} × {batch_size
# 1, 8, 64} × {strategies on, off}.  Every cell must agree with the
# in-memory reference; within a (parallelism, strategies) row the
# batched cells must issue strictly fewer SQL statements than batch=1.
PARALLEL_MATRIX = [
    (f"{mode}/batch{batch}/{'opt' if optimized else 'raw'}", workers, batch, optimized)
    for mode, workers in (("serial", 1), ("parallel4", 4))
    for batch in (1, 8, 64)
    for optimized in (True, False)
]


@pytest.fixture(scope="module")
def engines():
    memory, db, overlay = build_dataset()
    graphs = {
        # cache=False: this module counts sql.issued events exactly;
        # read-cache hits (REPRO_CACHE_ENABLED=1 CI leg) skip statements.
        name: Db2Graph.open(
            db, overlay, optimized=optimized, runtime_opts=opts, cache=False
        )
        for name, optimized, opts in CONFIG_GRID
    }
    return GraphTraversalSource(memory), graphs


@pytest.fixture(scope="module")
def matrix_engines():
    memory, db, overlay = build_dataset()
    graphs = {
        name: Db2Graph.open(
            db,
            overlay,
            optimized=optimized,
            parallelism=workers,
            batch_size=batch,
            cache=False,
        )
        for name, workers, batch, optimized in PARALLEL_MATRIX
    }
    yield GraphTraversalSource(memory), graphs
    for graph in graphs.values():
        graph.close()


# ---------------------------------------------------------------------------
# Deterministic chain generator (same shape as the hypothesis fuzzer's
# move pools, but operands are drawn from a seeded random.Random)
# ---------------------------------------------------------------------------

VERTEX_MOVES = [
    ("vertex", lambda t, v: t.out(v), lambda r: r.choice(EDGE_LABELS)),
    ("vertex", lambda t, v: t.in_(v), lambda r: r.choice(EDGE_LABELS)),
    ("vertex", lambda t, v: t.out(), None),
    ("vertex", lambda t, v: t.both(), None),
    ("edge", lambda t, v: t.outE(v), lambda r: r.choice(EDGE_LABELS)),
    ("edge", lambda t, v: t.inE(), None),
    ("vertex", lambda t, v: t.hasLabel(v), lambda r: r.choice(LABELS)),
    ("vertex", lambda t, v: t.has("score", P.gte(v)), lambda r: r.randint(0, 6)),
    ("vertex", lambda t, v: t.has("score", P.within(v, v + 2)), lambda r: r.randint(0, 5)),
    ("vertex", lambda t, v: t.has("word", TextP.startingWith(v)),
     lambda r: r.choice(["w", "q", "w1"])),
    ("vertex", lambda t, v: t.has("word", TextP.containing(v)),
     lambda r: r.choice(["x", "1", "zz"])),
    ("vertex", lambda t, v: t.hasNot("score"), None),
    ("vertex", lambda t, v: t.dedup(), None),
    ("vertex", lambda t, v: t.filter_(__.out()), None),
    ("vertex", lambda t, v: t.not_(__.outE(v)), lambda r: r.choice(EDGE_LABELS)),
    ("value", lambda t, v: t.values(v), lambda r: r.choice(["score", "word"])),
    ("value", lambda t, v: t.id_(), None),
    ("value", lambda t, v: t.label(), None),
    ("vertex", lambda t, v: t.union(__.out(), __.in_()), None),
    ("vertex", lambda t, v: t.repeat(__.out().dedup()).times(v), lambda r: r.randint(1, 2)),
    ("vertex", lambda t, v: t.optional(__.out(v)), lambda r: r.choice(EDGE_LABELS)),
]

EDGE_MOVES = [
    ("vertex", lambda t, v: t.inV(), None),
    ("vertex", lambda t, v: t.outV(), None),
    ("edge", lambda t, v: t.has("weight", P.lt(v)), lambda r: r.randint(0, 4)),
    ("edge", lambda t, v: t.hasLabel(v), lambda r: r.choice(EDGE_LABELS)),
    ("edge", lambda t, v: t.dedup(), None),
    ("value", lambda t, v: t.values("weight"), None),
    ("value", lambda t, v: t.label(), None),
    ("edge", lambda t, v: t.filter_(__.inV().has("score", P.gte(v))), lambda r: r.randint(0, 5)),
]

VALUE_MOVES = [
    ("value", lambda t, v: t.dedup(), None),
]

TERMINALS = {
    "vertex": [lambda t: t.count(), lambda t: t.id_(), None],
    "edge": [lambda t: t.count(), None],
    "value": [lambda t: t.count(), None],
}

POOLS = {"vertex": VERTEX_MOVES, "edge": EDGE_MOVES, "value": VALUE_MOVES}


def generate_corpus(size: int, seed: int):
    rng = random.Random(seed)
    corpus = []
    for _ in range(size):
        if rng.random() < 0.25:
            start_ids = tuple(
                rng.randint(0, 19) for _ in range(rng.randint(1, 3))
            )
        else:
            start_ids = None
        moves = []
        current = "vertex"
        for _ in range(rng.randint(0, 5)):
            pool = POOLS[current]
            index = rng.randrange(len(pool))
            sampler = pool[index][2]
            operand = sampler(rng) if sampler is not None else None
            moves.append((current, index, operand))
            current = pool[index][0]
        terminal_index = rng.randrange(len(TERMINALS[current]))
        corpus.append((start_ids, moves, current, terminal_index))
    return corpus


CORPUS = generate_corpus(CORPUS_SIZE, SEED)


def apply_chain(g, recipe):
    start_ids, moves, final_type, terminal_index = recipe
    traversal = g.V() if start_ids is None else g.V(*start_ids)
    for current, index, operand in moves:
        traversal = POOLS[current][index][1](traversal, operand)
    terminal = TERMINALS[final_type][terminal_index]
    if terminal is not None:
        traversal = terminal(traversal)
    return traversal.toList()


def normalize(results):
    out = []
    for item in results:
        if isinstance(item, Edge):
            out.append(("edge", item.label, str(item.out_v_id), str(item.in_v_id)))
        elif isinstance(item, Vertex):
            out.append(("vertex", str(item.id)))
        elif isinstance(item, dict):
            out.append(tuple(sorted((k, str(v)) for k, v in item.items())))
        else:
            out.append(item)
    return sorted(out, key=repr)


# ---------------------------------------------------------------------------
# The differential checks
# ---------------------------------------------------------------------------


def test_corpus_is_large_and_deterministic():
    assert len(CORPUS) >= 500
    assert generate_corpus(CORPUS_SIZE, SEED) == CORPUS


@pytest.mark.parametrize("index", range(CORPUS_SIZE))
def test_all_configs_agree_with_reference(engines, index):
    g_memory, graphs = engines
    recipe = CORPUS[index]
    expected = normalize(apply_chain(g_memory, recipe))
    for name, graph in graphs.items():
        actual = normalize(apply_chain(graph.traversal(), recipe))
        assert actual == expected, (
            f"config {name!r} diverged on chain #{index} {recipe}: "
            f"overlay={actual} memory={expected}"
        )


@pytest.mark.parametrize("name,build", HANDWRITTEN_TRAVERSALS, ids=[n for n, _ in HANDWRITTEN_TRAVERSALS])
def test_handwritten_corpus_all_configs(engines, name, build):
    g_memory, graphs = engines
    expected = normalize(build(g_memory).toList())
    for config, graph in graphs.items():
        actual = normalize(build(graph.traversal()).toList())
        assert actual == expected, f"{name} under {config}: {actual} != {expected}"


def _sql_issued(graph, recipe) -> int:
    recorder = graph.enable_tracing()
    try:
        apply_chain(graph.traversal(), recipe)
        return recorder.count(tracing.SQL_ISSUED)
    finally:
        graph.disable_tracing()


# ---------------------------------------------------------------------------
# Parallel execution matrix (fan-out pool + traverser batching)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("index", range(CORPUS_SIZE))
def test_parallel_matrix_agrees_with_reference(matrix_engines, index):
    """All 12 (parallelism, batch_size, strategies) cells return the
    same result multiset as the in-memory graph for every chain — the
    pool's submission-order demux makes parallel runs bit-identical."""
    g_memory, graphs = matrix_engines
    recipe = CORPUS[index]
    expected = normalize(apply_chain(g_memory, recipe))
    for name, graph in graphs.items():
        actual = normalize(apply_chain(graph.traversal(), recipe))
        assert actual == expected, (
            f"matrix cell {name!r} diverged on chain #{index} {recipe}: "
            f"overlay={actual} memory={expected}"
        )


@pytest.mark.parametrize("workers,optimized", [(1, True), (1, False), (4, True), (4, False)])
def test_batched_issues_strictly_fewer_sql(matrix_engines, workers, optimized):
    """Traverser batching is not free-floating configuration: within a
    (parallelism, strategies) row, coalescing ids into ``IN (...)``
    lists must *strictly* reduce the number of SQL statements issued
    over the corpus, and monotonically so (64 ≤ 8 < 1)."""
    _, graphs = matrix_engines
    mode = "serial" if workers == 1 else "parallel4"
    flavor = "opt" if optimized else "raw"
    totals = {}
    for batch in (1, 8, 64):
        graph = graphs[f"{mode}/batch{batch}/{flavor}"]
        totals[batch] = sum(_sql_issued(graph, recipe) for recipe in CORPUS)
    assert totals[64] <= totals[8] < totals[1], totals
    assert totals[64] < totals[1]


def test_batched_statement_counts_reconcile(matrix_engines):
    """``batch.size`` (total coalesced ids) must equal the sum of the
    ``size`` attributes on ``sql.batched`` trace events, and the
    ``sql.batched`` counter the number of those events — the 1:1
    counter/event invariant extended to the new instrumentation."""
    _, graphs = matrix_engines
    graph = graphs["parallel4/batch8/opt"]
    recorder = graph.enable_tracing()
    before = graph.stats()
    try:
        for recipe in CORPUS[:40]:
            apply_chain(graph.traversal(), recipe)
        events = recorder.named(tracing.SQL_BATCHED)
        after = graph.stats()
    finally:
        graph.disable_tracing()
    assert after["batched_statements"] - before["batched_statements"] == len(events)
    assert after["batched_ids"] - before["batched_ids"] == sum(
        e.attributes["size"] for e in events
    )
    assert all(e.attributes["size"] > 1 for e in events)
    assert all("statement_id" in e.attributes for e in events)


def test_optimized_never_issues_more_sql(engines):
    """The whole point of §6.2+§6.3: the optimized engine answers the
    same question with at most as many SQL round trips.  Counted from
    ``sql.issued`` trace events so the check is exact, not a timing."""
    _, graphs = engines
    fast = graphs["strategies+runtime"]
    slow = graphs["stripped"]
    regressions = []
    savings = 0
    for index, recipe in enumerate(CORPUS):
        n_fast = _sql_issued(fast, recipe)
        n_slow = _sql_issued(slow, recipe)
        if n_fast > n_slow:
            regressions.append((index, recipe, n_fast, n_slow))
        savings += n_slow - n_fast
    assert not regressions, (
        f"optimized engine issued MORE sql on {len(regressions)} chains: "
        f"{regressions[:3]}"
    )
    # and the optimizations must actually bite somewhere in the corpus
    assert savings > 0
