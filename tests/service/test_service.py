"""Tentpole tests for the multi-session graph service layer: admission
control and backpressure, deadline shedding, fair dispatch, graceful
drain/shutdown, session lifecycle (limits, close-time rollback), env
knobs, observability reconciliation, and shared-cache / durability /
resilience compatibility under multiplexing.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import metrics as M
from repro.relational import Database
from repro.relational.transactions import Transaction
from repro.resilience.budget import QueryBudget
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy, is_transient
from repro.service import (
    AdmissionQueue,
    AdmissionRejectedError,
    GraphService,
    RequestShedError,
    ServiceConfig,
    ServiceDrainingError,
    ServiceError,
    SessionClosedError,
    SessionLimitError,
    resolve_max_sessions,
    resolve_queue_depth,
)

pytestmark = pytest.mark.service

OVERLAY = {
    "v_tables": [
        {"table_name": "item", "id": "id", "fix_label": True,
         "label": "'item'", "properties": ["id", "name"]},
    ],
    "e_tables": [
        {"table_name": "link", "src_v_table": "item", "src_v": "src",
         "dst_v_table": "item", "dst_v": "dst",
         "implicit_edge_id": True, "fix_label": True, "label": "'link'"},
    ],
}


def make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE link (src INT, dst INT)")
    db.execute("INSERT INTO item VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    db.execute("INSERT INTO link VALUES (1, 2), (2, 3)")
    return db


@pytest.fixture
def service():
    svc = GraphService(make_db(), OVERLAY, ServiceConfig(workers=2))
    yield svc
    svc.shutdown(timeout=10)


class ManualClock:
    def __init__(self, now: float = 0.0):
        self._now = now
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._now += seconds


# -- basic request flow ------------------------------------------------------


def test_sessions_execute_gremlin_and_sql(service):
    s1 = service.open_session()
    s2 = service.open_session()
    assert sorted(s1.execute("g.V().hasLabel('item').values('name')")) == [
        "a", "b", "c",
    ]
    assert s2.run(lambda s: s.g.V().count().next()) == 3
    # DML through one session is visible to the other (shared database)
    s1.run(lambda s: s.connection.execute("INSERT INTO item VALUES (4, 'd')"))
    assert s2.run(lambda s: s.g.V().count().next()) == 4


def test_sessions_have_independent_transaction_scopes(service):
    s1 = service.open_session()
    s2 = service.open_session()
    s1.run(lambda s: s.connection.begin())
    s1.run(lambda s: s.connection.execute("INSERT INTO item VALUES (9, 'x')"))
    # s2 does not see s1's uncommitted row, and holds no transaction
    assert s2.run(lambda s: s.g.V().count().next()) == 3
    assert s2.connection.current_txn is None
    s1.run(lambda s: s.connection.commit())
    assert s2.run(lambda s: s.g.V().count().next()) == 4


def test_submit_returns_future_and_propagates_errors(service):
    s = service.open_session()
    future = s.submit(lambda _s: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        future.result(5)
    assert service.stats()["failed"] == 1


# -- admission control / backpressure ----------------------------------------


def test_full_queue_rejects_with_retry_after():
    svc = GraphService(
        make_db(), OVERLAY, ServiceConfig(workers=1, queue_depth=2)
    )
    try:
        s = svc.open_session()
        gate = threading.Event()
        blocker = s.submit(lambda _s: gate.wait(10))
        deadline = time.monotonic() + 5
        while svc.queue.depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)  # wait for the blocker to dispatch
        queued = [s.submit(lambda _s: None) for _ in range(2)]
        with pytest.raises(AdmissionRejectedError) as excinfo:
            s.submit(lambda _s: None)
        assert excinfo.value.retry_after > 0
        assert excinfo.value.depth == 2
        assert is_transient(excinfo.value)  # callers may retry
        gate.set()
        for f in queued:
            f.result(5)
        blocker.result(5)
        stats = svc.stats()
        assert stats["rejected"] == 1
        assert stats["admitted"] == 3
    finally:
        svc.shutdown(timeout=10)


def test_retry_after_tracks_drain_rate():
    queue = AdmissionQueue(capacity=8, workers=2)
    assert queue.retry_after(4) == 0.05  # no completions yet: default
    queue.note_service_time(0.1)
    # 4 queued over 2 workers at 0.1s each -> ~0.2s
    assert queue.retry_after(4) == pytest.approx(0.2)
    # EMA converges toward faster service times
    for _ in range(50):
        queue.note_service_time(0.01)
    assert queue.retry_after(4) < 0.05


# -- deadline shedding --------------------------------------------------------


def test_expired_deadline_sheds_at_dispatch():
    clock = ManualClock()
    svc = GraphService(
        make_db(), OVERLAY,
        ServiceConfig(workers=1, queue_depth=8, clock=clock),
    )
    try:
        s = svc.open_session()
        gate = threading.Event()
        blocker = s.submit(lambda _s: gate.wait(10))
        deadline = time.monotonic() + 5
        while svc.queue.depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        doomed = s.submit(
            lambda _s: "ran", budget=QueryBudget(deadline_seconds=1.0)
        )
        patient = s.submit(lambda _s: "ran")  # no deadline: never shed
        clock.advance(2.0)  # the deadline expires while queued
        gate.set()
        with pytest.raises(RequestShedError) as excinfo:
            doomed.result(5)
        assert excinfo.value.queued_seconds == pytest.approx(2.0)
        assert patient.result(5) == "ran"
        assert svc.stats()["shed"] == 1
    finally:
        svc.shutdown(timeout=10)


def test_fresh_deadline_is_not_shed(service):
    s = service.open_session()
    result = s.run(
        lambda _s: "ok", budget=QueryBudget(deadline_seconds=30.0)
    )
    assert result == "ok"
    assert service.stats()["shed"] == 0


# -- fairness -----------------------------------------------------------------


def test_round_robin_dispatch_is_session_fair():
    svc = GraphService(
        make_db(), OVERLAY, ServiceConfig(workers=1, queue_depth=64)
    )
    try:
        flooder = svc.open_session()
        victim = svc.open_session()
        order: list[int] = []
        lock = threading.Lock()

        def note(session):
            with lock:
                order.append(session.session_id)

        gate = threading.Event()
        blocker = flooder.submit(lambda _s: gate.wait(10))
        deadline = time.monotonic() + 5
        while svc.queue.depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        flood = [flooder.submit(note) for _ in range(10)]
        stuck = [victim.submit(note) for _ in range(2)]
        gate.set()
        for f in flood + stuck:
            f.result(5)
        blocker.result(5)
        # Round-robin: the victim's 2 requests land interleaved at the
        # front, not behind the flooder's 10.
        assert order.index(victim.session_id) <= 1
        assert sorted(order[:4]).count(victim.session_id) == 2
    finally:
        svc.shutdown(timeout=10)


# -- drain / shutdown ---------------------------------------------------------


def test_drain_finishes_queued_work_and_rejects_new(service):
    s = service.open_session()
    gate = threading.Event()
    blocker = s.submit(lambda _s: gate.wait(10))
    queued = [s.submit(lambda _s: "done") for _ in range(4)]
    drained = []
    t = threading.Thread(target=lambda: drained.append(service.drain(10)))
    t.start()
    time.sleep(0.05)
    with pytest.raises(ServiceDrainingError) as excinfo:
        s.submit(lambda _s: None)
    assert not is_transient(excinfo.value)  # draining is not retryable
    # a draining service refuses new sessions, not just new requests
    with pytest.raises(ServiceDrainingError):
        service.open_session()
    gate.set()
    t.join(10)
    assert drained == [True]
    assert [f.result(1) for f in queued] == ["done"] * 4


def test_shutdown_closes_sessions_and_pool():
    svc = GraphService(make_db(), OVERLAY, ServiceConfig(workers=2))
    s1 = svc.open_session()
    s2 = svc.open_session()
    s1.run(lambda s: s.connection.begin())  # abandoned transaction
    assert svc.shutdown(timeout=10)
    assert s1.closed and s2.closed
    assert s1.rolled_back_on_close
    assert not s2.rolled_back_on_close
    assert len(svc.sessions) == 0
    assert not svc._dispatcher.is_alive()
    stats = svc.stats()
    assert stats["sessions_closed"] == 2
    with pytest.raises(ServiceError):
        svc.open_session()


def test_context_managers_shut_down_cleanly():
    with GraphService(make_db(), OVERLAY, ServiceConfig(workers=1)) as svc:
        with svc.open_session() as s:
            assert s.run(lambda x: x.g.V().count().next()) == 3
        assert s.closed
    assert not svc._dispatcher.is_alive()


# -- session lifecycle --------------------------------------------------------


def test_close_session_rolls_back_abandoned_transaction():
    svc = GraphService(make_db(), OVERLAY, ServiceConfig(workers=1))
    try:
        s = svc.open_session()
        s.run(lambda x: x.connection.begin())
        s.run(
            lambda x: x.connection.execute("INSERT INTO item VALUES (7, 'z')")
        )
        txn = s.connection.current_txn
        assert txn is not None and txn.is_active
        s.close(timeout=5)
        assert s.rolled_back_on_close
        assert s.connection.current_txn is None
        # the uncommitted row is gone; the table is not locked
        assert svc.database.execute("SELECT COUNT(*) FROM item").scalar() == 3
        svc.database.execute("INSERT INTO item VALUES (8, 'w')")
    finally:
        svc.shutdown(timeout=10)


def test_closed_session_rejects_submit_and_fails_queued():
    svc = GraphService(
        make_db(), OVERLAY, ServiceConfig(workers=1, queue_depth=16)
    )
    try:
        victim = svc.open_session()
        other = svc.open_session()
        gate = threading.Event()
        blocker = other.submit(lambda _s: gate.wait(10))
        deadline = time.monotonic() + 5
        while svc.queue.depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = [victim.submit(lambda _s: "never") for _ in range(3)]
        victim.close(timeout=5)
        for f in queued:
            with pytest.raises(SessionClosedError):
                f.result(5)
        with pytest.raises(SessionClosedError):
            victim.submit(lambda _s: None)
        gate.set()
        blocker.result(5)
        # the other session is unaffected
        assert other.run(lambda s: s.g.V().count().next()) == 3
    finally:
        svc.shutdown(timeout=10)


def test_session_limit_enforced_and_freed_on_close():
    svc = GraphService(
        make_db(), OVERLAY, ServiceConfig(max_sessions=2, workers=1)
    )
    try:
        s1 = svc.open_session()
        s2 = svc.open_session()
        with pytest.raises(SessionLimitError):
            svc.open_session()
        s1.close(timeout=5)
        s3 = svc.open_session()  # slot freed
        assert s3.run(lambda s: s.g.V().count().next()) == 3
    finally:
        svc.shutdown(timeout=10)


# -- env knobs ----------------------------------------------------------------


def test_env_knobs_resolve(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_SESSIONS", "5")
    monkeypatch.setenv("REPRO_SERVICE_QUEUE", "11")
    assert resolve_max_sessions(None) == 5
    assert resolve_queue_depth(None) == 11
    # explicit arguments win over the environment
    assert resolve_max_sessions(3) == 3
    assert resolve_queue_depth(7) == 7
    svc = GraphService(make_db(), OVERLAY, ServiceConfig(workers=1))
    try:
        assert svc.max_sessions == 5
        assert svc.queue.capacity == 11
    finally:
        svc.shutdown(timeout=10)


def test_env_knob_defaults_and_garbage(monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_SESSIONS", raising=False)
    monkeypatch.delenv("REPRO_SERVICE_QUEUE", raising=False)
    assert resolve_max_sessions(None) == 64
    assert resolve_queue_depth(None) == 256
    monkeypatch.setenv("REPRO_SERVICE_SESSIONS", "not-a-number")
    assert resolve_max_sessions(None) == 64
    monkeypatch.setenv("REPRO_SERVICE_QUEUE", "0")
    assert resolve_queue_depth(None) == 1  # clamped to >= 1


# -- observability ------------------------------------------------------------


def test_service_counters_reconcile_with_events():
    svc = GraphService(
        make_db(), OVERLAY, ServiceConfig(workers=1, queue_depth=2)
    )
    try:
        svc.enable_tracing()
        s = svc.open_session()
        gate = threading.Event()
        blocker = s.submit(lambda _s: gate.wait(10))
        deadline = time.monotonic() + 5
        while svc.queue.depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = [s.submit(lambda _s: None) for _ in range(2)]
        with pytest.raises(AdmissionRejectedError):
            s.submit(lambda _s: None)
        gate.set()
        for f in queued:
            f.result(5)
        blocker.result(5)
        s.close(timeout=5)

        registry, trace = svc.registry, svc.trace
        assert registry.counter(M.SERVICE_ADMITTED).value == trace.count(
            "service.admitted"
        ) == 3
        assert registry.counter(M.SERVICE_REJECTED).value == trace.count(
            "service.rejected"
        ) == 1
        assert registry.histogram(M.SERVICE_QUEUE_DEPTH).count == trace.count(
            "service.queued"
        ) == 3
        assert registry.counter(M.SERVICE_SESSIONS_OPENED).value == trace.count(
            "service.session.open"
        ) == 1
        assert registry.counter(M.SERVICE_SESSIONS_CLOSED).value == trace.count(
            "service.session.close"
        ) == 1
    finally:
        svc.shutdown(timeout=10)


def test_graph_stats_expose_service_counters(service):
    s = service.open_session()
    s.run(lambda x: x.g.V().count().next())
    stats = s.graph.stats()
    assert stats["service_admitted"] == 1
    assert stats["service_sessions_opened"] == 1
    assert stats["service_rejected"] == 0


# -- shared cache coherence ---------------------------------------------------


def test_shared_cache_stays_coherent_across_sessions():
    svc = GraphService(
        make_db(), OVERLAY, ServiceConfig(workers=2), cache=True
    )
    try:
        reader = svc.open_session()
        writer = svc.open_session()
        assert svc.cache is not None
        assert reader.graph.cache is svc.cache  # one cache, all sessions
        assert reader.run(lambda s: s.g.V().count().next()) == 3
        assert reader.run(lambda s: s.g.V().count().next()) == 3  # cached
        writer.run(
            lambda s: s.connection.execute("INSERT INTO item VALUES (4, 'd')")
        )
        # the writer's commit bumped the shared epoch: no stale read
        assert reader.run(lambda s: s.g.V().count().next()) == 4
    finally:
        svc.shutdown(timeout=10)


# -- durability compatibility -------------------------------------------------


def test_service_over_durable_database_recovers(tmp_path):
    from repro.durability import DurabilityConfig

    wal_config = DurabilityConfig(dir=tmp_path / "wal", fsync=False)
    db = Database(durability=wal_config)
    db.execute("CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE link (src INT, dst INT)")
    db.execute("INSERT INTO item VALUES (1, 'a')")
    svc = GraphService(db, OVERLAY, ServiceConfig(workers=2))
    try:
        sessions = [svc.open_session() for _ in range(3)]
        futures = [
            s.submit(
                lambda _s, i=i: _s.connection.execute(
                    "INSERT INTO item VALUES (?, ?)", (10 + i, f"n{i}")
                )
            )
            for i, s in enumerate(sessions)
        ]
        for f in futures:
            f.result(10)
        # an abandoned transaction must not reach the WAL as committed
        sessions[0].run(lambda s: s.connection.begin())
        sessions[0].run(
            lambda s: s.connection.execute(
                "INSERT INTO item VALUES (99, 'uncommitted')"
            )
        )
    finally:
        svc.shutdown(timeout=10)
        db.close()
    recovered = Database.open(
        DurabilityConfig(dir=tmp_path / "wal", fsync=False)
    )
    ids = sorted(r[0] for r in recovered.execute("SELECT id FROM item").rows)
    assert ids == [1, 10, 11, 12]
    recovered.close()


# -- resilience integration ---------------------------------------------------


def test_per_session_retry_policy_survives_multiplexing():
    svc = GraphService(make_db(), OVERLAY, ServiceConfig(workers=2))
    try:
        fragile = svc.open_session()  # no retry policy: fault surfaces
        sturdy_policy = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
        sturdy = svc.open_session(retry_policy=sturdy_policy)

        for session in (fragile, sturdy):
            injector = FaultInjector(seed=7)
            injector.add("lock_timeout", table="item", times=2)
            session.connection.fault_injector = injector

        # the sturdy session retries through its faults...
        assert sturdy.run(lambda s: s.g.V().count().next()) == 3
        # ...the fragile one surfaces them to its own caller only
        from repro.relational.errors import LockTimeoutError

        with pytest.raises(LockTimeoutError):
            fragile.run(lambda s: s.g.V().count().next())
        # and the failure never poisons the other session
        assert sturdy.run(lambda s: s.g.V().count().next()) == 3
    finally:
        svc.shutdown(timeout=10)


def test_per_session_budgets_are_independent():
    svc = GraphService(make_db(), OVERLAY, ServiceConfig(workers=2))
    try:
        tight = svc.open_session(budget=QueryBudget(max_rows=1))
        roomy = svc.open_session()
        from repro.resilience.budget import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            tight.run(lambda s: s.g.V().valueMap("id", "name").toList())
        assert len(roomy.run(lambda s: s.g.V().valueMap("id", "name").toList())) == 3
    finally:
        svc.shutdown(timeout=10)
