"""``repro.relational`` — a from-scratch relational engine.

This package is the reproduction's stand-in for IBM Db2: typed schemas
with primary/foreign keys, a catalog, hash and sorted indexes, a SQL
parser and planner/executor, non-materialized views, MVCC transactions,
system-time temporal queries (``FOR SYSTEM_TIME AS OF``), GRANT/REVOKE
access control, prepared statements, and polymorphic table functions.

Quick use::

    from repro.relational import Database
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR)")
    db.execute("INSERT INTO t VALUES (1, 'a')")
    rows = db.execute("SELECT name FROM t WHERE id = 1").rows
"""

from .database import Connection, Database
from .errors import (
    AccessDeniedError,
    CatalogError,
    ConstraintViolationError,
    DatabaseError,
    DeadlockError,
    ExecutionError,
    LockTimeoutError,
    SqlSyntaxError,
    TransactionError,
    TypeMismatchError,
)
from .executor import ResultSet
from .schema import Column, ForeignKey, TableSchema
from .types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    VARCHAR,
    SqlType,
    VarcharType,
    type_from_name,
)

__all__ = [
    "Database",
    "Connection",
    "ResultSet",
    "TableSchema",
    "Column",
    "ForeignKey",
    "SqlType",
    "VarcharType",
    "INTEGER",
    "BIGINT",
    "DOUBLE",
    "VARCHAR",
    "BOOLEAN",
    "TIMESTAMP",
    "type_from_name",
    "DatabaseError",
    "SqlSyntaxError",
    "CatalogError",
    "TypeMismatchError",
    "ConstraintViolationError",
    "TransactionError",
    "LockTimeoutError",
    "DeadlockError",
    "AccessDeniedError",
    "ExecutionError",
]
